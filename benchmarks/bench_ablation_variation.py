"""Ablation 5 — absolute vs relative reading of "sigma = 0.05 G0".

DESIGN.md documents a deliberate model decision: the paper's variation
is modelled as 5% *of each cell's conductance* (relative), because the
absolute reading (5% of G0 on every cell) buries the weak off-diagonal
blocks of large normalized matrices in noise and produces errors far
above the published Fig. 7 curves. This ablation shows both.

Since PR 4 the sweep is the ``ablation-variation``
:class:`~repro.campaigns.CampaignSpec` — the two readings are hardware
variants swapping the programming-variation model through the campaign
codec — and this bench aggregates the artifact store.
"""

import tempfile

import numpy as np

from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.campaigns import ArtifactStore, campaign_records, get_campaign, run_campaign
from repro.core.blockamc import BlockAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix

from benchmarks.conftest import paper_scale


def _variation_table():
    spec = get_campaign("ablation-variation", quick=not paper_scale())
    with tempfile.TemporaryDirectory() as root:
        run_campaign(spec, root, workers=0)
        grouped = campaign_records(spec, ArtifactStore(root))
    rows = []
    for variant in spec.variants:
        records = grouped[(variant.label, "wishart")]
        for n in spec.sizes:
            by_solver = {
                solver: [
                    r.relative_error
                    for r in records
                    if r.solver == solver and r.size == n
                ]
                for solver in spec.solvers
            }
            rows.append(
                [
                    variant.label,
                    n,
                    float(np.median(by_solver["original-amc"])),
                    float(np.median(by_solver["blockamc-1stage"])),
                ]
            )
    return format_table(
        ["variation model", "size", "original (median)", "BlockAMC (median)"],
        rows,
        title=(
            "Ablation — variation model reading (paper Fig. 7 plausibility), "
            f"campaign {spec.name}"
        ),
    )


def test_ablation_variation(report, benchmark):
    report("ablation_variation", _variation_table())

    matrix = wishart_matrix(16, rng=0)
    b = random_vector(16, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=2))
