"""Ablation 5 — absolute vs relative reading of "sigma = 0.05 G0".

DESIGN.md documents a deliberate model decision: the paper's variation
is modelled as 5% *of each cell's conductance* (relative), because the
absolute reading (5% of G0 on every cell) buries the weak off-diagonal
blocks of large normalized matrices in noise and produces errors far
above the published Fig. 7 curves. This ablation shows both.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.crossbar.array import ProgrammingConfig
from repro.devices.models import PAPER_G0_SIEMENS
from repro.devices.variations import GaussianVariation, RelativeGaussianVariation
from repro.workloads.matrices import random_vector, wishart_matrix


def _variation_table():
    sizes = (8, 32, 128) if paper_scale() else (8, 16, 32)
    trials = 10 if paper_scale() else 4
    models = {
        "relative 5% (default)": RelativeGaussianVariation(0.05),
        "absolute 0.05*G0 (literal)": GaussianVariation(0.05 * PAPER_G0_SIEMENS),
    }
    rows = []
    for label, model in models.items():
        for n in sizes:
            config = HardwareConfig(
                programming=ProgrammingConfig(variation=model)
            )
            errors_orig, errors_block = [], []
            for trial in range(trials):
                matrix = wishart_matrix(n, rng=100 + trial)
                b = random_vector(n, rng=200 + trial)
                errors_orig.append(
                    OriginalAMCSolver(config).solve(matrix, b, rng=trial).relative_error
                )
                errors_block.append(
                    BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
                )
            rows.append(
                [label, n, float(np.median(errors_orig)), float(np.median(errors_block))]
            )
    return format_table(
        ["variation model", "size", "original (median)", "BlockAMC (median)"],
        rows,
        title="Ablation — variation model reading (paper Fig. 7 plausibility)",
    )


def test_ablation_variation(report, benchmark):
    report("ablation_variation", _variation_table())

    matrix = wishart_matrix(16, rng=0)
    b = random_vector(16, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=2))
