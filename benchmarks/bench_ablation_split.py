"""Ablation 1 — where to split the matrix.

The paper notes "the size of A1 can be arbitrarily selected, only
requiring that it is square". This ablation sweeps the split point of a
fixed system under 5% variation and reports accuracy and the shared
op-amp column size (max block dimension — the hardware cost driver).
The half split minimizes the op-amp count; accuracy is fairly flat.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.partition import PartitionSpec
from repro.workloads.matrices import random_vector, wishart_matrix


def _split_table():
    n = 128 if paper_scale() else 32
    trials = 8 if paper_scale() else 4
    splits = sorted({max(1, n // 8), n // 4, n // 2, 3 * n // 4, n - max(1, n // 8)})
    rows = []
    for split in splits:
        errors = []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            solver = BlockAMCSolver(
                HardwareConfig.paper_variation(), PartitionSpec(split)
            )
            errors.append(solver.solve(matrix, b, rng=trial).relative_error)
        opa_count = max(split, n - split)
        rows.append([split, float(np.mean(errors)), float(np.std(errors)), opa_count])
    return format_table(
        ["split k", "mean error", "std", "shared OPA count"],
        rows,
        title=f"Ablation — split point sweep, {n}x{n} Wishart, sigma = 5%",
    )


def test_ablation_split(report, benchmark):
    report("ablation_split", _split_table())

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_variation(), PartitionSpec(8))
    benchmark(lambda: solver.solve(matrix, b, rng=2))
