"""Ablation 7 — write-and-verify vs the Gaussian residual model.

The paper justifies its Gaussian variation assumption with the
write&verify programming scheme. This ablation programs the same arrays
through the explicit pulse-loop simulation and through the statistical
model, comparing residual conductance spreads and end-to-end solver
accuracy — validating that the shortcut is faithful.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.crossbar.array import CrossbarArray, ProgrammingConfig
from repro.devices.models import DeviceSpec
from repro.devices.programming import write_verify
from repro.devices.variations import GaussianVariation
from repro.workloads.matrices import random_vector, wishart_matrix


def _residual_sigma():
    spec = DeviceSpec.finite_window(dynamic_range=100.0)
    rng = np.random.default_rng(0)
    target = rng.uniform(spec.g_min * 2, spec.g_max * 0.95, size=4000)
    result = write_verify(target, spec, rng=1)
    return result.residual_sigma(target), result.mean_pulses


def _accuracy_rows():
    n = 64 if paper_scale() else 16
    trials = 6 if paper_scale() else 3
    sigma, pulses = _residual_sigma()

    spec = DeviceSpec.finite_window(dynamic_range=100.0)
    configs = {
        f"write&verify loop (~{pulses:.0f} pulses/cell)": ProgrammingConfig(
            device=spec, use_write_verify=True
        ),
        f"Gaussian model (sigma={sigma*1e6:.1f} uS fit)": ProgrammingConfig(
            device=spec, variation=GaussianVariation(max(sigma, 1e-9))
        ),
    }
    rows = []
    for label, programming in configs.items():
        config = HardwareConfig(programming=programming)
        errors = []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            errors.append(
                BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
        rows.append([label, float(np.mean(errors)), float(np.std(errors))])
    return rows, sigma


def test_ablation_writeverify(report, benchmark):
    rows, sigma = _accuracy_rows()
    table = format_table(
        ["programming model", "mean error", "std"],
        rows,
        title=(
            "Ablation — explicit write&verify vs Gaussian residual model "
            f"(measured residual sigma = {sigma*1e6:.2f} uS)"
        ),
    )
    report("ablation_writeverify", table)

    spec = DeviceSpec.finite_window(dynamic_range=100.0)
    matrix = wishart_matrix(8, rng=0) / 10.0
    config = ProgrammingConfig(device=spec, use_write_verify=True)
    benchmark(lambda: CrossbarArray.program(matrix, config, rng=1))
