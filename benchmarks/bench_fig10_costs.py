"""Fig. 10 — area and power breakdown of the three solvers at n = 512.

Regenerates both bar charts: the per-component (OPA/DAC/ADC/RRAM) area
and power of the original AMC, one-stage, and two-stage BlockAMC
solvers, plus the headline savings (48.83% area / 40% power for the
one-stage solver; 12.3% / 37.4% for the two-stage).
"""

from benchmarks.conftest import paper_scale
from repro.analysis.costmodel import (
    ARCHITECTURES,
    savings_vs_original,
    solver_cost_breakdown,
)
from repro.analysis.reporting import format_table

#: Published totals at n = 512 (area mm^2; savings fractions).
PAPER_AREAS = {"original": 0.01577, "blockamc-1stage": 0.00807, "blockamc-2stage": 0.01383}
PAPER_SAVINGS = {
    "blockamc-1stage": {"area": 0.4883, "power": 0.40},
    "blockamc-2stage": {"area": 0.123, "power": 0.374},
}

SIZE = 512  # Fig. 10 is defined at 512 regardless of quick mode.


def _area_table():
    rows = []
    for arch in ARCHITECTURES:
        b = solver_cost_breakdown(arch, SIZE)
        rows.append(
            [
                arch,
                b.area_by_component["OPA"],
                b.area_by_component["DAC"],
                b.area_by_component["ADC"],
                b.area_by_component["RRAM"],
                b.total_area_mm2,
                PAPER_AREAS[arch],
            ]
        )
    return format_table(
        ["solver", "OPA", "DAC", "ADC", "RRAM", "total mm^2", "paper mm^2"],
        rows,
        title=f"Fig. 10(a) — area breakdown, n = {SIZE}",
    )


def _power_table():
    rows = []
    for arch in ARCHITECTURES:
        b = solver_cost_breakdown(arch, SIZE)
        rows.append(
            [
                arch,
                b.power_by_component["OPA"] * 1e3,
                b.power_by_component["DAC"] * 1e3,
                b.power_by_component["ADC"] * 1e3,
                b.power_by_component["RRAM"] * 1e3,
                b.total_power_w * 1e3,
            ]
        )
    return format_table(
        ["solver", "OPA mW", "DAC mW", "ADC mW", "RRAM mW", "total mW"],
        rows,
        title=f"Fig. 10(b) — power breakdown, n = {SIZE}",
    )


def _savings_table():
    savings = savings_vs_original(SIZE)
    rows = []
    for arch, values in savings.items():
        rows.append(
            [
                arch,
                values["area"],
                PAPER_SAVINGS[arch]["area"],
                values["power"],
                PAPER_SAVINGS[arch]["power"],
            ]
        )
    return format_table(
        ["solver", "area saved", "paper", "power saved", "paper"],
        rows,
        title="Fig. 10 — savings vs original AMC",
    )


def test_fig10_costs(report, benchmark):
    report("fig10_area", _area_table())
    report("fig10_power", _power_table())
    report("fig10_savings", _savings_table())

    sizes = (64, 128, 256, 512, 1024) if paper_scale() else (64, 512)

    def sweep():
        return [
            solver_cost_breakdown(arch, n).total_area_mm2
            for arch in ARCHITECTURES
            for n in sizes
        ]

    benchmark(sweep)
