"""Timing harness for old-vs-new hot-path comparisons.

Gives every perf bench the same measurement discipline — warmup, best-of
repeats, one JSON artifact — so PR-to-PR numbers are comparable. The
artifact (``BENCH_perf_engine.json`` at the repo root) is the perf
trajectory future PRs check themselves against: each entry records the
timed old path, the timed new path, and the resulting speedup.

Use :func:`time_call` for raw timings, :class:`PerfReport` to accumulate
entries, and :meth:`PerfReport.write` to produce the artifact.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

#: Repo root (the artifact lands here so it is visible at top level).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default artifact path.
DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_perf_engine.json"


def time_call(fn, *, repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``.

    ``warmup`` un-timed calls absorb one-time costs (imports, structure
    caches, BLAS thread spin-up) so the measurement reflects steady
    state; best-of rather than mean suppresses scheduler noise.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class PerfReport:
    """Accumulates named old-vs-new timing entries and writes the artifact."""

    def __init__(self):
        self.entries: dict[str, dict] = {}

    def add(
        self,
        name: str,
        old_s: float,
        new_s: float,
        *,
        detail: str = "",
    ) -> float:
        """Record one comparison; returns the speedup ``old_s / new_s``."""
        speedup = old_s / new_s if new_s > 0 else float("inf")
        self.entries[name] = {
            "old_s": old_s,
            "new_s": new_s,
            "speedup": round(speedup, 2),
            "detail": detail,
        }
        return speedup

    def rows(self) -> list[list]:
        """Table rows (name, old ms, new ms, speedup) for human output."""
        return [
            [name, entry["old_s"] * 1e3, entry["new_s"] * 1e3, entry["speedup"]]
            for name, entry in self.entries.items()
        ]

    def write(self, path: Path | None = None) -> Path:
        """Write the JSON artifact and return its path."""
        path = path or DEFAULT_ARTIFACT
        payload = {
            "generated_by": "benchmarks/bench_perf_engine.py",
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "entries": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path


def load_previous(path: Path | None = None) -> dict | None:
    """Previous artifact contents, or ``None`` if absent/corrupt."""
    path = path or DEFAULT_ARTIFACT
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
