"""Campaign bench: legacy sequential sweep vs the campaign runner.

Drives the Fig. 7 workload (seed 70, Wishart + Toeplitz) through three
execution paths:

1. **legacy loop** — the hand-rolled single-process
   :func:`repro.analysis.accuracy.run_trials` sweep the figure benches
   used to contain (one solver pipeline run per (size, trial, solver));
2. **campaign, 1 worker** — the same sweep as content-addressed work
   units executed inline through the trial-batched engine with a
   checkpointing artifact store;
3. **campaign, 4 process workers** — the same units on a
   ``ProcessPoolExecutor``.

Before timing anything the bench asserts the determinism contract:
campaign records are **bit-identical** to the legacy loop, the 1-worker
and 4-worker stores are bit-identical, and an interrupted (``max_units``)
then resumed store is bit-identical with zero recomputation. The
measured comparison lands in ``BENCH_campaigns.json`` at the repo root.

The multiprocess speedup floor (>= 2x vs the legacy loop with 4 workers)
is asserted on multi-core runners; on a single-core container the
4-worker pool cannot beat the clock, so only the single-worker
(batched-engine) floor applies there. ``cpu_count`` is recorded in the
artifact either way.

Run:  python benchmarks/bench_campaigns.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.perf_harness import time_call
from repro.analysis.accuracy import run_trials
from repro.analysis.reporting import format_table
from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    campaign_records,
    run_campaign,
    stores_equal,
)
from repro.serve.cache import SOLVER_KINDS
from repro.workloads.traffic import TRAFFIC_FAMILIES

#: Artifact path (repo root, like BENCH_perf_engine.json).
DEFAULT_ARTIFACT = _ROOT / "BENCH_campaigns.json"

#: Workload sizes: enough per-unit work that process fan-out matters.
FULL_SIZES = (16, 32, 48, 64)
FULL_TRIALS = 12
QUICK_SIZES = (8, 16, 32)
QUICK_TRIALS = 6

#: Loud-regression floors. The single-worker floor holds on any
#: machine (the campaign engine batches the Monte-Carlo stack); the
#: 4-worker floor additionally needs cores to fan out to.
MIN_SPEEDUP_1W = 1.5
MIN_SPEEDUP_4W = 2.0


def _spec(quick: bool) -> CampaignSpec:
    return CampaignSpec(
        name="fig7-variation-bench",
        title="Fig. 7 workload for the campaign wall-clock bench",
        solvers=("original-amc", "blockamc-1stage"),
        families=("wishart", "toeplitz"),
        sizes=QUICK_SIZES if quick else FULL_SIZES,
        trials=QUICK_TRIALS if quick else FULL_TRIALS,
        seed=70,
        hardware="variation",
    )


def _legacy_records(spec: CampaignSpec):
    """The pre-campaign sweep: sequential run_trials per family."""
    out = {}
    for family in spec.families:
        out[family] = run_trials(
            {
                name: (lambda name=name: SOLVER_KINDS[name](
                    spec.resolve_hardware(0)
                ))
                for name in spec.solvers
            },
            TRAFFIC_FAMILIES[family],
            spec.sizes,
            spec.trials,
            seed=spec.seed,
        )
    return out


def _assert_records_equal(legacy, campaign) -> None:
    legacy = sorted(legacy, key=lambda r: (r.size, r.trial, r.solver))
    campaign = sorted(campaign, key=lambda r: (r.size, r.trial, r.solver))
    assert len(legacy) == len(campaign)
    for a, b in zip(legacy, campaign):
        assert (a.solver, a.size, a.trial) == (b.solver, b.size, b.trial)
        assert a.relative_error == b.relative_error, (a.solver, a.size, a.trial)
        assert a.saturated == b.saturated
        assert a.analog_time_s == b.analog_time_s


def run_bench(quick: bool = False, out: Path | None = None) -> dict:
    """Execute the comparison and write the artifact; returns the payload."""
    import tempfile

    spec = _spec(quick)
    cpu_count = os.cpu_count() or 1
    print(
        f"workload: campaign {spec.name}, {len(spec.families)} families x "
        f"{len(spec.sizes)} sizes, {spec.trials} trials "
        f"({cpu_count} CPUs visible)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # --------------------------------------------------------------
        # determinism first: legacy vs campaign, 1w vs 4w, kill/resume
        # --------------------------------------------------------------
        run_campaign(spec, tmp / "ref", workers=0)
        ref = ArtifactStore(tmp / "ref")
        legacy = _legacy_records(spec)
        grouped = campaign_records(spec, ref)
        for family in spec.families:
            _assert_records_equal(legacy[family], grouped[("base", family)])
        print("campaign records: bit-identical to the legacy sequential loop")

        run_campaign(spec, tmp / "w4", workers=4)
        assert stores_equal(ref, ArtifactStore(tmp / "w4"))
        print("1-worker vs 4-worker stores: bit-identical")

        interrupted = run_campaign(spec, tmp / "resume", workers=0, max_units=3)
        assert not interrupted.finished
        resumed = run_campaign(spec, tmp / "resume", workers=4)
        assert resumed.finished and resumed.skipped_units == 3
        assert stores_equal(ref, ArtifactStore(tmp / "resume"))
        print("interrupt + resume: bit-identical store, no recomputation")

        # --------------------------------------------------------------
        # timing: fresh stores per repetition (no checkpoint reuse)
        # --------------------------------------------------------------
        counter = {"n": 0}

        def fresh_root():
            counter["n"] += 1
            return tmp / f"timed-{counter['n']}"

        legacy_s = time_call(lambda: _legacy_records(spec), repeats=2)
        campaign_1w_s = time_call(
            lambda: run_campaign(spec, fresh_root(), workers=0), repeats=2
        )
        campaign_4w_s = time_call(
            lambda: run_campaign(spec, fresh_root(), workers=4), repeats=2
        )

    speedup_1w = legacy_s / campaign_1w_s
    speedup_4w = legacy_s / campaign_4w_s
    total_units = len(spec.families) * len(spec.sizes)
    print(
        format_table(
            ["path", "ms", "units/s"],
            [
                ["legacy sequential sweep", legacy_s * 1e3, total_units / legacy_s],
                ["campaign, 1 worker", campaign_1w_s * 1e3, total_units / campaign_1w_s],
                ["campaign, 4 workers", campaign_4w_s * 1e3, total_units / campaign_4w_s],
            ],
            title=(
                f"Fig. 7 workload — campaign speedup {speedup_1w:.1f}x (1w) / "
                f"{speedup_4w:.1f}x (4w) vs legacy"
            ),
        )
    )

    payload = {
        "generated_by": "benchmarks/bench_campaigns.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "mode": "quick" if quick else "full",
        "workload": {
            "campaign": spec.name,
            "families": list(spec.families),
            "sizes": list(spec.sizes),
            "trials": spec.trials,
            "seed": spec.seed,
            "solvers": list(spec.solvers),
            "units": total_units,
        },
        "legacy_sequential_s": legacy_s,
        "campaign_1worker_s": campaign_1w_s,
        "campaign_4workers_s": campaign_4w_s,
        "speedup_1worker_vs_legacy": round(speedup_1w, 2),
        "speedup_4workers_vs_legacy": round(speedup_4w, 2),
        "bit_identical_to_legacy": True,
        "bit_identical_1w_vs_4w": True,
        "resume_no_recompute": True,
        "detail": (
            "legacy hand-rolled run_trials sweep vs repro.campaigns "
            "(content-addressed units, checkpointing store, trial-batched "
            "engine; 4-worker path on a ProcessPoolExecutor). The 4-worker "
            "floor is asserted only when cpu_count > 1."
        ),
    }
    path = out or DEFAULT_ARTIFACT
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path}")

    assert speedup_1w >= MIN_SPEEDUP_1W, (
        f"campaign 1-worker speedup {speedup_1w:.2f}x fell below the "
        f"{MIN_SPEEDUP_1W}x floor"
    )
    if cpu_count > 1:
        assert speedup_4w >= MIN_SPEEDUP_4W, (
            f"campaign 4-worker speedup {speedup_4w:.2f}x fell below the "
            f"{MIN_SPEEDUP_4W}x floor on a {cpu_count}-core machine"
        )
    else:
        print(
            f"single-core machine: {MIN_SPEEDUP_4W}x 4-worker floor not "
            "asserted (recorded for multi-core runners)"
        )
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-size run ({QUICK_TRIALS} trials over {QUICK_SIZES})",
    )
    parser.add_argument("--out", type=Path, default=None, help="artifact path")
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
