"""Shared benchmark plumbing.

Every ``bench_*.py`` module regenerates one table/figure of the paper at
a CI-friendly scale and prints it in the paper's row/series shape. Set
``REPRO_PAPER_SCALE=1`` to sweep the paper's full sizes (8..512) and 40
trials per point — slower, but the curves then cover the published range.

Tables are printed to stdout (run with ``-s`` to see them live) and also
written to ``benchmarks/results/<name>.txt`` so a ``--benchmark-only``
run leaves artifacts behind.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def paper_scale() -> bool:
    """True when the full paper-size sweep was requested."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false")


def bench_sizes() -> tuple[int, ...]:
    """Matrix sizes for accuracy sweeps."""
    if paper_scale():
        return (8, 16, 32, 64, 128, 256, 512)
    return (8, 16, 32)


def bench_trials() -> int:
    """Monte-Carlo trials per size."""
    return 40 if paper_scale() else 3


@pytest.fixture(scope="session")
def report():
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
