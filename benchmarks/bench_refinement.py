"""Sec. IV claim — AMC as a seed / preconditioner for digital solvers.

The paper positions AMC output as "a seed solution (or equivalently as a
preconditioner) for digital computers, to speed up the convergence of
iterative algorithms". This bench quantifies both modes:

- warm-starting conjugate gradients with the BlockAMC solution;
- full analog-inner iterative refinement to 1e-8.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.digital import conjugate_gradient
from repro.core.refinement import iterative_refinement
from repro.workloads.matrices import random_vector, wishart_matrix


def _seed_table():
    n = 256 if paper_scale() else 64
    rows = []
    for trial in range(3):
        matrix = wishart_matrix(n, rng=100 + trial, aspect=8.0)
        b = random_vector(n, rng=200 + trial)
        prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(
            matrix, rng=trial
        )
        seed = prepared.solve(b, rng=300 + trial)
        cold = conjugate_gradient(matrix, b, tol=1e-10)
        warm = conjugate_gradient(matrix, b, x0=seed.x, tol=1e-10)
        refined = iterative_refinement(
            lambda r, p=prepared, t=trial: p.solve(r, rng=400 + t).x,
            matrix,
            b,
            tol=1e-8,
        )
        rows.append(
            [
                trial,
                seed.relative_error,
                cold.iterations,
                warm.iterations,
                refined.iterations,
                refined.converged,
            ]
        )
    return format_table(
        ["trial", "AMC seed error", "CG cold iters", "CG warm iters", "refine iters", "refined"],
        rows,
        title=f"AMC seed / preconditioner study, {n}x{n} Wishart, sigma = 5%",
    )


def test_refinement(report, benchmark):
    report("refinement", _seed_table())

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(matrix, rng=2)
    rng = np.random.default_rng(3)

    def refine():
        return iterative_refinement(
            lambda r: prepared.solve(r, rng=rng).x, matrix, b, tol=1e-8
        )

    result = benchmark(refine)
    assert result.converged
