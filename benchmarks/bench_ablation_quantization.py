"""Ablation 3 — converter resolution vs two-stage accuracy.

The two-stage solver round-trips every inter-macro intermediate through
ADC -> memory -> DAC (Fig. 5), so its accuracy depends on converter
resolution in a way the fully-analog one-stage macro does not. This
ablation sweeps DAC/ADC bits for both solvers.

Since PR 4 the sweep is the ``ablation-quantization``
:class:`~repro.campaigns.CampaignSpec` — one hardware variant per
resolution — and this bench aggregates the artifact store.
"""

import tempfile

import numpy as np

from repro.amc.config import ConverterConfig, HardwareConfig
from repro.analysis.reporting import format_table
from repro.campaigns import ArtifactStore, campaign_records, get_campaign, run_campaign
from repro.core.multistage import MultiStageSolver
from repro.workloads.matrices import random_vector, wishart_matrix

from benchmarks.conftest import paper_scale


def _quantization_table():
    spec = get_campaign("ablation-quantization", quick=not paper_scale())
    with tempfile.TemporaryDirectory() as root:
        run_campaign(spec, root, workers=0)
        grouped = campaign_records(spec, ArtifactStore(root))
    n = spec.sizes[0]
    rows = []
    for variant in spec.variants:
        records = grouped[(variant.label, "wishart")]
        by_solver = {
            solver: [r.relative_error for r in records if r.solver == solver]
            for solver in spec.solvers
        }
        rows.append(
            [
                variant.label,
                float(np.mean(by_solver["blockamc-1stage"])),
                float(np.mean(by_solver["blockamc-2stage"])),
            ]
        )
    return format_table(
        ["bits", "1-stage error", "2-stage error"],
        rows,
        title=(
            f"Ablation — converter resolution, {n}x{n} Wishart, sigma = 5%, "
            f"campaign {spec.name}"
        ),
    )


def test_ablation_quantization(report, benchmark):
    report("ablation_quantization", _quantization_table())

    matrix = wishart_matrix(16, rng=0)
    b = random_vector(16, rng=1)
    config = HardwareConfig.paper_variation().with_(
        converters=ConverterConfig(dac_bits=8, adc_bits=8)
    )
    solver = MultiStageSolver(config, stages=2)
    benchmark(lambda: solver.solve(matrix, b, rng=2))
