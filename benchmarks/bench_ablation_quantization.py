"""Ablation 3 — converter resolution vs two-stage accuracy.

The two-stage solver round-trips every inter-macro intermediate through
ADC -> memory -> DAC (Fig. 5), so its accuracy depends on converter
resolution in a way the fully-analog one-stage macro does not. This
ablation sweeps DAC/ADC bits for both solvers.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import ConverterConfig, HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.workloads.matrices import random_vector, wishart_matrix


def _quantization_table():
    n = 64 if paper_scale() else 16
    trials = 8 if paper_scale() else 4
    rows = []
    for bits in (4, 6, 8, 10, 12, None):
        errors_one, errors_two = [], []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            config = HardwareConfig.paper_variation().with_(
                converters=ConverterConfig(dac_bits=bits, adc_bits=bits)
            )
            errors_one.append(
                BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
            errors_two.append(
                MultiStageSolver(config, stages=2)
                .solve(matrix, b, rng=trial)
                .relative_error
            )
        rows.append(
            [
                "ideal" if bits is None else bits,
                float(np.mean(errors_one)),
                float(np.mean(errors_two)),
            ]
        )
    return format_table(
        ["bits", "1-stage error", "2-stage error"],
        rows,
        title=f"Ablation — converter resolution, {n}x{n} Wishart, sigma = 5%",
    )


def test_ablation_quantization(report, benchmark):
    report("ablation_quantization", _quantization_table())

    matrix = wishart_matrix(16, rng=0)
    b = random_vector(16, rng=1)
    config = HardwareConfig.paper_variation().with_(
        converters=ConverterConfig(dac_bits=8, adc_bits=8)
    )
    solver = MultiStageSolver(config, stages=2)
    benchmark(lambda: solver.solve(matrix, b, rng=2))
