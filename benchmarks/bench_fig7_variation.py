"""Fig. 7 — accuracy under 5% programming variation.

Regenerates the error-vs-size curves of Fig. 7(a) (Wishart) and
Fig. 7(b) (Toeplitz) for the original AMC solver and one-stage
BlockAMC, 40 Monte-Carlo trials per size at paper scale.
"""

from benchmarks.conftest import bench_sizes, bench_trials
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_quantiles, accuracy_sweep, run_trials
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix

#: Paper values read off Fig. 7 at the extremes (original AMC, BlockAMC).
PAPER_FIG7 = {
    "wishart": {8: (0.05, 0.04), 512: (0.35, 0.30)},
    "toeplitz": {8: (0.10, 0.08), 512: (0.80, 0.45)},
}


def _sweep(family, matrix_factory):
    records = run_trials(
        {
            "original-amc": lambda: OriginalAMCSolver(HardwareConfig.paper_variation()),
            "blockamc-1stage": lambda: BlockAMCSolver(HardwareConfig.paper_variation()),
        },
        matrix_factory,
        bench_sizes(),
        bench_trials(),
        seed=70,
    )
    table = accuracy_sweep(records)
    medians = accuracy_quantiles(records, (0.5,))
    rows = []
    for size in bench_sizes():
        orig_mean, orig_std = table["original-amc"][size]
        block_mean, block_std = table["blockamc-1stage"][size]
        rows.append(
            [
                size,
                orig_mean,
                medians["original-amc"][size][0],
                orig_std,
                block_mean,
                medians["blockamc-1stage"][size][0],
                block_std,
            ]
        )
    anchors = PAPER_FIG7[family]
    return format_table(
        ["size", "orig mean", "orig med", "orig std", "block mean", "block med", "block std"],
        rows,
        title=(
            f"Fig. 7 — {family}, sigma = 5%, {bench_trials()} trials/size "
            f"(paper anchors: 8 -> {anchors[8]}, 512 -> {anchors[512]})"
        ),
    )


def test_fig7a_wishart(report, benchmark):
    report("fig7a_wishart", _sweep("wishart", lambda n, rng: wishart_matrix(n, rng)))

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=2))


def test_fig7b_toeplitz(report, benchmark):
    report("fig7b_toeplitz", _sweep("toeplitz", lambda n, rng: toeplitz_matrix(n, rng)))

    matrix = toeplitz_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    solver = OriginalAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=5))
