"""Fig. 7 — accuracy under 5% programming variation.

Regenerates the error-vs-size curves of Fig. 7(a) (Wishart) and
Fig. 7(b) (Toeplitz) for the original AMC solver and one-stage
BlockAMC, 40 Monte-Carlo trials per size at paper scale.

Since PR 4 this bench is a thin wrapper over the ``fig7-variation``
:class:`~repro.campaigns.CampaignSpec`: the sweep runs through the
campaign subsystem (content-addressed units, checkpointing artifact
store) and the tables aggregate from the store. Campaign records are
bit-identical to the legacy hand-rolled ``run_trials`` loop this file
used to contain (same seed 70, same stream derivation), which
``benchmarks/bench_campaigns.py`` and ``tests/test_campaigns.py``
assert explicitly.
"""

import functools
import tempfile

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_quantiles, accuracy_sweep
from repro.analysis.reporting import format_table
from repro.campaigns import ArtifactStore, campaign_records, get_campaign, run_campaign
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix

#: Paper values read off Fig. 7 at the extremes (original AMC, BlockAMC).
PAPER_FIG7 = {
    "wishart": {8: (0.05, 0.04), 512: (0.35, 0.30)},
    "toeplitz": {8: (0.10, 0.08), 512: (0.80, 0.45)},
}


@functools.lru_cache(maxsize=1)
def _campaign_tables():
    spec = get_campaign("fig7-variation", quick=not paper_scale())
    with tempfile.TemporaryDirectory() as root:
        run_campaign(spec, root, workers=0)
        grouped = campaign_records(spec, ArtifactStore(root))
    tables = {}
    for family in spec.families:
        records = grouped[(spec.variants[0].label, family)]
        table = accuracy_sweep(records)
        medians = accuracy_quantiles(records, (0.5,))
        rows = []
        for size in spec.sizes:
            orig_mean, orig_std = table["original-amc"][size]
            block_mean, block_std = table["blockamc-1stage"][size]
            rows.append(
                [
                    size,
                    orig_mean,
                    medians["original-amc"][size][0],
                    orig_std,
                    block_mean,
                    medians["blockamc-1stage"][size][0],
                    block_std,
                ]
            )
        anchors = PAPER_FIG7[family]
        tables[family] = format_table(
            ["size", "orig mean", "orig med", "orig std", "block mean", "block med", "block std"],
            rows,
            title=(
                f"Fig. 7 — {family}, sigma = 5%, {spec.trials} trials/size, "
                f"campaign {spec.name} "
                f"(paper anchors: 8 -> {anchors[8]}, 512 -> {anchors[512]})"
            ),
        )
    return tables


def test_fig7a_wishart(report, benchmark):
    report("fig7a_wishart", _campaign_tables()["wishart"])

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=2))


def test_fig7b_toeplitz(report, benchmark):
    report("fig7b_toeplitz", _campaign_tables()["toeplitz"])

    matrix = toeplitz_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    solver = OriginalAMCSolver(HardwareConfig.paper_variation())
    benchmark(lambda: solver.solve(matrix, b, rng=5))
