"""Perf engine bench: times the batched/cached hot paths against the
pre-optimization reference implementations and writes the
``BENCH_perf_engine.json`` trajectory artifact at the repo root.

Three comparisons, matching the engine's three layers:

1. ``exact_effective_matrix`` on a 64x64 array — reference cell-by-cell
   assembly + per-column solves (``method="loop"``) vs. the Schur/banded
   engine (target >= 10x).
2. The tier-1-scale Fig. 7 variation sweep — sequential ``run_trials``
   vs. trial-batched ``run_trials_batched`` (target >= 3x).
3. 64 right-hand sides against one programmed one-stage solver —
   sequential ``PreparedBlockAMC.solve`` loop vs. multi-RHS
   ``solve_many``.

Every comparison first asserts numerical equivalence (1e-10) so a
"speedup" can never come from computing something different.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import paper_scale
from benchmarks.perf_harness import PerfReport, time_call
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials, run_trials_batched
from repro.analysis.reporting import format_table
from repro.circuits.generators import build_mvm_circuit
from repro.circuits.mna import assemble_mna
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.crossbar.parasitics import (
    exact_effective_matrix,
    exact_effective_matrix_batch,
)
from repro.workloads.matrices import random_vector, wishart_matrix

#: Tier-1-scale sweep shape (the CI-friendly Fig. 7 configuration).
SWEEP_SIZES = (8, 16, 32)
SWEEP_TRIALS = 3

#: Loud-regression guards for the perf smoke. The committed artifact
#: documents the actual measured speedups (>= 10x / >= 3x at merge
#: time); the asserted floors leave headroom for noisy CI machines.
MIN_EXACT_SPEEDUP = 6.0
MIN_SWEEP_SPEEDUP = 2.0
MIN_SOLVE_MANY_SPEEDUP = 4.0
MIN_ASSEMBLY_SPEEDUP = 1.25
#: The ISSUE-5 acceptance floor: a >= 32-RHS multi-stage batch must beat
#: the sequential solve loop by at least 3x (measured ~20x at merge).
MIN_MULTISTAGE_SPEEDUP = 3.0
#: The ISSUE-8 acceptance floor: columnar build+assemble must beat the
#: cell-by-cell object pipeline by at least 5x (measured ~7x at merge).
MIN_COLUMNAR_SPEEDUP = 5.0
#: The batched exact extractor's win is amortization of the block
#: assembly; the per-trial LAPACK sweep dominates and cannot be stacked
#: without changing bits, so the honest floor is modest (measured ~1.4x
#: at 16x16; parity at 64x64).
MIN_BATCHED_EXACT_SPEEDUP = 1.05
#: The float32 tier must not *cost* wall-clock: the per-column LAPACK
#: sweep dominates at tier-1 sizes, so the honest floor is near-parity
#: (the tier's headline win is halved operand memory, not time).
MIN_F32_TIER_SPEEDUP = 0.7

_report = PerfReport()


def _sweep_args():
    sizes = SWEEP_SIZES if not paper_scale() else (8, 16, 32, 64, 128)
    trials = SWEEP_TRIALS if not paper_scale() else 40
    return sizes, trials


def test_exact_effective_matrix_64x64(report):
    rng = np.random.default_rng(7)
    g = rng.uniform(0.0, 1e-4, size=(64, 64))

    reference = exact_effective_matrix(g, 1.0, method="loop")
    fast = exact_effective_matrix(g, 1.0)
    assert np.max(np.abs(fast - reference)) < 1e-10

    old_s = time_call(lambda: exact_effective_matrix(g, 1.0, method="loop"), repeats=2)
    new_s = time_call(lambda: exact_effective_matrix(g, 1.0), repeats=5)
    speedup = _report.add(
        "exact_effective_matrix_64x64",
        old_s,
        new_s,
        detail="cell-loop assembly + per-column solves vs Schur engine",
    )
    report(
        "perf_exact_effective",
        format_table(
            ["path", "ms"],
            [["loop (reference)", old_s * 1e3], ["schur engine", new_s * 1e3]],
            title=f"exact_effective_matrix 64x64 — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_EXACT_SPEEDUP


def test_variation_sweep_tier1(report):
    config = HardwareConfig.paper_variation()
    sizes, trials = _sweep_args()

    def sequential():
        return run_trials(
            {
                "original-amc": lambda: OriginalAMCSolver(config),
                "blockamc-1stage": lambda: BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            sizes,
            trials,
            seed=70,
        )

    def batched():
        return run_trials_batched(
            {
                "original-amc": OriginalAMCSolver(config),
                "blockamc-1stage": BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            sizes,
            trials,
            seed=70,
        )

    seq_records = sequential()
    bat_records = batched()
    seq_table = accuracy_sweep(seq_records)
    bat_table = accuracy_sweep(bat_records)
    for solver, by_size in seq_table.items():
        for size, (mean, std) in by_size.items():
            b_mean, b_std = bat_table[solver][size]
            assert abs(mean - b_mean) < 1e-10
            assert abs(std - b_std) < 1e-10

    old_s = time_call(sequential, repeats=2)
    new_s = time_call(batched, repeats=3)
    speedup = _report.add(
        "variation_sweep_tier1",
        old_s,
        new_s,
        detail=(
            f"Fig.7 Wishart sweep, sizes={sizes}, trials={trials}, "
            "2 solvers, sequential run_trials vs run_trials_batched"
        ),
    )
    report(
        "perf_variation_sweep",
        format_table(
            ["path", "ms"],
            [["run_trials (sequential)", old_s * 1e3], ["run_trials_batched", new_s * 1e3]],
            title=f"tier-1 variation sweep — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_SWEEP_SPEEDUP


def test_solve_many_64rhs(report):
    config = HardwareConfig.paper_variation()
    matrix = wishart_matrix(32, rng=0)
    rhs = [random_vector(32, rng=i) for i in range(64)]
    prepared = BlockAMCSolver(config).prepare(matrix, rng=5)

    def sequential():
        gen = np.random.default_rng(9)
        return [prepared.solve(b, gen) for b in rhs]

    def many():
        return prepared.solve_many(rhs, np.random.default_rng(9))

    seq_results = sequential()
    many_results = many()
    worst = max(
        float(np.max(np.abs(a.x - b.x))) for a, b in zip(seq_results, many_results)
    )
    assert worst < 1e-10

    old_s = time_call(sequential, repeats=2)
    new_s = time_call(many, repeats=3)
    speedup = _report.add(
        "solve_many_64rhs_32x32",
        old_s,
        new_s,
        detail="64 RHS on one programmed BlockAMC: solve loop vs solve_many",
    )
    report(
        "perf_solve_many",
        format_table(
            ["path", "ms"],
            [["solve() loop", old_s * 1e3], ["solve_many()", new_s * 1e3]],
            title=f"64-RHS multi-solve — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_SOLVE_MANY_SPEEDUP


def test_multistage_solve_many_32rhs(report):
    """Batched two-stage recursion vs the sequential solve loop.

    32 right-hand sides against one prepared two-stage tree. The batched
    path must be **bit-identical** (not 1e-10: the recursion delegates
    to the shared kernel, so exact equality is the contract — see
    ``tests/test_kernel_equivalence.py``) and at least 3x faster.
    """
    config = HardwareConfig.paper_variation()
    matrix = wishart_matrix(32, rng=0)
    rhs = [random_vector(32, rng=i) for i in range(32)]
    prepared = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)

    def sequential():
        gen = np.random.default_rng(9)
        return [prepared.solve(b, gen) for b in rhs]

    def many():
        return prepared.solve_many(rhs, np.random.default_rng(9))

    seq_results = sequential()
    many_results = many()
    for a, b in zip(seq_results, many_results):
        assert np.array_equal(a.x, b.x)
        assert a.relative_error == b.relative_error

    old_s = time_call(sequential, repeats=2)
    new_s = time_call(many, repeats=3)
    speedup = _report.add(
        "multistage_solve_many_32rhs_32x32",
        old_s,
        new_s,
        detail=(
            "32 RHS on one prepared two-stage tree: solve loop vs "
            "matrix-valued solve_many (bit-identical asserted)"
        ),
    )
    report(
        "perf_multistage_solve_many",
        format_table(
            ["path", "ms"],
            [["solve() loop", old_s * 1e3], ["solve_many()", new_s * 1e3]],
            title=f"32-RHS two-stage multi-solve — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_MULTISTAGE_SPEEDUP


def test_netlist_assembly(report):
    """Bulk-append netlist assembly vs the cell-by-cell reference.

    The MVM ladder netlist (two arrays, explicit wire segments) is the
    ROADMAP's ~130k-object case at 256x256; the bench runs 128x128
    (quick) / 256x256 (paper scale) and requires the bulk path — flat
    comprehensions + cached structure templates + one-pass element
    registration — to beat the scalar builders while producing an
    element-for-element identical netlist.
    """
    n = 128 if not paper_scale() else 256
    rng = np.random.default_rng(11)
    g_pos = rng.uniform(1e-6, 1e-4, size=(n, n))
    g_neg = rng.uniform(1e-6, 1e-4, size=(n, n))
    v_in = rng.uniform(-1.0, 1.0, size=n)

    bulk_c, bulk_out = build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, r_wire=1.0, bulk=True)
    loop_c, loop_out = build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, r_wire=1.0, bulk=False)
    assert bulk_out == loop_out
    assert bulk_c.elements == loop_c.elements

    old_s = time_call(
        lambda: build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, r_wire=1.0, bulk=False),
        repeats=2,
    )
    new_s = time_call(
        lambda: build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, r_wire=1.0, bulk=True),
        repeats=3,
    )
    speedup = _report.add(
        f"netlist_assembly_mvm_{n}x{n}",
        old_s,
        new_s,
        detail=(
            f"{len(bulk_c)}-element MVM ladder netlist: cell-by-cell builders "
            "vs bulk-append + cached structure templates"
        ),
    )
    report(
        "perf_netlist_assembly",
        format_table(
            ["path", "ms"],
            [["cell-by-cell (reference)", old_s * 1e3], ["bulk-append", new_s * 1e3]],
            title=f"MVM netlist assembly {n}x{n} — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_ASSEMBLY_SPEEDUP


def test_netlist_assembly_columnar(report):
    """Columnar struct-of-arrays pipeline vs the cell-by-cell reference.

    Times the full netlist-to-MNA pipeline (build + assemble): the
    reference path appends ~100k element objects and stamps them one by
    one; the columnar path interns node arrays, appends contiguous
    value columns, and bulk-stamps whole runs. The assembled systems
    must be **byte-identical** — same node order, same branch order,
    same sparse structure, same floats — so the speedup can never come
    from assembling a different (even reordered) system.
    """
    n = 128 if not paper_scale() else 256
    rng = np.random.default_rng(11)
    g_pos = rng.uniform(1e-6, 1e-4, size=(n, n))
    g_neg = rng.uniform(1e-6, 1e-4, size=(n, n))
    v_in = rng.uniform(-1.0, 1.0, size=n)

    def reference():
        circuit, _ = build_mvm_circuit(
            g_pos, g_neg, v_in, 1e-4, r_wire=1.0, bulk=False
        )
        return assemble_mna(circuit)

    def columnar():
        circuit, _ = build_mvm_circuit(
            g_pos, g_neg, v_in, 1e-4, r_wire=1.0, columnar=True
        )
        return assemble_mna(circuit)

    ref_sys = reference()
    col_sys = columnar()
    assert col_sys.node_index == ref_sys.node_index
    assert col_sys.branch_index == ref_sys.branch_index
    assert col_sys.dense == ref_sys.dense
    if ref_sys.dense:
        assert col_sys.matrix.tobytes() == ref_sys.matrix.tobytes()
    else:
        assert col_sys.matrix.data.tobytes() == ref_sys.matrix.data.tobytes()
        assert col_sys.matrix.indices.tobytes() == ref_sys.matrix.indices.tobytes()
        assert col_sys.matrix.indptr.tobytes() == ref_sys.matrix.indptr.tobytes()

    old_s = time_call(reference, repeats=2)
    new_s = time_call(columnar, repeats=3)
    speedup = _report.add(
        f"netlist_assembly_columnar_{n}x{n}",
        old_s,
        new_s,
        detail=(
            f"MVM ladder build+assemble at {n}x{n}: cell-by-cell objects "
            "vs ColumnarCircuit bulk stamping (byte-identical MNA system)"
        ),
    )
    report(
        "perf_netlist_columnar",
        format_table(
            ["path", "ms"],
            [["object pipeline", old_s * 1e3], ["columnar pipeline", new_s * 1e3]],
            title=f"columnar MVM build+assemble {n}x{n} — {speedup:.1f}x",
        ),
    )
    assert speedup >= MIN_COLUMNAR_SPEEDUP


def test_exact_parasitics_batched(report):
    """Batched exact extraction vs the per-trial scalar loop, 64 trials.

    The batched engine amortizes Schur block assembly and input
    validation across the stack; the back-substitution sweep stays
    per-trial LAPACK (stacking it would change low-order bits).
    Bit-identity per trial is asserted, not approximate closeness.
    """
    trials, n = 64, 16
    rng = np.random.default_rng(13)
    g = rng.uniform(0.0, 1e-4, size=(trials, n, n))
    r_wire = 1.0

    def scalar_loop():
        return np.stack([exact_effective_matrix(g[t], r_wire) for t in range(trials)])

    def batched():
        return exact_effective_matrix_batch(g, r_wire)

    assert np.array_equal(scalar_loop(), batched())

    old_s = time_call(scalar_loop, repeats=3)
    new_s = time_call(batched, repeats=5)
    speedup = _report.add(
        f"exact_parasitics_batched_{trials}trials",
        old_s,
        new_s,
        detail=(
            f"{trials} stacked {n}x{n} exact extractions: per-trial scalar "
            "loop vs batched Schur assembly (bit-identical per trial)"
        ),
    )
    report(
        "perf_exact_batched",
        format_table(
            ["path", "ms"],
            [["scalar loop", old_s * 1e3], ["batched engine", new_s * 1e3]],
            title=f"batched exact parasitics {trials}x{n}x{n} — {speedup:.2f}x",
        ),
    )
    assert speedup >= MIN_BATCHED_EXACT_SPEEDUP


def test_float32_vs_float64_tier(report):
    """The ``numpy-f32`` precision tier vs the float64 default.

    Same 64-RHS workload as ``test_solve_many_64rhs``, solved once per
    tier on identically prepared solvers. The comparison first asserts
    the tier's documented tolerance contract (relative-L1, see
    :data:`repro.core.backend.F32_TOLERANCE`) — a "speedup" from a tier
    that broke its accuracy contract would be meaningless. The honest
    floor is near-parity: the kernel's per-column LAPACK sweeps dominate
    and sgetrf/sgetrs wins are size-dependent; the tier's value is the
    halved operand memory and the documented seam, not a guaranteed
    wall-clock win at tier-1 sizes.
    """
    from repro.core.backend import F32_TOLERANCE

    config64 = HardwareConfig.paper_variation()
    config32 = config64.with_(backend="numpy-f32")
    matrix = wishart_matrix(32, rng=0)
    rhs = [random_vector(32, rng=i) for i in range(64)]
    prep64 = BlockAMCSolver(config64).prepare(matrix, rng=5)
    prep32 = BlockAMCSolver(config32).prepare(matrix, rng=5)

    res64 = prep64.solve_many(rhs, np.random.default_rng(9), lean=True)
    res32 = prep32.solve_many(rhs, np.random.default_rng(9), lean=True)
    worst = 0.0
    for a, b in zip(res64, res32):
        assert a.x.dtype == np.float64
        assert b.x.dtype == np.float32
        assert F32_TOLERANCE.admits(b.x, a.x)
        worst = max(worst, F32_TOLERANCE.deviation(b.x, a.x))

    old_s = time_call(
        lambda: prep64.solve_many(rhs, np.random.default_rng(9), lean=True),
        repeats=3,
    )
    new_s = time_call(
        lambda: prep32.solve_many(rhs, np.random.default_rng(9), lean=True),
        repeats=3,
    )
    speedup = _report.add(
        "float32_tier_solve_many_64rhs_32x32",
        old_s,
        new_s,
        detail=(
            "64 RHS on one programmed BlockAMC at float64 vs the "
            f"numpy-f32 tier (worst relative-L1 deviation {worst:.2e}, "
            f"contract rtol {F32_TOLERANCE.rtol:g})"
        ),
    )
    report(
        "perf_float32_tier",
        format_table(
            ["tier", "ms"],
            [["numpy (float64)", old_s * 1e3], ["numpy-f32", new_s * 1e3]],
            title=f"float32 vs float64 tier, 64-RHS solve_many — {speedup:.2f}x",
        ),
    )
    assert speedup >= MIN_F32_TIER_SPEEDUP


def test_write_artifact():
    """Write BENCH_perf_engine.json (runs last: file-order collection)."""
    assert _report.entries, "perf comparisons must run before the artifact writes"
    path = _report.write()
    assert path.exists()
