"""Fig. 6 — ideal mapping: per-step scatter and error vs matrix size.

Regenerates:

- Fig. 6(a): per-step numerical vs BlockAMC outputs (reported as the
  worst per-step deviation and correlation);
- Fig. 6(b): final solution comparison for numerical / original AMC /
  BlockAMC on one Wishart system;
- Fig. 6(c): relative error vs size for both solvers under ideal
  conductance mapping (finite-gain, offset-limited periphery).
"""

import numpy as np

from benchmarks.conftest import bench_sizes, bench_trials
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix

#: Paper values read off Fig. 6(c) (original AMC / BlockAMC) for context.
PAPER_FIG6C = {
    8: (0.02, 0.01),
    512: (0.25, 0.13),
}


def _scatter_table():
    n = 64
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    config = HardwareConfig.paper_ideal_mapping()
    block = BlockAMCSolver(config).solve(matrix, b, rng=2)
    original = OriginalAMCSolver(config).solve(matrix, b, rng=2)

    rows = []
    refs = block.metadata["reference_steps"]
    outs = block.metadata["step_outputs"]
    for step in sorted(refs):
        ref = refs[step]
        actual = next(v for k, v in outs.items() if k.startswith(step))
        corr = float(np.corrcoef(ref, actual)[0, 1])
        rows.append([step, float(np.max(np.abs(actual - ref))), corr])
    rows.append(["final:blockamc", float(np.max(np.abs(block.x - block.reference))), 1.0])
    rows.append(
        ["final:original", float(np.max(np.abs(original.x - original.reference))), 1.0]
    )
    return format_table(
        ["step", "max |actual - numerical| (V)", "correlation"],
        rows,
        title=f"Fig. 6(a/b) — per-step scatter summary, {n}x{n} Wishart, ideal mapping",
    )


def _sweep_table():
    records = run_trials(
        {
            "original-amc": lambda: OriginalAMCSolver(HardwareConfig.paper_ideal_mapping()),
            "blockamc-1stage": lambda: BlockAMCSolver(HardwareConfig.paper_ideal_mapping()),
        },
        lambda n, rng: wishart_matrix(n, rng),
        bench_sizes(),
        bench_trials(),
        seed=60,
    )
    table = accuracy_sweep(records)
    rows = [
        [
            size,
            table["original-amc"][size][0],
            table["blockamc-1stage"][size][0],
            table["original-amc"][size][0] / max(table["blockamc-1stage"][size][0], 1e-12),
        ]
        for size in bench_sizes()
    ]
    return format_table(
        ["size", "original AMC", "BlockAMC", "orig/block"],
        rows,
        title=(
            "Fig. 6(c) — relative error vs Wishart size, ideal mapping "
            f"(paper@512: orig~{PAPER_FIG6C[512][0]}, block~{PAPER_FIG6C[512][1]})"
        ),
    )


def test_fig6_scatter_and_sweep(report, benchmark):
    report("fig6_scatter", _scatter_table())
    report("fig6_sweep", _sweep_table())

    matrix = wishart_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    prepared = BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).prepare(matrix, rng=5)
    benchmark(lambda: prepared.solve(b, rng=6))
