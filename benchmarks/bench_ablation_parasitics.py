"""Ablation 2 — parasitic model fidelity vs runtime.

DESIGN.md substitutes HSPICE with two interconnect models: an exact
sparse ladder solve and a first-order perturbation expansion. This
ablation quantifies the trade: model agreement (residual relative to
the full wire-induced perturbation) and wall-clock per extraction.
"""

import time

import numpy as np

from benchmarks.conftest import paper_scale
from repro.analysis.reporting import format_table
from repro.crossbar.parasitics import (
    exact_effective_matrix,
    first_order_effective_matrix,
)

G0 = 100e-6
R_WIRE = 1.0


def _fidelity_table():
    sizes = (16, 32, 64, 128) if paper_scale() else (8, 16, 32)
    rows = []
    for n in sizes:
        rng = np.random.default_rng(n)
        g = rng.uniform(0.0, G0, size=(n, n))

        t0 = time.perf_counter()
        exact = exact_effective_matrix(g, R_WIRE)
        t_exact = time.perf_counter() - t0

        t0 = time.perf_counter()
        fast = first_order_effective_matrix(g, R_WIRE)
        t_fast = time.perf_counter() - t0

        perturbation = float(np.linalg.norm(exact - g))
        residual = float(np.linalg.norm(fast - exact))
        rows.append(
            [
                n,
                perturbation / float(np.linalg.norm(g)),
                residual / perturbation,
                t_exact * 1e3,
                t_fast * 1e3,
                t_exact / max(t_fast, 1e-9),
            ]
        )
    return format_table(
        ["size", "wire effect (rel)", "model residual", "exact ms", "fast ms", "speedup"],
        rows,
        title=f"Ablation — parasitic model fidelity, r = {R_WIRE} ohm/segment",
    )


def test_ablation_parasitics(report, benchmark):
    report("ablation_parasitics", _fidelity_table())

    rng = np.random.default_rng(0)
    g = rng.uniform(0.0, G0, size=(32, 32))
    benchmark(lambda: first_order_effective_matrix(g, R_WIRE))
