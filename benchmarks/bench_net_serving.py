"""Network serving bench: the wire tier, measured and asserted.

Drives mixed traffic through the ``repro.serve.net`` TCP front-end with
process-based workers and records the acceptance facts of the network
tier in ``BENCH_net_serving.json``:

1. **bit-identity over the wire** — every result served through frames,
   shared-memory transport, and process workers equals the in-process
   sequential reference bit for bit (the wire carries raw float64
   bytes; nothing reformats them).
2. **throughput: process tier vs thread tier** — the same workload
   through :class:`~repro.serve.SolverService` (threads, shared
   memory space) and through :class:`~repro.serve.net.NetServer`
   (processes + TCP round-trips). The process tier buys GIL-free solve
   parallelism at the price of wire framing and queue hops, so its
   relative throughput is the honest cost of the network boundary —
   asserted to stay within a sane factor only on multi-core hosts,
   recorded everywhere.
3. **chaos over the wire** — a seeded storm of injected solve failures,
   worker SIGKILLs, and slow calls: no hung ticket, every failure a
   typed :class:`~repro.errors.ReproError` over the wire, exactly the
   poisoned requests failing after retries, every success still
   bit-identical.

Run:  python benchmarks/bench_net_serving.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.solution import LeanSolveResult
from repro.errors import ReproError, is_retryable
from repro.serve import (
    ResiliencePolicy,
    ServiceConfig,
    SolverService,
    run_sequential,
)
from repro.serve.net import NetClient, NetServer, NetServerConfig
from repro.testing import ChaosPlan, rhs_tag
from repro.testing.chaos import CHAOS_ENV
from repro.workloads.traffic import drive_network, mixed_traffic

#: Artifact path (repo root, like BENCH_serving.json).
DEFAULT_ARTIFACT = _ROOT / "BENCH_net_serving.json"

FULL_REQUESTS = 64
FULL_SIZES = (32, 48)
QUICK_REQUESTS = 32
QUICK_SIZES = (16, 24)

#: Chaos rates for the wire soak, with realized-count floors enforced by
#: a plan-seed scan (same discipline as bench_resilience.py).
FAIL_RATE = 0.15
KILL_RATE = 0.08
SLOW_RATE = 0.12
SLOW_CALL_S = 0.03
MIN_POISONED_FRACTION = 0.10
MIN_KILLS = 2
MIN_SLOW = 1

#: On a multi-core host the process tier must not collapse under the
#: wire overhead: at least this fraction of the thread tier's
#: throughput. Single-core hosts only record the ratio (process
#: workers cannot be parallel there, so the wire cost is all cost).
MIN_NET_VS_THREAD = 0.3


def _find_plan(tags: list[str]) -> ChaosPlan:
    """Scan plan seeds until the realized fault counts meet the floors."""
    need_poisoned = max(2, math.ceil(MIN_POISONED_FRACTION * len(tags)))
    for seed in range(5000):
        plan = ChaosPlan(
            seed=seed,
            solve_failure_rate=FAIL_RATE,
            worker_kill_rate=KILL_RATE,
            slow_call_rate=SLOW_RATE,
            slow_call_s=SLOW_CALL_S,
        )
        poisoned = sum(plan.decides("fail", FAIL_RATE, t) for t in tags)
        kills = sum(plan.decides("kill", KILL_RATE, t) for t in tags)
        slows = sum(plan.decides("slow", SLOW_RATE, t) for t in tags)
        if (
            poisoned >= need_poisoned
            and kills >= MIN_KILLS
            and slows >= MIN_SLOW
            and poisoned < len(tags)
        ):
            return plan
    raise AssertionError("no chaos seed met the fault floors in 5000 tries")


def _assert_identical(outcomes, reference) -> None:
    for i, outcome in enumerate(outcomes):
        # Thread tier answers with full SolveResult, net tier with
        # LeanSolveResult; both carry the same solution bits.
        assert not isinstance(outcome, BaseException), (
            f"request {i} failed unexpectedly: {type(outcome).__name__}: {outcome}"
        )
        assert np.array_equal(outcome.x, reference[i].x), f"request {i} diverged"
        assert np.array_equal(outcome.reference, reference[i].reference)


def run_bench(quick: bool = False, out: Path | None = None) -> dict:
    """Execute the network soaks and write the artifact; returns the payload."""
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    sizes = QUICK_SIZES if quick else FULL_SIZES
    cpu_count = os.cpu_count() or 1
    requests = mixed_traffic(n_requests, unique_matrices=4, sizes=sizes, seed=42)
    base = ServiceConfig(workers=2, max_batch_size=16, max_linger_s=0.002)
    reference, _ = run_sequential(requests, base)
    print(
        f"workload: {n_requests} mixed requests, sizes {sizes}, "
        f"{cpu_count} CPUs visible"
    )

    # ------------------------------------------------------------------
    # thread tier (in-process shards, shared address space)
    # ------------------------------------------------------------------
    thread_start = time.perf_counter()
    with SolverService(base) as service:
        thread_results = service.solve_all(requests)
    thread_s = time.perf_counter() - thread_start
    _assert_identical(thread_results, reference)
    thread_rps = n_requests / thread_s

    # ------------------------------------------------------------------
    # process tier (TCP frames + shared-memory result transport)
    # ------------------------------------------------------------------
    net_start = time.perf_counter()
    with NetServer(NetServerConfig(service=base)) as server:
        host, port = server.address
        with NetClient(host, port, timeout_s=300.0) as client:
            net_results = drive_network(client, requests, timeout_s=300.0)
            net_metrics = client.metrics()
    net_s = time.perf_counter() - net_start
    _assert_identical(net_results, reference)
    net_rps = n_requests / net_s
    net_vs_thread = net_rps / thread_rps
    assert net_metrics.requests_completed == n_requests
    assert net_metrics.requests_failed == 0
    if cpu_count > 1:
        assert net_vs_thread >= MIN_NET_VS_THREAD, (
            f"process tier at {net_vs_thread:.2f}x of the thread tier, below "
            f"the {MIN_NET_VS_THREAD}x floor on a {cpu_count}-core machine"
        )

    print(
        format_table(
            ["tier", "wall (ms)", "throughput (req/s)"],
            [
                ["threads (in-process)", f"{thread_s * 1e3:.0f}", f"{thread_rps:.1f}"],
                ["processes (over TCP)", f"{net_s * 1e3:.0f}", f"{net_rps:.1f}"],
            ],
            title=f"clean soak — both tiers bit-identical to sequential "
            f"({net_vs_thread:.2f}x net/thread)",
        )
    )

    # ------------------------------------------------------------------
    # chaos over the wire: kills + slow storm + poisoned solves
    # ------------------------------------------------------------------
    tags = [rhs_tag(r.b) for r in requests]
    plan = _find_plan(tags)
    poisoned = {i for i, t in enumerate(tags) if plan.decides("fail", FAIL_RATE, t)}
    killed = {i for i, t in enumerate(tags) if plan.decides("kill", KILL_RATE, t)}
    slowed = {i for i, t in enumerate(tags) if plan.decides("slow", SLOW_RATE, t)}
    print(
        f"\nchaos seed {plan.seed}: {len(poisoned)} poisoned solves, "
        f"{len(killed)} worker kills, {len(slowed)} slow calls "
        f"({SLOW_CALL_S * 1e3:.0f}ms storm)"
    )
    chaos_service = ServiceConfig(
        workers=base.workers,
        max_batch_size=base.max_batch_size,
        max_linger_s=base.max_linger_s,
        resilience=ResiliencePolicy(
            # Breakers off: hot keys at a 15% poison rate would trip them
            # by design and turn deterministic SolverErrors into
            # time-dependent CircuitOpenErrors.
            breaker_threshold=0,
            max_shard_restarts=len(killed) + 1,
        ),
    )
    saved_env = os.environ.get(CHAOS_ENV)
    chaos_start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-net-chaos-") as state_dir:
        budgeted = dataclasses.replace(plan, state_dir=state_dir)
        os.environ[CHAOS_ENV] = budgeted.chaos_env()[CHAOS_ENV]
        try:
            with NetServer(NetServerConfig(service=chaos_service)) as server:
                host, port = server.address
                with NetClient(host, port, timeout_s=300.0) as client:
                    outcomes = drive_network(
                        client,
                        requests,
                        max_rounds=len(killed) + 3,
                        timeout_s=300.0,  # no hung tickets, ever
                    )
                    chaos_metrics = client.metrics()
        finally:
            if saved_env is None:
                os.environ.pop(CHAOS_ENV, None)
            else:
                os.environ[CHAOS_ENV] = saved_env
        realized_kills = budgeted.injected("kill")
    chaos_s = time.perf_counter() - chaos_start

    hung = sum(1 for o in outcomes if o is None)
    failures = {i: o for i, o in enumerate(outcomes) if isinstance(o, BaseException)}
    successes = {
        i: o for i, o in enumerate(outcomes) if isinstance(o, LeanSolveResult)
    }
    all_typed = all(isinstance(o, ReproError) for o in failures.values())
    none_retryable = all(not is_retryable(o) for o in failures.values())
    successes_identical = all(
        np.array_equal(r.x, reference[i].x)
        and r.relative_error == reference[i].relative_error
        for i, r in successes.items()
    )
    assert hung == 0, f"{hung} tickets never resolved"
    assert all_typed, "an untyped failure crossed the wire"
    assert none_retryable, "a retryable failure survived the retry rounds"
    assert successes_identical, "a success diverged from the fault-free reference"
    # Kills and slow calls retried away: exactly the poisoned requests fail.
    assert set(failures) == poisoned, (
        f"failed set {sorted(failures)} != poisoned set {sorted(poisoned)}"
    )
    assert chaos_metrics.shard_crashes >= MIN_KILLS
    assert realized_kills >= MIN_KILLS

    print(
        format_table(
            ["fact", "value"],
            [
                ["requests", str(n_requests)],
                ["final failures (all injected, all typed)", str(len(failures))],
                ["successes, bit-identical", f"{len(successes)}, True"],
                ["hung tickets", "0"],
                ["worker SIGKILLs fired", str(realized_kills)],
                ["shard crashes survived", str(chaos_metrics.shard_crashes)],
                [
                    "latency p99 under faults (ms)",
                    f"{chaos_metrics.latency_p99_s * 1e3:.2f}",
                ],
            ],
            title=f"chaos soak over the wire — {chaos_s * 1e3:.0f}ms wall",
        )
    )

    payload = {
        "generated_by": "benchmarks/bench_net_serving.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "mode": "quick" if quick else "full",
        "throughput": {
            "requests": n_requests,
            "sizes": list(sizes),
            "workers": base.workers,
            "thread_tier_rps": thread_rps,
            "thread_tier_wall_s": thread_s,
            "process_tier_rps": net_rps,
            "process_tier_wall_s": net_s,
            "process_vs_thread": net_vs_thread,
            "floor_asserted": cpu_count > 1,
            "both_tiers_bit_identical_to_sequential": True,
        },
        "chaos": {
            "chaos_seed": plan.seed,
            "injected": {
                "solve_failures": len(poisoned),
                "solve_failure_fraction": round(len(poisoned) / n_requests, 3),
                "worker_kills_decided": len(killed),
                "worker_kills_fired": realized_kills,
                "slow_calls": len(slowed),
                "slow_call_s": SLOW_CALL_S,
            },
            "no_hung_tickets": hung == 0,
            "all_failures_typed": all_typed,
            "failures_exactly_injected": set(failures) == poisoned,
            "successes_bit_identical_to_reference": successes_identical,
            "shard_crashes": chaos_metrics.shard_crashes,
            "wall_s": chaos_s,
        },
        "detail": (
            "mixed traffic through NetServer/NetClient (TCP frames, process "
            "workers, shared-memory result transport) vs run_sequential; "
            "clean throughput against the in-process thread tier, then a "
            "seeded chaos storm (poisoned solves, worker SIGKILLs, slow "
            "calls) with bounded client retry via drive_network"
        ),
    }
    path = out or DEFAULT_ARTIFACT
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-size run ({QUICK_REQUESTS} requests, sizes {QUICK_SIZES})",
    )
    parser.add_argument("--out", type=Path, default=None, help="artifact path")
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
