"""Transient study — the O(1) computing-time claim.

The paper (Sec. I): "the time complexity of in-memory AMC can be
optimized to approach O(1)". This bench simulates the INV circuit's
actual settling trajectory across matrix sizes and shows the settling
time is governed by conditioning and the op-amp GBWP, not by size —
unlike the O(n^3) digital direct solve it replaces.
"""

import time

import numpy as np

from benchmarks.conftest import paper_scale
from repro.analysis.reporting import format_table
from repro.circuits.transient import simulate_inv_transient
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.workloads.matrices import random_vector, wishart_matrix


def _settling_table():
    sizes = (8, 16, 32, 64, 128) if paper_scale() else (4, 8, 16, 32)
    rows = []
    for n in sizes:
        matrix, _ = normalize_matrix(wishart_matrix(n, rng=0, aspect=8.0))
        array = CrossbarArray.program(matrix, rng=1, pre_normalized=True)
        v = random_vector(n, rng=2) * 0.2

        result = simulate_inv_transient(array, v, gbwp_hz=100e6, epsilon=1e-3)

        t0 = time.perf_counter()
        np.linalg.solve(matrix, v)
        t_digital = time.perf_counter() - t0

        rows.append(
            [
                n,
                result.settling_time_s * 1e9,
                result.slowest_pole_hz / 1e6,
                result.stable,
                t_digital * 1e6,
            ]
        )
    return format_table(
        ["size", "analog settling (ns)", "slowest pole (MHz)", "stable", "digital LU (us)"],
        rows,
        title="INV circuit settling vs size (the O(1) claim), GBWP = 100 MHz",
    )


def test_transient_settling(report, benchmark):
    report("transient_settling", _settling_table())

    matrix, _ = normalize_matrix(wishart_matrix(16, rng=3))
    array = CrossbarArray.program(matrix, rng=4, pre_normalized=True)
    v = random_vector(16, rng=5) * 0.2
    benchmark(lambda: simulate_inv_transient(array, v))
