"""Precision-extension study — compensated slicing (extension).

Quantifies how many read-verified residual slices it takes to turn 5%
analog arrays into a high-precision matrix multiplier, and how deep the
analog-dominant refinement loop can then drive the solution residual.
Extends the paper toward the scientific-computing deployments its
introduction motivates (cf. its ref. [15]).
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import ConverterConfig, HardwareConfig, OpAmpConfig
from repro.analysis.reporting import format_table
from repro.core.precision import CompensatedMVM, compensated_refinement
from repro.workloads.matrices import random_vector, wishart_matrix


def _config():
    """5% variation, chopper-stabilized amps, precision converters."""
    return HardwareConfig.paper_variation().with_(
        opamp=OpAmpConfig(input_offset_sigma_v=0.0),
        converters=ConverterConfig(dac_bits=16, adc_bits=16),
    )


def _slicing_table():
    n = 64 if paper_scale() else 16
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    x = np.linalg.solve(matrix, b)
    config = _config()

    rows = []
    for slices in (1, 2, 3, 4):
        mvm = CompensatedMVM(matrix, config, rng=2, slices=slices)
        product, _ = mvm.apply(x, rng=3)
        mvm_error = float(
            np.linalg.norm(product - matrix @ x) / np.linalg.norm(matrix @ x)
        )
        refined = compensated_refinement(
            matrix, b, config, rng=4, slices=slices, tol=1e-12, max_iterations=30
        )
        rows.append(
            [
                slices,
                mvm.residual_norm,
                mvm_error,
                refined.refinement.final_residual,
                refined.refinement.iterations,
            ]
        )
    return format_table(
        ["slices", "matrix residual", "MVM rel error", "refined residual", "iters"],
        rows,
        title=(
            f"Compensated slicing, {n}x{n} Wishart, 5% variation, "
            "chopped amps, 16-bit converters"
        ),
    )


def test_precision(report, benchmark):
    report("precision_slicing", _slicing_table())

    matrix = wishart_matrix(16, rng=5)
    b = random_vector(16, rng=6)
    config = _config()
    benchmark(
        lambda: compensated_refinement(
            matrix, b, config, rng=7, slices=2, tol=1e-4, max_iterations=20
        )
    )
