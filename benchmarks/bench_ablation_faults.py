"""Ablation 6 — yield: stuck-at cell faults.

The paper motivates partitioning partly with yield ("memory cells may
get stuck in the ON or OFF state"). This ablation sweeps the stuck-cell
probability and compares the monolithic and partitioned solvers —
smaller arrays confine each fault's blast radius to one block.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.crossbar.array import ProgrammingConfig
from repro.devices.faults import StuckFaultModel
from repro.workloads.matrices import random_vector, wishart_matrix


def _fault_table():
    n = 64 if paper_scale() else 24
    trials = 10 if paper_scale() else 4
    rows = []
    for p_fault in (0.0, 1e-4, 1e-3, 5e-3):
        config = HardwareConfig(
            programming=ProgrammingConfig(
                faults=StuckFaultModel(
                    p_stuck_on=p_fault / 2.0 if p_fault else 0.0,
                    p_stuck_off=p_fault / 2.0 if p_fault else 0.0,
                )
            )
        )
        errors_orig, errors_block = [], []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            errors_orig.append(
                OriginalAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
            errors_block.append(
                BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
        rows.append(
            [p_fault, float(np.median(errors_orig)), float(np.median(errors_block))]
        )
    return format_table(
        ["stuck-cell probability", "original (median)", "BlockAMC (median)"],
        rows,
        title=f"Ablation — stuck-at faults, {n}x{n} Wishart",
    )


def test_ablation_faults(report, benchmark):
    report("ablation_faults", _fault_table())

    config = HardwareConfig(
        programming=ProgrammingConfig(faults=StuckFaultModel(p_stuck_off=1e-3))
    )
    matrix = wishart_matrix(24, rng=0)
    b = random_vector(24, rng=1)
    solver = BlockAMCSolver(config)
    benchmark(lambda: solver.solve(matrix, b, rng=2))
