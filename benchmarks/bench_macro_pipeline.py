"""Macro throughput — the S&H double-buffering pipelining claim.

The paper: "The use of two S&H modules renders the pipelining of the
algorithm, thus improving the throughput of the system." This bench
runs the dataflow simulation for a batch of solves with and without
pipelining, using settling times from the dynamics model.
"""

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.amc.scheduler import simulate_schedule
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix

#: Conversion and S&H timing assumptions (8-bit SAR-class converters).
T_DAC = 50e-9
T_ADC = 100e-9
T_SNH = 5e-9


def _op_times(n):
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    result = BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).solve(matrix, b, rng=2)
    return [op.settling_time_s for op in result.operations]


def _pipeline_table():
    n = 256 if paper_scale() else 32
    op_times = _op_times(n)
    batch = 32
    rows = []
    for pipelined in (False, True):
        sim = simulate_schedule(
            op_times,
            t_dac=T_DAC,
            t_adc=T_ADC,
            t_snh=T_SNH,
            n_problems=batch,
            pipelined=pipelined,
        )
        rows.append(
            [
                "pipelined" if pipelined else "serial",
                sim.latency_first * 1e6,
                sim.makespan * 1e6,
                sim.throughput / 1e6,
            ]
        )
    serial_tp = rows[0][3]
    piped_tp = rows[1][3]
    rows.append(["speedup", "-", "-", piped_tp / serial_tp])
    return format_table(
        ["schedule", "latency (us)", "makespan (us)", "throughput (Msolve/s)"],
        rows,
        title=f"Macro pipelining, {n}x{n} system, batch of {batch} solves",
    )


def test_macro_pipeline(report, benchmark):
    report("macro_pipeline", _pipeline_table())

    op_times = _op_times(32)
    benchmark(
        lambda: simulate_schedule(
            op_times, t_dac=T_DAC, t_adc=T_ADC, t_snh=T_SNH, n_problems=64
        )
    )
