"""Device-technology study — why the paper picks analog RRAM.

Sec. II of the paper surveys RRAM / PCM / MRAM / FTJ / FeFET and argues
for analog RRAM. This bench makes the argument quantitative: the same
BlockAMC solve on each device family's preset (level count + window),
plus the PCM-specific conductance drift over time.
"""

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.amc.ops import AMCOperations
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.crossbar.array import CrossbarArray, ProgrammingConfig
from repro.crossbar.mapping import normalize_matrix
from repro.devices.presets import DEVICE_PRESETS, DriftModel
from repro.workloads.matrices import random_vector, wishart_matrix


def _family_table():
    n = 64 if paper_scale() else 16
    trials = 8 if paper_scale() else 4
    rows = []
    for family, preset in DEVICE_PRESETS.items():
        spec = preset()
        config = HardwareConfig(
            programming=ProgrammingConfig(device=spec, quantize=spec.levels is not None)
        )
        errors = []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            errors.append(
                BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
        rows.append(
            [
                family,
                "analog" if spec.levels is None else spec.levels,
                f"{spec.dynamic_range:.0f}",
                float(np.median(errors)),
            ]
        )
    return format_table(
        ["family", "levels", "dyn. range", "median error"],
        rows,
        title=f"Device families on the same {n}x{n} BlockAMC solve (quantization only)",
    )


def _drift_table():
    n = 16
    matrix, _ = normalize_matrix(wishart_matrix(n, rng=0))
    fresh = CrossbarArray.program(matrix, rng=1, pre_normalized=True)
    ops = AMCOperations(HardwareConfig.ideal())
    v = random_vector(n, rng=2) * 0.2
    exact = -np.linalg.solve(matrix, v)
    model = DriftModel.pcm_typical()

    rows = []
    for elapsed, label in [
        (1.0, "1 s (verify)"),
        (60.0, "1 minute"),
        (3600.0, "1 hour"),
        (86400.0, "1 day"),
        (604800.0, "1 week"),
    ]:
        aged = CrossbarArray(
            model.apply(fresh.g_pos, elapsed),
            model.apply(fresh.g_neg, elapsed),
            g_unit=fresh.g_unit,
            target=fresh.target,
        )
        out = ops.inv(aged, v).output
        error = float(np.sum(np.abs(out - exact)) / np.sum(np.abs(exact)))
        rows.append([label, (elapsed / model.t0) ** (-model.nu), error])
    return format_table(
        ["age", "conductance factor", "INV relative error"],
        rows,
        title="PCM drift (nu = 0.05): a matrix programmed once decays",
    )


def test_device_families(report, benchmark):
    report("device_families", _family_table())
    report("device_drift", _drift_table())

    matrix = wishart_matrix(16, rng=3)
    b = random_vector(16, rng=4)
    spec = DEVICE_PRESETS["rram-64"]()
    config = HardwareConfig(
        programming=ProgrammingConfig(device=spec, quantize=True)
    )
    solver = BlockAMCSolver(config)
    benchmark(lambda: solver.solve(matrix, b, rng=5))
