"""Energy per solve — dynamic extension of the paper's Fig. 10(b).

Fig. 10(b) compares static power. This bench combines the settling-time
models with the calibrated component powers into energy *per solved
system*, where the macro's shorter converter vectors and the two-stage
solver's extra conversions both become visible.
"""

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.energymodel import solve_energy
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix


def _energy_table():
    n = 256 if paper_scale() else 32
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    config = HardwareConfig.paper_ideal_mapping()

    solvers = {
        "original-amc": OriginalAMCSolver(config),
        "blockamc-1stage": BlockAMCSolver(config),
        "blockamc-2stage": MultiStageSolver(config, stages=2),
    }
    rows = []
    for name, solver in solvers.items():
        result = solver.solve(matrix, b, rng=2)
        energy = solve_energy(result)
        rows.append(
            [
                name,
                result.analog_time_s * 1e6,
                energy.opa * 1e9,
                energy.rram * 1e9,
                (energy.dac + energy.adc) * 1e9,
                energy.total * 1e9,
            ]
        )
    return format_table(
        ["solver", "analog us", "OPA nJ", "RRAM nJ", "converters nJ", "total nJ"],
        rows,
        title=f"Energy per solve, {n}x{n} Wishart (extension of Fig. 10b)",
    )


def test_energy(report, benchmark):
    report("energy", _energy_table())

    matrix = wishart_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    solver = BlockAMCSolver(HardwareConfig.paper_ideal_mapping())
    result = solver.solve(matrix, b, rng=5)
    benchmark(lambda: solve_energy(result))
