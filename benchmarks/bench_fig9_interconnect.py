"""Fig. 9 — accuracy with device variation AND interconnect resistance.

Regenerates the error-vs-size curves of Fig. 9(a) (Wishart) and
Fig. 9(b) (Toeplitz) with 1 ohm/segment wire resistance on top of the
5% variation, for original AMC, one-stage, and two-stage BlockAMC.
The paper's headline: BlockAMC reduces the relative error by up to ~10
percentage points, and the two-stage solver extends the improvement.

Since PR 4 the sweep is the ``fig9-interconnect``
:class:`~repro.campaigns.CampaignSpec` (legacy seed 90; the two-stage
solver rides the campaign engine's transparent sequential fallback) and
this bench only aggregates the artifact store.
"""

import functools
import tempfile

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_quantiles
from repro.analysis.reporting import format_table
from repro.campaigns import ArtifactStore, campaign_records, get_campaign, run_campaign
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix


@functools.lru_cache(maxsize=1)
def _campaign_tables():
    spec = get_campaign("fig9-interconnect", quick=not paper_scale())
    with tempfile.TemporaryDirectory() as root:
        run_campaign(spec, root, workers=0)
        grouped = campaign_records(spec, ArtifactStore(root))
    tables = {}
    for family in spec.families:
        records = grouped[(spec.variants[0].label, family)]
        table = accuracy_quantiles(records, (0.5,))
        rows = []
        for size in spec.sizes:
            orig = table["original-amc"][size][0]
            one = table["blockamc-1stage"][size][0]
            two = table["blockamc-2stage"][size][0]
            rows.append([size, orig, one, two, orig - one])
        tables[family] = format_table(
            ["size", "original (med)", "1-stage (med)", "2-stage (med)", "orig - 1stage"],
            rows,
            title=(
                f"Fig. 9 — {family}, sigma = 5% + 1 ohm/segment wires, "
                f"campaign {spec.name}"
            ),
        )
    return tables


def test_fig9a_wishart(report, benchmark):
    report("fig9a_wishart", _campaign_tables()["wishart"])

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_interconnect())
    benchmark(lambda: solver.solve(matrix, b, rng=2))


def test_fig9b_toeplitz(report, benchmark):
    report("fig9b_toeplitz", _campaign_tables()["toeplitz"])

    matrix = toeplitz_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    solver = OriginalAMCSolver(HardwareConfig.paper_interconnect())
    benchmark(lambda: solver.solve(matrix, b, rng=5))
