"""Fig. 9 — accuracy with device variation AND interconnect resistance.

Regenerates the error-vs-size curves of Fig. 9(a) (Wishart) and
Fig. 9(b) (Toeplitz) with 1 ohm/segment wire resistance on top of the
5% variation, for original AMC, one-stage, and two-stage BlockAMC.
The paper's headline: BlockAMC reduces the relative error by up to ~10
percentage points, and the two-stage solver extends the improvement.
"""

from benchmarks.conftest import bench_sizes, bench_trials
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_quantiles, run_trials
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix


def _sweep(family, matrix_factory):
    config = HardwareConfig.paper_interconnect
    records = run_trials(
        {
            "original-amc": lambda: OriginalAMCSolver(config()),
            "blockamc-1stage": lambda: BlockAMCSolver(config()),
            "blockamc-2stage": lambda: MultiStageSolver(config(), stages=2),
        },
        matrix_factory,
        bench_sizes(),
        bench_trials(),
        seed=90,
    )
    table = accuracy_quantiles(records, (0.5,))
    rows = []
    for size in bench_sizes():
        orig = table["original-amc"][size][0]
        one = table["blockamc-1stage"][size][0]
        two = table["blockamc-2stage"][size][0]
        rows.append([size, orig, one, two, orig - one])
    return format_table(
        ["size", "original (med)", "1-stage (med)", "2-stage (med)", "orig - 1stage"],
        rows,
        title=f"Fig. 9 — {family}, sigma = 5% + 1 ohm/segment wires",
    )


def test_fig9a_wishart(report, benchmark):
    report("fig9a_wishart", _sweep("wishart", lambda n, rng: wishart_matrix(n, rng)))

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    solver = BlockAMCSolver(HardwareConfig.paper_interconnect())
    benchmark(lambda: solver.solve(matrix, b, rng=2))


def test_fig9b_toeplitz(report, benchmark):
    report("fig9b_toeplitz", _sweep("toeplitz", lambda n, rng: toeplitz_matrix(n, rng)))

    matrix = toeplitz_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    solver = OriginalAMCSolver(HardwareConfig.paper_interconnect())
    benchmark(lambda: solver.solve(matrix, b, rng=5))
