"""Fig. 8 — the two-stage BlockAMC solver.

Regenerates:

- Fig. 8(a-c): per-block INV scatter summaries for the second-stage
  solves of ``A1`` and ``A4s`` plus the final solution comparison, on
  one Wishart system partitioned twice;
- Fig. 8(d): relative error vs size, original AMC vs two-stage BlockAMC
  under 5% variation.
"""

import numpy as np

from benchmarks.conftest import bench_sizes, bench_trials, paper_scale
from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.analysis.reporting import format_table
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix


def _detail_table():
    # Paper: 256x256 partitioned twice into 16 arrays of 64x64; the quick
    # run uses 32 -> 16 arrays of 8x8.
    n = 256 if paper_scale() else 32
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    config = HardwareConfig.paper_variation()
    two = MultiStageSolver(config, stages=2).solve(matrix, b, rng=2)
    orig = OriginalAMCSolver(config).solve(matrix, b, rng=2)

    inv_ops = [op for op in two.operations if op.kind == "inv"]
    rows = []
    for op in inv_ops[:6]:
        err = float(np.max(np.abs(op.error_vector)))
        rows.append([op.label, op.rows, err])
    rows.append(["final:two-stage", n, two.relative_error])
    rows.append(["final:original", n, orig.relative_error])
    return format_table(
        ["operation", "size", "error"],
        rows,
        title=(
            f"Fig. 8(a-c) — two-stage detail, {n}x{n} Wishart "
            f"({two.metadata['array_count']} block arrays, "
            f"{two.metadata['macro_count']} macros)"
        ),
    )


def _sweep_table():
    sizes = [s for s in bench_sizes() if s >= 8]
    records = run_trials(
        {
            "original-amc": lambda: OriginalAMCSolver(HardwareConfig.paper_variation()),
            "blockamc-2stage": lambda: MultiStageSolver(
                HardwareConfig.paper_variation(), stages=2
            ),
        },
        lambda n, rng: wishart_matrix(n, rng),
        sizes,
        bench_trials(),
        seed=80,
    )
    table = accuracy_sweep(records)
    rows = [
        [size, table["original-amc"][size][0], table["blockamc-2stage"][size][0]]
        for size in sizes
    ]
    return format_table(
        ["size", "original AMC", "two-stage BlockAMC"],
        rows,
        title="Fig. 8(d) — relative error vs Wishart size, sigma = 5%",
    )


def test_fig8_twostage(report, benchmark):
    report("fig8_detail", _detail_table())
    report("fig8_sweep", _sweep_table())

    matrix = wishart_matrix(32, rng=3)
    b = random_vector(32, rng=4)
    prepared = MultiStageSolver(HardwareConfig.paper_variation(), stages=2).prepare(
        matrix, rng=5
    )
    benchmark(lambda: prepared.solve(b, rng=6))
