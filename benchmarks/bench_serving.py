"""Serving bench: sequential per-request loop vs the solver service.

Drives a mixed-traffic workload (hot Wishart/Toeplitz/Poisson matrices,
fresh right-hand sides — see :func:`repro.workloads.traffic.mixed_traffic`)
through two execution paths:

1. **sequential loop** — the repo's one-shot path before ``repro.serve``
   existed: every request independently normalizes, partitions, and
   programs a macro, then solves once (exactly what ``repro solve`` and
   the examples did per system);
2. **solver service** — :class:`repro.serve.SolverService` with its
   prepared-solver cache and micro-batching scheduler.

Before timing anything the bench asserts the service's results are
**bit-identical** to the sequential reference executor
(:func:`repro.serve.run_sequential`) — a speedup must never come from
computing something different. The measured comparison then lands in
``BENCH_serving.json`` at the repo root, alongside the perf-engine
trajectory.

Run:  python benchmarks/bench_serving.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.perf_harness import time_call
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.serve import ServiceConfig, SolverService, run_sequential
from repro.workloads.traffic import mixed_traffic

#: Artifact path (repo root, like BENCH_perf_engine.json).
DEFAULT_ARTIFACT = _ROOT / "BENCH_serving.json"

#: The acceptance workload: 64 mixed requests over a 4-matrix working set
#: (Wishart/Toeplitz/Poisson at 96, Wishart at 128). Preparation —
#: normalize, Schur-preprocess, program, settling analysis — scales
#: ~n^3, so these sizes are where caching it actually matters; the quick
#: (CI) workload shrinks both the sizes and the stream.
FULL_REQUESTS = 64
FULL_SIZES = (96, 128)
FULL_UNIQUE = 4
QUICK_REQUESTS = 32
QUICK_SIZES = (48, 64)
QUICK_UNIQUE = 4

#: Loud-regression floors. The committed artifact documents the actual
#: measured speedup at merge time; the asserted floors leave headroom
#: for noisy CI machines.
MIN_SPEEDUP_FULL = 5.0
MIN_SPEEDUP_QUICK = 1.5

#: Mixed one-/two-stage traffic (coalesced multi-stage solve_many vs the
#: per-request prepare+solve loop).
MULTISTAGE_REQUESTS_FULL = 64
MULTISTAGE_REQUESTS_QUICK = 32
MULTISTAGE_SIZES_FULL = (48, 64)
MULTISTAGE_SIZES_QUICK = (24, 32)
MIN_MULTISTAGE_SPEEDUP_FULL = 3.0
MIN_MULTISTAGE_SPEEDUP_QUICK = 1.2

#: The repro.obs contract: tracing a full service run may cost at most
#: this fraction of untraced wall clock (best-of-repeats vs best-of-
#: repeats; spans are id generation + dict appends, never in a kernel).
MAX_TRACING_OVERHEAD = 0.05


def run_bench(quick: bool = False, out: Path | None = None) -> dict:
    """Execute the comparison and write the artifact; returns the payload."""
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    sizes = QUICK_SIZES if quick else FULL_SIZES
    unique = QUICK_UNIQUE if quick else FULL_UNIQUE
    requests = mixed_traffic(
        n_requests, unique_matrices=unique, sizes=sizes, seed=42
    )
    config = ServiceConfig(workers=2, max_batch_size=16, max_linger_s=0.002)
    hardware = config.default_hardware

    print(
        f"workload: {len(requests)} mixed requests, "
        f"{len({r.digest for r in requests})} distinct matrices, "
        f"sizes {sorted({r.size for r in requests})}"
    )

    # ------------------------------------------------------------------
    # equivalence first: service vs sequential reference, bit for bit
    # ------------------------------------------------------------------
    reference, _ = run_sequential(requests, config)
    with SolverService(config) as service:
        service_results = service.solve_all(requests)
        service_metrics = service.metrics()
    bit_identical = all(
        np.array_equal(a.x, b.x) and a.relative_error == b.relative_error
        for a, b in zip(reference, service_results)
    )
    print(f"service vs sequential reference: bit-identical = {bit_identical}")
    assert bit_identical, "service results diverged from the sequential reference"

    # ------------------------------------------------------------------
    # timing: per-request one-shot loop vs the service
    # ------------------------------------------------------------------
    def sequential_loop():
        solver = BlockAMCSolver(hardware)
        return [
            solver.solve(r.matrix, r.b, rng=np.random.default_rng(r.seed))
            for r in requests
        ]

    def service_run():
        with SolverService(config) as svc:
            return svc.solve_all(requests)

    # Lean serving mode: identical solution bits, no per-step OpResult
    # construction (which dominates service-side time at scale).
    lean_config = ServiceConfig(
        workers=config.workers,
        max_batch_size=config.max_batch_size,
        max_linger_s=config.max_linger_s,
        lean_results=True,
    )

    def service_lean_run():
        with SolverService(lean_config) as svc:
            return svc.solve_all(requests)

    lean_results = service_lean_run()
    lean_identical = all(
        np.array_equal(a.x, b.x) and a.relative_error == b.relative_error
        for a, b in zip(reference, lean_results)
    )
    print(f"lean service vs sequential reference: bit-identical = {lean_identical}")
    assert lean_identical, "lean results diverged from the full-result reference"

    old_s = time_call(sequential_loop, repeats=2)
    new_s = time_call(service_run, repeats=3)
    lean_s = time_call(service_lean_run, repeats=3)
    speedup = old_s / new_s
    lean_speedup = new_s / lean_s

    # Result assembly is per-request overhead, so the lean win peaks in
    # the many-small-solves regime (the ROADMAP's "at scale" case) —
    # measure that separately from the large-matrix headline workload.
    small_requests = mixed_traffic(
        64 if quick else 256, unique_matrices=4, sizes=(24, 32), seed=43
    )

    def small_run(cfg):
        with SolverService(cfg) as svc:
            return svc.solve_all(small_requests)

    small_full_cfg = ServiceConfig(workers=2, max_batch_size=32)
    small_lean_cfg = ServiceConfig(workers=2, max_batch_size=32, lean_results=True)
    small_full_s = time_call(lambda: small_run(small_full_cfg), repeats=3)
    small_lean_s = time_call(lambda: small_run(small_lean_cfg), repeats=3)
    small_lean_speedup = small_full_s / small_lean_s

    print(
        format_table(
            ["path", "ms", "solve/s"],
            [
                ["sequential per-request loop", old_s * 1e3, n_requests / old_s],
                ["solver service", new_s * 1e3, n_requests / new_s],
                ["solver service (lean results)", lean_s * 1e3, n_requests / lean_s],
            ],
            title=(
                f"{n_requests}-RHS mixed traffic — {speedup:.1f}x "
                f"(lean mode: {lean_speedup:.2f}x over full results)"
            ),
        )
    )
    print(
        f"lean mode on {len(small_requests)} small solves (24/32): "
        f"{small_full_s * 1e3:.1f}ms -> {small_lean_s * 1e3:.1f}ms "
        f"({small_lean_speedup:.2f}x)"
    )
    print()
    print(service_metrics.table(title="service metrics (equivalence run)"))

    # ------------------------------------------------------------------
    # tracing overhead: the repro.obs zero-perturbation contract
    # ------------------------------------------------------------------
    # Same service run with span collection enabled (ring buffer — the
    # in-band cost; JSONL export adds only sequential file appends).
    # Bit-identity is asserted before timing: tracing must never change
    # the solution, and its wall-clock cost must stay under 5%.
    from repro.obs import tracer as obs

    obs.configure(capacity=65536)
    try:
        traced_results = service_run()
        traced_identical = all(
            np.array_equal(a.x, b.x) for a, b in zip(reference, traced_results)
        )
        assert traced_identical, "tracing perturbed the solve results"
        traced_s = time_call(service_run, repeats=3)
    finally:
        obs.disable()
    tracing_overhead = traced_s / new_s - 1.0
    print(
        f"\ntracing overhead: untraced {new_s * 1e3:.1f}ms -> traced "
        f"{traced_s * 1e3:.1f}ms ({tracing_overhead * 100:+.1f}%, "
        f"bit-identical = {traced_identical})"
    )

    # ------------------------------------------------------------------
    # 2-stage coalescing: mixed one-/two-stage traffic
    # ------------------------------------------------------------------
    ms_requests = mixed_traffic(
        MULTISTAGE_REQUESTS_QUICK if quick else MULTISTAGE_REQUESTS_FULL,
        unique_matrices=4,
        sizes=MULTISTAGE_SIZES_QUICK if quick else MULTISTAGE_SIZES_FULL,
        solvers=("blockamc-1stage", "blockamc-2stage"),
        seed=44,
    )
    ms_reference, _ = run_sequential(ms_requests, config)
    with SolverService(config) as svc:
        ms_results = svc.solve_all(ms_requests)
        ms_metrics = svc.metrics()
    ms_identical = all(
        np.array_equal(a.x, b.x) and a.relative_error == b.relative_error
        for a, b in zip(ms_reference, ms_results)
    )
    print(
        f"\nmulti-stage service vs sequential reference: "
        f"bit-identical = {ms_identical}"
    )
    assert ms_identical, "multi-stage service diverged from the reference"

    one_shot = {
        "blockamc-1stage": BlockAMCSolver(hardware),
        "blockamc-2stage": MultiStageSolver(hardware, stages=2),
    }

    def ms_sequential_loop():
        return [
            one_shot[r.solver].solve(r.matrix, r.b, rng=np.random.default_rng(r.seed))
            for r in ms_requests
        ]

    def ms_service_run():
        with SolverService(config) as svc:
            return svc.solve_all(ms_requests)

    ms_old_s = time_call(ms_sequential_loop, repeats=2)
    ms_new_s = time_call(ms_service_run, repeats=3)
    ms_speedup = ms_old_s / ms_new_s
    ms_batches = ms_metrics.as_dict()["batch_size_histogram"]
    print(
        format_table(
            ["path", "ms", "solve/s"],
            [
                ["per-request loop", ms_old_s * 1e3, len(ms_requests) / ms_old_s],
                ["solver service", ms_new_s * 1e3, len(ms_requests) / ms_new_s],
            ],
            title=(
                f"{len(ms_requests)}-request mixed 1-/2-stage traffic — "
                f"{ms_speedup:.1f}x (coalesced batches: {ms_batches})"
            ),
        )
    )

    payload = {
        "generated_by": "benchmarks/bench_serving.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "mode": "quick" if quick else "full",
        "workload": {
            "requests": n_requests,
            "unique_matrices": unique,
            "sizes": list(sizes),
            "seed": 42,
            "solver": config.default_solver,
            "hardware": "paper_variation",
        },
        "sequential_loop_s": old_s,
        "service_s": new_s,
        "service_lean_s": lean_s,
        "speedup": round(speedup, 2),
        "lean_speedup_vs_full": round(lean_speedup, 3),
        "lean_small_solves": {
            "requests": len(small_requests),
            "sizes": [24, 32],
            "service_full_s": small_full_s,
            "service_lean_s": small_lean_s,
            "lean_speedup_vs_full": round(small_lean_speedup, 3),
        },
        "multistage_traffic": {
            "requests": len(ms_requests),
            "sizes": list(MULTISTAGE_SIZES_QUICK if quick else MULTISTAGE_SIZES_FULL),
            "solvers": ["blockamc-1stage", "blockamc-2stage"],
            "seed": 44,
            "sequential_loop_s": ms_old_s,
            "service_s": ms_new_s,
            "speedup": round(ms_speedup, 2),
            "bit_identical_to_reference": ms_identical,
            "batch_size_histogram": ms_batches,
        },
        "tracing": {
            "untraced_s": new_s,
            "traced_s": traced_s,
            "overhead_pct": round(tracing_overhead * 100, 2),
            "bit_identical": traced_identical,
        },
        "bit_identical_to_reference": bit_identical,
        "lean_bit_identical_to_reference": lean_identical,
        "service_metrics": service_metrics.as_dict(),
        "detail": (
            "per-request prepare+solve loop vs SolverService "
            "(2 workers, prepared-solver cache, micro-batching)"
        ),
    }
    path = out or DEFAULT_ARTIFACT
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path}")

    floor = MIN_SPEEDUP_QUICK if quick else MIN_SPEEDUP_FULL
    assert speedup >= floor, (
        f"serving speedup {speedup:.2f}x fell below the {floor}x floor"
    )
    ms_floor = MIN_MULTISTAGE_SPEEDUP_QUICK if quick else MIN_MULTISTAGE_SPEEDUP_FULL
    assert ms_speedup >= ms_floor, (
        f"multi-stage serving speedup {ms_speedup:.2f}x fell below "
        f"the {ms_floor}x floor"
    )
    assert tracing_overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing overhead {tracing_overhead * 100:.1f}% exceeds the "
        f"{MAX_TRACING_OVERHEAD * 100:.0f}% ceiling"
    )
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-size run ({QUICK_REQUESTS} requests, {MIN_SPEEDUP_QUICK}x floor)",
    )
    parser.add_argument("--out", type=Path, default=None, help="artifact path")
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
