"""Resilience bench: the failure story, measured and asserted.

Soaks the serving and campaign layers under deterministic injected
faults (:mod:`repro.testing.chaos`) and records the two acceptance facts
of the fault-tolerance work in ``BENCH_resilience.json``:

1. **serving** — under a chaos plan injecting solve failures (>= 10% of
   the stream), worker kills (>= 2 shard crashes), and a slow-call
   storm, a mixed-traffic run completes with *no hung ticket*, every
   failure a typed :class:`~repro.errors.ReproError` with a correct
   ``retryable`` classification, and every success **bit-identical** to
   the fault-free sequential reference — chaos may take answers away,
   it must never change one. A second pass with ``fallback="digital"``
   shows the degradation ladder turning those failures into exact
   digital answers.
2. **campaigns** — a campaign run through a SIGKILL + torn-write storm
   (with bounded retry) converges to an artifact store bit-identical to
   a fault-free run (:func:`repro.campaigns.stores_equal`), and a
   subsequent resume recomputes nothing.

Run:  python benchmarks/bench_resilience.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.analysis.reporting import format_table
from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    RetryPolicy,
    run_campaign,
    stores_equal,
)
from repro.errors import ReproError, is_retryable
from repro.serve import (
    ResiliencePolicy,
    ServiceConfig,
    SolverService,
    run_sequential,
)
from repro.testing import ChaosPlan, chaos_entry_transform, rhs_tag
from repro.testing.chaos import CHAOS_ENV
from repro.workloads.traffic import mixed_traffic

#: Artifact path (repo root, like BENCH_serving.json).
DEFAULT_ARTIFACT = _ROOT / "BENCH_resilience.json"

FULL_REQUESTS = 64
FULL_SIZES = (32, 48)
QUICK_REQUESTS = 32
QUICK_SIZES = (16, 24)

#: Injected fault rates for the serving soak. The plan seed is scanned
#: so the *realized* counts meet the acceptance floors on the actual
#: request stream (>= 10% poisoned, >= 2 kills, a slow-call storm).
FAIL_RATE = 0.15
KILL_RATE = 0.08
SLOW_RATE = 0.12
SLOW_CALL_S = 0.03
MIN_POISONED_FRACTION = 0.10
MIN_KILLS = 2
MIN_SLOW = 1


def _find_plan(tags: list[str]) -> ChaosPlan:
    """Scan plan seeds until the realized fault counts meet the floors."""
    need_poisoned = max(2, math.ceil(MIN_POISONED_FRACTION * len(tags)))
    for seed in range(5000):
        plan = ChaosPlan(
            seed=seed,
            solve_failure_rate=FAIL_RATE,
            worker_kill_rate=KILL_RATE,
            slow_call_rate=SLOW_RATE,
            slow_call_s=SLOW_CALL_S,
        )
        poisoned = sum(plan.decides("fail", FAIL_RATE, t) for t in tags)
        kills = sum(plan.decides("kill", KILL_RATE, t) for t in tags)
        slows = sum(plan.decides("slow", SLOW_RATE, t) for t in tags)
        if (
            poisoned >= need_poisoned
            and kills >= MIN_KILLS
            and slows >= MIN_SLOW
            and poisoned < len(tags)
        ):
            return plan
    raise AssertionError("no chaos seed met the fault floors in 5000 tries")


def _soak(service: SolverService, requests, max_attempts: int):
    """Submit everything; bounded client-side retry of retryable failures.

    Returns per-request final outcomes ``(result | exception)``. Every
    ticket is resolved with a timeout — a hang fails the bench loudly.
    """
    outcomes = [None] * len(requests)
    pending = list(range(len(requests)))
    for _ in range(max_attempts):
        if not pending:
            break
        tickets = [(i, service.submit_request(requests[i])) for i in pending]
        pending = []
        for i, ticket in tickets:
            exc = ticket.exception(timeout=300)  # no hung tickets, ever
            if exc is None:
                outcomes[i] = ticket.result()
            elif is_retryable(exc):
                outcomes[i] = exc
                pending.append(i)
            else:
                outcomes[i] = exc
    return outcomes


def run_bench(quick: bool = False, out: Path | None = None) -> dict:
    """Execute the soak and write the artifact; returns the payload."""
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    sizes = QUICK_SIZES if quick else FULL_SIZES
    requests = mixed_traffic(
        n_requests, unique_matrices=4, sizes=sizes, seed=42
    )
    tags = [rhs_tag(r.b) for r in requests]
    plan = _find_plan(tags)
    poisoned = {
        i for i, t in enumerate(tags) if plan.decides("fail", FAIL_RATE, t)
    }
    killed = {i for i, t in enumerate(tags) if plan.decides("kill", KILL_RATE, t)}
    slowed = {i for i, t in enumerate(tags) if plan.decides("slow", SLOW_RATE, t)}
    print(
        f"workload: {n_requests} mixed requests, chaos seed {plan.seed} — "
        f"{len(poisoned)} poisoned solves, {len(killed)} worker kills, "
        f"{len(slowed)} slow calls ({SLOW_CALL_S * 1e3:.0f}ms storm)"
    )

    base = ServiceConfig(workers=2, max_batch_size=16, max_linger_s=0.002)
    reference, _ = run_sequential(requests, base)

    # ------------------------------------------------------------------
    # serving soak: faults on, no fallback — losses allowed, lies aren't
    # ------------------------------------------------------------------
    chaos_config = ServiceConfig(
        workers=base.workers,
        max_batch_size=base.max_batch_size,
        max_linger_s=base.max_linger_s,
        resilience=ResiliencePolicy(
            # Breakers off for the soak: with hot keys at a 15% poison
            # rate they would trip by design and turn deterministic
            # SolverErrors into time-dependent CircuitOpenErrors.
            breaker_threshold=0,
            # Enough restart budget for every injected kill.
            max_shard_restarts=len(killed) + 1,
        ),
        entry_transform=chaos_entry_transform(plan),
    )
    soak_start = time.perf_counter()
    with SolverService(chaos_config) as service:
        outcomes = _soak(service, requests, max_attempts=len(killed) + 3)
        metrics = service.metrics()
    soak_s = time.perf_counter() - soak_start

    hung = sum(1 for o in outcomes if o is None)
    failures = {
        i: o for i, o in enumerate(outcomes) if isinstance(o, BaseException)
    }
    successes = {
        i: o for i, o in enumerate(outcomes) if not isinstance(o, BaseException)
    }
    all_typed = all(isinstance(o, ReproError) for o in failures.values())
    successes_identical = all(
        np.array_equal(r.x, reference[i].x)
        and r.relative_error == reference[i].relative_error
        for i, r in successes.items()
    )
    assert hung == 0, f"{hung} tickets never resolved"
    assert all_typed, "an untyped failure escaped the service"
    assert successes_identical, "a success diverged from the fault-free reference"
    # With kills retried away, exactly the poisoned requests fail.
    assert set(failures) == poisoned, (
        f"failed set {sorted(failures)} != poisoned set {sorted(poisoned)}"
    )
    assert metrics.shard_crashes >= MIN_KILLS
    assert metrics.retries >= 1

    print(
        format_table(
            ["fact", "value"],
            [
                ["requests", str(n_requests)],
                ["final failures (all injected)", str(len(failures))],
                ["successes, bit-identical", f"{len(successes)}, True"],
                ["hung tickets", "0"],
                ["shard crashes survived", str(metrics.shard_crashes)],
                ["isolation retries", str(metrics.retries)],
                ["latency p99 under faults (ms)", f"{metrics.latency_p99_s * 1e3:.2f}"],
            ],
            title=f"serving soak under chaos — {soak_s * 1e3:.0f}ms wall",
        )
    )

    # ------------------------------------------------------------------
    # degradation ladder: same poison, digital fallback answers it
    # ------------------------------------------------------------------
    degrade_plan = ChaosPlan(seed=plan.seed, solve_failure_rate=FAIL_RATE)
    degrade_config = ServiceConfig(
        workers=base.workers,
        max_batch_size=base.max_batch_size,
        max_linger_s=base.max_linger_s,
        resilience=ResiliencePolicy(breaker_threshold=0, fallback="digital"),
        entry_transform=chaos_entry_transform(degrade_plan),
    )
    with SolverService(degrade_config) as service:
        degraded_results = service.solve_all(requests)
        degrade_metrics = service.metrics()
    degraded = [
        i for i, r in enumerate(degraded_results)
        if r.metadata.get("degraded", False)
    ]
    clean_identical = all(
        np.array_equal(r.x, reference[i].x)
        for i, r in enumerate(degraded_results)
        if i not in poisoned
    )
    assert set(degraded) == poisoned, "fallback answered the wrong requests"
    assert clean_identical, "fallback pass changed a clean request's bits"
    assert degrade_metrics.requests_failed == 0
    assert degrade_metrics.degraded == len(poisoned)
    print(
        f"degradation ladder: {len(degraded)}/{n_requests} requests answered "
        f"by the digital fallback, 0 failures, clean requests bit-identical"
    )

    # ------------------------------------------------------------------
    # campaign under SIGKILL + torn-write storm: same store, bit for bit
    # ------------------------------------------------------------------
    spec = CampaignSpec(
        name="resilience-bench",
        title="chaos campaign",
        solvers=("original-amc", "blockamc-1stage"),
        families=("wishart", "toeplitz"),
        sizes=(6,) if quick else (6, 9),
        trials=2,
        seed=70,
        hardware="variation",
    )
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as tmp:
        tmp = Path(tmp)
        run_campaign(spec, tmp / "ref", workers=0)

        campaign_plan = ChaosPlan(
            seed=7,
            worker_kill_rate=1.0,
            max_kills_per_unit=1,
            torn_write_rate=0.5,
            state_dir=str(tmp / "chaos"),
        )
        saved_env = os.environ.get(CHAOS_ENV)
        os.environ[CHAOS_ENV] = campaign_plan.chaos_env()[CHAOS_ENV]
        campaign_start = time.perf_counter()
        try:
            run = run_campaign(
                spec,
                tmp / "chaotic",
                workers=2,
                retry=RetryPolicy(
                    max_attempts=10, backoff_s=0.01, max_backoff_s=0.05
                ),
            )
        finally:
            if saved_env is None:
                os.environ.pop(CHAOS_ENV, None)
            else:
                os.environ[CHAOS_ENV] = saved_env
        campaign_s = time.perf_counter() - campaign_start

        worker_kills = campaign_plan.injected("kill")
        torn_writes = campaign_plan.injected("torn")
        store_identical = stores_equal(
            ArtifactStore(tmp / "ref"), ArtifactStore(tmp / "chaotic")
        )
        assert run.finished and run.quarantined_units == 0
        assert worker_kills >= MIN_KILLS
        assert store_identical, "chaos campaign store diverged from fault-free run"

        resumed = run_campaign(spec, tmp / "chaotic", workers=0)
        zero_recompute = (
            resumed.completed_units == 0
            and resumed.skipped_units == resumed.total_units
        )
        assert zero_recompute, "resume after chaos recomputed finished units"

    print(
        f"campaign storm: {run.total_units} units through {worker_kills} "
        f"SIGKILLs + {torn_writes} torn writes in {campaign_s * 1e3:.0f}ms — "
        f"store bit-identical to fault-free run, resume recomputed nothing"
    )

    payload = {
        "generated_by": "benchmarks/bench_resilience.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "mode": "quick" if quick else "full",
        "serving": {
            "requests": n_requests,
            "sizes": list(sizes),
            "chaos_seed": plan.seed,
            "injected": {
                "solve_failures": len(poisoned),
                "solve_failure_fraction": round(len(poisoned) / n_requests, 3),
                "worker_kills": len(killed),
                "slow_calls": len(slowed),
                "slow_call_s": SLOW_CALL_S,
            },
            "no_hung_tickets": hung == 0,
            "all_failures_typed": all_typed,
            "failures_exactly_injected": set(failures) == poisoned,
            "successes_bit_identical_to_reference": successes_identical,
            "shard_crashes": metrics.shard_crashes,
            "isolation_retries": metrics.retries,
            "latency_p99_under_faults_s": metrics.latency_p99_s,
            "soak_wall_s": soak_s,
            "degraded_fallback": {
                "degraded_requests": len(degraded),
                "failures": degrade_metrics.requests_failed,
                "clean_requests_bit_identical": clean_identical,
            },
        },
        "campaign": {
            "units": run.total_units,
            "worker_kills": worker_kills,
            "torn_writes": torn_writes,
            "store_bit_identical_to_fault_free": store_identical,
            "resume_zero_recompute": zero_recompute,
            "quarantined_units": run.quarantined_units,
            "wall_s": campaign_s,
        },
        "detail": (
            "mixed traffic through SolverService under a seeded chaos plan "
            "(solve failures, WorkerKillChaos shard crashes, slow-call "
            "storm) vs run_sequential; campaign through a SIGKILL + "
            "torn-write storm with RetryPolicy vs a fault-free store"
        ),
    }
    path = out or DEFAULT_ARTIFACT
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-size run ({QUICK_REQUESTS} requests, sizes {QUICK_SIZES})",
    )
    parser.add_argument("--out", type=Path, default=None, help="artifact path")
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
