"""Ablation 4 — op-amp open-loop gain and offset sweep.

Explains the ideal-mapping accuracy trend (Fig. 6c): with exact
conductances, the residual error comes from the analog periphery —
finite open-loop gain and input offsets, both scaled by the array's
conductance loading. This ablation separates the two contributions.
"""

import math

import numpy as np

from benchmarks.conftest import paper_scale
from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix


def _gain_table():
    n = 128 if paper_scale() else 32
    trials = 6 if paper_scale() else 3
    rows = []
    cases = [
        ("gain=1e3, no offset", 1e3, 0.0),
        ("gain=1e4, no offset", 1e4, 0.0),
        ("gain=1e5, no offset", 1e5, 0.0),
        ("ideal gain, offset 0.25mV", math.inf, 0.25e-3),
        ("gain=1e4, offset 0.25mV", 1e4, 0.25e-3),
        ("gain=1e4, offset 1mV", 1e4, 1e-3),
    ]
    for label, gain, offset in cases:
        errors_orig, errors_block = [], []
        for trial in range(trials):
            matrix = wishart_matrix(n, rng=100 + trial)
            b = random_vector(n, rng=200 + trial)
            config = HardwareConfig(
                opamp=OpAmpConfig(open_loop_gain=gain, input_offset_sigma_v=offset)
            )
            errors_orig.append(
                OriginalAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
            errors_block.append(
                BlockAMCSolver(config).solve(matrix, b, rng=trial).relative_error
            )
        rows.append([label, float(np.mean(errors_orig)), float(np.mean(errors_block))])
    return format_table(
        ["op-amp model", "original error", "BlockAMC error"],
        rows,
        title=f"Ablation — periphery non-idealities, {n}x{n} Wishart, ideal mapping",
    )


def test_ablation_gain(report, benchmark):
    report("ablation_gain", _gain_table())

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    config = HardwareConfig(opamp=OpAmpConfig(open_loop_gain=1e4))
    solver = OriginalAMCSolver(config)
    benchmark(lambda: solver.solve(matrix, b, rng=2))
