"""Ablation 4 — op-amp open-loop gain and offset sweep.

Explains the ideal-mapping accuracy trend (Fig. 6c): with exact
conductances, the residual error comes from the analog periphery —
finite open-loop gain and input offsets, both scaled by the array's
conductance loading. This ablation separates the two contributions.

Since PR 4 the sweep is the ``ablation-gain``
:class:`~repro.campaigns.CampaignSpec` — each op-amp case is one
hardware variant of the campaign grid — and this bench aggregates the
artifact store.
"""

import tempfile

import numpy as np

from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.analysis.reporting import format_table
from repro.campaigns import ArtifactStore, campaign_records, get_campaign, run_campaign
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix

from benchmarks.conftest import paper_scale


def _gain_table():
    spec = get_campaign("ablation-gain", quick=not paper_scale())
    with tempfile.TemporaryDirectory() as root:
        run_campaign(spec, root, workers=0)
        grouped = campaign_records(spec, ArtifactStore(root))
    n = spec.sizes[0]
    rows = []
    for variant in spec.variants:
        records = grouped[(variant.label, "wishart")]
        by_solver = {
            solver: [r.relative_error for r in records if r.solver == solver]
            for solver in spec.solvers
        }
        rows.append(
            [
                variant.label,
                float(np.mean(by_solver["original-amc"])),
                float(np.mean(by_solver["blockamc-1stage"])),
            ]
        )
    return format_table(
        ["op-amp variant", "original error", "BlockAMC error"],
        rows,
        title=(
            f"Ablation — periphery non-idealities, {n}x{n} Wishart, ideal "
            f"mapping, campaign {spec.name}"
        ),
    )


def test_ablation_gain(report, benchmark):
    report("ablation_gain", _gain_table())

    matrix = wishart_matrix(32, rng=0)
    b = random_vector(32, rng=1)
    config = HardwareConfig(opamp=OpAmpConfig(open_loop_gain=1e4))
    solver = OriginalAMCSolver(config)
    benchmark(lambda: solver.solve(matrix, b, rng=2))
