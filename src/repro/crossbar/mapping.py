"""Matrix-to-conductance mapping.

The paper maps a matrix onto RRAM arrays in three steps (Sec. II and IV):

1. **Normalization** — the matrix is scaled "to make the largest element
   equal to 1" so the largest magnitude maps onto the unit conductance
   ``G0 = 100 uS``.
2. **Signed split** — conductances are non-negative, so ``A`` is split as
   ``A = A+ - A-`` with both parts non-negative, each stored in its own
   array and combined differentially by the periphery.
3. **Scaling to siemens** — normalized magnitudes multiply ``G0``.

:func:`map_to_conductances` performs all three and records the scale
factor so solvers can undo the normalization digitally (or, for Schur
complement arrays, in-analog via the INV input conductance, see
``repro.core.partition``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.models import PAPER_G0_SIEMENS
from repro.errors import MappingError
from repro.utils.validation import check_matrix, check_positive


def normalize_matrix(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Scale ``matrix`` so its largest absolute element equals 1.

    Returns
    -------
    (normalized, scale):
        ``matrix == scale * normalized`` with ``max |normalized| == 1``.

    Raises
    ------
    MappingError
        If the matrix is all zeros (nothing to map).
    """
    matrix = check_matrix(matrix)
    scale = float(np.max(np.abs(matrix)))
    if scale == 0.0:
        raise MappingError("cannot normalize an all-zero matrix")
    return matrix / scale, scale


def split_signed(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split ``matrix`` into non-negative positive and negative parts.

    ``matrix == pos - neg`` with ``pos, neg >= 0`` element-wise and with
    disjoint supports (each cell stores at most one of the two parts, as
    in the hardware's column-wise split).
    """
    matrix = check_matrix(matrix)
    pos = np.clip(matrix, 0.0, None)
    neg = np.clip(-matrix, 0.0, None)
    return pos, neg


@dataclass(frozen=True)
class MappedConductances:
    """Target conductances for one signed matrix.

    Attributes
    ----------
    g_pos, g_neg:
        Non-negative target conductance arrays (siemens) for the positive
        and negative part of the matrix.
    g_unit:
        The unit conductance ``G0`` such that
        ``matrix_normalized = (g_pos - g_neg) / g_unit``.
    scale:
        Normalization factor: ``matrix = scale * matrix_normalized``.
    """

    g_pos: np.ndarray
    g_neg: np.ndarray
    g_unit: float
    scale: float

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the mapped matrix."""
        return self.g_pos.shape

    def reconstruct_normalized(self) -> np.ndarray:
        """Return the normalized matrix these targets encode."""
        return (self.g_pos - self.g_neg) / self.g_unit

    def reconstruct(self) -> np.ndarray:
        """Return the original (unnormalized) matrix these targets encode."""
        return self.scale * self.reconstruct_normalized()


def map_to_conductances(
    matrix: np.ndarray,
    g_unit: float = PAPER_G0_SIEMENS,
    *,
    pre_normalized: bool = False,
    scale: float = 1.0,
) -> MappedConductances:
    """Map a real matrix to target conductances of the dual-array scheme.

    Parameters
    ----------
    matrix:
        The matrix to map. Unless ``pre_normalized`` is set it is first
        normalized so ``max |a_ij| = 1``.
    g_unit:
        Unit conductance ``G0`` (paper: 100 uS).
    pre_normalized:
        When True, ``matrix`` is taken as already normalized and ``scale``
        supplies the normalization factor. BlockAMC uses this to map the
        four blocks of a globally-normalized matrix without renormalizing
        each block (which would change the algorithm's arithmetic).
    scale:
        Normalization factor accompanying a pre-normalized matrix.

    Raises
    ------
    MappingError
        If a pre-normalized matrix has entries exceeding 1 in magnitude
        by more than a tiny tolerance (it would need conductance > G0).
    """
    check_positive(g_unit, "g_unit")
    if pre_normalized:
        normalized = check_matrix(matrix)
        peak = float(np.max(np.abs(normalized)))
        if peak > 1.0 + 1e-9:
            raise MappingError(
                f"pre-normalized matrix has peak magnitude {peak:.6g} > 1; "
                "renormalize (e.g. give the Schur array its own scale)"
            )
        scale = check_positive(scale, "scale")
    else:
        normalized, scale = normalize_matrix(matrix)
    pos, neg = split_signed(normalized)
    return MappedConductances(
        g_pos=pos * g_unit,
        g_neg=neg * g_unit,
        g_unit=g_unit,
        scale=scale,
    )
