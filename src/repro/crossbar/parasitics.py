"""Interconnect (wire) resistance models.

The paper (Fig. 9) assumes "the segment resistance between every two memory
cells along the BL or WL is 1 ohm, which is approximately the result in the
65 nm node". With finite wire resistance the array no longer implements its
programmed conductance matrix ``G``; it implements a perturbed operator
``M`` defined by the currents that actually reach the (virtual-ground) WL
terminals for given BL drive voltages.

Two models are provided:

- :func:`exact_effective_matrix` builds the full resistive ladder network
  (one BL node and one WL node per cell) and extracts ``M`` column by
  column with a sparse LU factorization. This is exactly the DC problem
  the paper's HSPICE netlists solve.
- :func:`first_order_effective_matrix` is the first-order perturbation
  expansion of the same network in the wire resistance ``r``. Writing
  the zeroth-order cell currents ``I_ij = G_ij v_j``, the wire segment
  between rows ``k-1`` and ``k`` of BL ``j`` carries the partial sum of
  all currents below it, and the segment between columns ``k`` and
  ``k-1`` of WL ``i`` carries the partial sum of all currents beyond it.
  Accumulating those drops at every cell and collecting coefficients of
  ``v`` gives

  ``M ~ G - r * [ G o (P_r G) + G o (G P_c) ]``

  where ``o`` is the Hadamard product and ``P_r[i,i'] = min(i,i') + 1``
  (``P_c`` likewise over columns) counts the wire segments two cells
  share. This captures the current-sharing cross terms a private-path
  model misses; the residual against the exact solve is second order in
  ``r * G0 * n`` (verified in tests). ``alpha`` survives as an overall
  scale knob (default 1, the analytic value).

Geometry convention: ``rows`` index WLs (outputs, amplifier at column 0),
``cols`` index BLs (inputs, driver at row 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.errors import CircuitError
from repro.utils.validation import check_matrix

#: Wire segment resistance assumed in the paper's Fig. 9 (ohm).
PAPER_SEGMENT_RESISTANCE = 1.0

_FIDELITIES = ("none", "first_order", "exact")


@dataclass(frozen=True)
class ParasiticConfig:
    """Interconnect model configuration.

    Parameters
    ----------
    r_wire:
        Segment resistance between adjacent cells, in ohm (paper: 1).
    fidelity:
        ``"none"`` ignores wires; ``"first_order"`` uses the fast analytic
        correction; ``"exact"`` solves the ladder network.
    alpha:
        Overall scale of the first-order correction. 1.0 is the analytic
        perturbation value; other values exist for sensitivity studies.
    """

    r_wire: float = 0.0
    fidelity: str = "first_order"
    alpha: float = 1.0

    def __post_init__(self):
        if self.r_wire < 0.0:
            raise ValueError(f"r_wire must be >= 0, got {self.r_wire}")
        if self.fidelity not in _FIDELITIES:
            raise ValueError(f"fidelity must be one of {_FIDELITIES}, got {self.fidelity!r}")
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    @classmethod
    def ideal(cls) -> "ParasiticConfig":
        """No interconnect resistance."""
        return cls(r_wire=0.0, fidelity="none")

    @classmethod
    def paper_reference(cls, fidelity: str = "first_order") -> "ParasiticConfig":
        """1 ohm/segment, the configuration of Fig. 9."""
        return cls(r_wire=PAPER_SEGMENT_RESISTANCE, fidelity=fidelity)

    @property
    def is_ideal(self) -> bool:
        """True when the model has no effect."""
        return self.r_wire == 0.0 or self.fidelity == "none"


def _shared_segments(n: int) -> np.ndarray:
    """``P[k, l] = min(k, l) + 1``: wire segments two positions share."""
    idx = np.arange(n, dtype=float)
    return np.minimum(idx[:, None], idx[None, :]) + 1.0


def first_order_effective_matrix(
    g: np.ndarray,
    r_wire: float,
    alpha: float = 1.0,
) -> np.ndarray:
    """First-order perturbation model of the parasitic effective matrix.

    ``M = G - alpha * r * (G o (P_r G) + G o (G P_c))`` — see the module
    docstring for the derivation. Exact to first order in ``r * G``;
    residual against :func:`exact_effective_matrix` is second order.

    Parameters
    ----------
    g:
        Non-negative programmed conductance matrix (siemens), rows = WLs
        (amplifier at column 0), columns = BLs (driver at row 0).
    r_wire:
        Segment resistance (ohm).
    alpha:
        Overall correction scale (1.0 = analytic value).
    """
    g = check_matrix(g, "g")
    if np.any(g < 0.0):
        raise ValueError("conductances must be non-negative")
    if r_wire == 0.0:
        return g.copy()
    rows, cols = g.shape
    p_rows = _shared_segments(rows)
    p_cols = _shared_segments(cols)
    bl_term = g * (p_rows @ g)
    wl_term = g * (g @ p_cols)
    return g - alpha * r_wire * (bl_term + wl_term)


def _ladder_system(g: np.ndarray, r_wire: float) -> tuple[csc_matrix, int, int]:
    """Assemble the sparse conductance matrix of the crossbar ladder network.

    Unknowns are ordered ``[v_bl(0,0) ... v_bl(rows-1, cols-1),
    v_wl(0,0) ... v_wl(rows-1, cols-1)]`` in row-major order. BL drivers
    (ideal voltage sources at the top of each column) and WL amplifier
    virtual grounds (0 V at the left of each row) are eliminated into the
    right-hand side, so the system is pure nodal analysis and symmetric
    positive definite.
    """
    rows, cols = g.shape
    g_seg = 1.0 / r_wire
    n_cells = rows * cols

    def bl(i: int, j: int) -> int:
        return i * cols + j

    def wl(i: int, j: int) -> int:
        return n_cells + i * cols + j

    data: list[float] = []
    rows_idx: list[int] = []
    cols_idx: list[int] = []
    diag = np.zeros(2 * n_cells)

    def add_offdiag(a: int, b: int, value: float) -> None:
        rows_idx.append(a)
        cols_idx.append(b)
        data.append(value)

    def stamp_branch(a: int, b: int, conductance: float) -> None:
        """Stamp a conductance between two internal nodes."""
        diag[a] += conductance
        diag[b] += conductance
        add_offdiag(a, b, -conductance)
        add_offdiag(b, a, -conductance)

    for i in range(rows):
        for j in range(cols):
            # Cell conductance couples the BL node to the WL node.
            gij = g[i, j]
            if gij > 0.0:
                stamp_branch(bl(i, j), wl(i, j), gij)
            # BL wire segment toward the driver (row 0 side). The segment
            # from the driver itself is eliminated into the RHS, so it
            # only loads the first node's diagonal.
            if i > 0:
                stamp_branch(bl(i, j), bl(i - 1, j), g_seg)
            else:
                diag[bl(0, j)] += g_seg
            # WL wire segment toward the amplifier (column 0 side). The
            # amplifier node is a 0 V virtual ground: diagonal only.
            if j > 0:
                stamp_branch(wl(i, j), wl(i, j - 1), g_seg)
            else:
                diag[wl(i, 0)] += g_seg

    for node, value in enumerate(diag):
        add_offdiag(node, node, value)

    matrix = csc_matrix(
        (np.asarray(data), (np.asarray(rows_idx), np.asarray(cols_idx))),
        shape=(2 * n_cells, 2 * n_cells),
    )
    return matrix, rows, cols


def exact_effective_matrix(g: np.ndarray, r_wire: float) -> np.ndarray:
    """Exact parasitic effective matrix via the full ladder network.

    Solves the resistive network once per column of the identity drive
    (sharing one sparse LU factorization) and reads the currents entering
    each WL amplifier. The result ``M`` satisfies
    ``i_out = M @ v_in`` where ``v_in`` are the BL drive voltages and
    ``i_out`` the currents collected at the virtual-ground WL terminals.

    Complexity is O(rows * cols) unknowns with banded-ish sparsity; arrays
    up to a few hundred per side factor in seconds. Use the first-order
    model for large Monte-Carlo sweeps.
    """
    g = check_matrix(g, "g")
    if np.any(g < 0.0):
        raise ValueError("conductances must be non-negative")
    if r_wire == 0.0:
        return g.copy()
    if r_wire < 0.0:
        raise ValueError(f"r_wire must be >= 0, got {r_wire}")

    system, rows, cols = _ladder_system(g, r_wire)
    try:
        lu = splu(system)
    except RuntimeError as exc:  # pragma: no cover - singular only if malformed
        raise CircuitError(f"parasitic network is singular: {exc}") from exc

    g_seg = 1.0 / r_wire
    n_cells = rows * cols
    eff = np.zeros((rows, cols))
    rhs = np.zeros(2 * n_cells)
    for j in range(cols):
        # Drive column j with 1 V: current injected through the first BL
        # segment into node bl(0, j).
        rhs[:] = 0.0
        rhs[j] = g_seg  # bl(0, j) has flat index 0 * cols + j == j
        solution = lu.solve(rhs)
        v_wl_first = solution[n_cells : n_cells + rows * cols : 1]
        # Current into amplifier of row i flows through the WL segment
        # from node wl(i, 0) to the 0 V amp node.
        for i in range(rows):
            eff[i, j] = g_seg * v_wl_first[i * cols + 0]
    return eff


def effective_conductance_matrix(g: np.ndarray, config: ParasiticConfig) -> np.ndarray:
    """Dispatch to the configured parasitic model.

    Parameters
    ----------
    g:
        Non-negative programmed conductances (siemens).
    config:
        Model selection and wire resistance.
    """
    if config.is_ideal:
        return np.array(g, dtype=float, copy=True)
    if config.fidelity == "first_order":
        return first_order_effective_matrix(g, config.r_wire, config.alpha)
    return exact_effective_matrix(g, config.r_wire)
