"""Interconnect (wire) resistance models.

The paper (Fig. 9) assumes "the segment resistance between every two memory
cells along the BL or WL is 1 ohm, which is approximately the result in the
65 nm node". With finite wire resistance the array no longer implements its
programmed conductance matrix ``G``; it implements a perturbed operator
``M`` defined by the currents that actually reach the (virtual-ground) WL
terminals for given BL drive voltages.

Two models are provided:

- :func:`exact_effective_matrix` builds the full resistive ladder network
  (one BL node and one WL node per cell) and extracts ``M`` column by
  column with a sparse LU factorization. This is exactly the DC problem
  the paper's HSPICE netlists solve.
- :func:`first_order_effective_matrix` is the first-order perturbation
  expansion of the same network in the wire resistance ``r``. Writing
  the zeroth-order cell currents ``I_ij = G_ij v_j``, the wire segment
  between rows ``k-1`` and ``k`` of BL ``j`` carries the partial sum of
  all currents below it, and the segment between columns ``k`` and
  ``k-1`` of WL ``i`` carries the partial sum of all currents beyond it.
  Accumulating those drops at every cell and collecting coefficients of
  ``v`` gives

  ``M ~ G - r * [ G o (P_r G) + G o (G P_c) ]``

  where ``o`` is the Hadamard product and ``P_r[i,i'] = min(i,i') + 1``
  (``P_c`` likewise over columns) counts the wire segments two cells
  share. This captures the current-sharing cross terms a private-path
  model misses; the residual against the exact solve is second order in
  ``r * G0 * n`` (verified in tests). ``alpha`` survives as an overall
  scale knob (default 1, the analytic value).

Geometry convention: ``rows`` index WLs (outputs, amplifier at column 0),
``cols`` index BLs (inputs, driver at row 0).

Performance notes
-----------------
The exact model is the hot path of every interconnect Monte-Carlo sweep,
so it is engineered for batch throughput:

- the ladder system is assembled with pure NumPy index arithmetic (no
  per-cell Python loop) from a per-shape structure template that is
  cached across calls (:func:`_ladder_structure`);
- all columns of the identity drive are solved in a single multi-RHS
  ``lu.solve`` against one factorization, and the WL currents are read
  out with one strided slice instead of a per-row loop;
- :class:`ParasiticExtractor` adds an LRU result/factorization cache on
  top, so re-extracting the same programmed conductances (e.g. the
  positive and negative array of a pair across schedule steps) is free.

``exact_effective_matrix(..., method="loop")`` preserves the original
cell-by-cell assembly and column-by-column solve for equivalence tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.linalg import blas as _blas, lapack as _lapack
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.errors import CircuitError, ValidationError
from repro.utils.validation import check_matrix

#: Wire segment resistance assumed in the paper's Fig. 9 (ohm).
PAPER_SEGMENT_RESISTANCE = 1.0

_FIDELITIES = ("none", "first_order", "exact")


@dataclass(frozen=True)
class ParasiticConfig:
    """Interconnect model configuration.

    Parameters
    ----------
    r_wire:
        Segment resistance between adjacent cells, in ohm (paper: 1).
    fidelity:
        ``"none"`` ignores wires; ``"first_order"`` uses the fast analytic
        correction; ``"exact"`` solves the ladder network.
    alpha:
        Overall scale of the first-order correction. 1.0 is the analytic
        perturbation value; other values exist for sensitivity studies.
    """

    r_wire: float = 0.0
    fidelity: str = "first_order"
    alpha: float = 1.0

    def __post_init__(self):
        if self.r_wire < 0.0:
            raise ValueError(f"r_wire must be >= 0, got {self.r_wire}")
        if self.fidelity not in _FIDELITIES:
            raise ValueError(f"fidelity must be one of {_FIDELITIES}, got {self.fidelity!r}")
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    @classmethod
    def ideal(cls) -> "ParasiticConfig":
        """No interconnect resistance."""
        return cls(r_wire=0.0, fidelity="none")

    @classmethod
    def paper_reference(cls, fidelity: str = "first_order") -> "ParasiticConfig":
        """1 ohm/segment, the configuration of Fig. 9."""
        return cls(r_wire=PAPER_SEGMENT_RESISTANCE, fidelity=fidelity)

    @property
    def is_ideal(self) -> bool:
        """True when the model has no effect."""
        return self.r_wire == 0.0 or self.fidelity == "none"


def _shared_segments(n: int) -> np.ndarray:
    """``P[k, l] = min(k, l) + 1``: wire segments two positions share."""
    idx = np.arange(n, dtype=float)
    return np.minimum(idx[:, None], idx[None, :]) + 1.0


def first_order_effective_matrix(
    g: np.ndarray,
    r_wire: float,
    alpha: float = 1.0,
) -> np.ndarray:
    """First-order perturbation model of the parasitic effective matrix.

    ``M = G - alpha * r * (G o (P_r G) + G o (G P_c))`` — see the module
    docstring for the derivation. Exact to first order in ``r * G``;
    residual against :func:`exact_effective_matrix` is second order.

    Parameters
    ----------
    g:
        Non-negative programmed conductance matrix (siemens), rows = WLs
        (amplifier at column 0), columns = BLs (driver at row 0). Shape-
        generic: a ``(trials, rows, cols)`` stack applies the model per
        slice (the batched Monte-Carlo engine delegates here, so the
        correction has exactly one implementation).
    r_wire:
        Segment resistance (ohm).
    alpha:
        Overall correction scale (1.0 = analytic value).
    """
    if np.ndim(g) == 3:
        g = np.asarray(g, dtype=float)
        if g.size == 0:
            raise ValidationError("g must be non-empty")
        if not np.all(np.isfinite(g)):
            raise ValidationError("g contains non-finite entries")
    else:
        g = check_matrix(g, "g")
    if np.any(g < 0.0):
        raise ValueError("conductances must be non-negative")
    if r_wire == 0.0:
        return g.copy()
    rows, cols = g.shape[-2:]
    p_rows = _shared_segments(rows)
    p_cols = _shared_segments(cols)
    bl_term = g * (p_rows @ g)
    wl_term = g * (g @ p_cols)
    return g - alpha * r_wire * (bl_term + wl_term)


@lru_cache(maxsize=64)
def _ladder_structure(rows: int, cols: int) -> dict:
    """Per-shape structure template of the ladder system (symbolic part).

    The sparsity pattern of the ladder network depends only on the array
    shape, never on the conductance values, so the COO index arrays and
    the diagonal segment-count vectors are computed once per shape and
    reused by every numeric assembly (this is the "symbolic
    factorization" half of the extractor's cache).

    Entry layout (value vector must follow the same order):

    1. cell branches       ``(bl_k, wl_k)`` then ``(wl_k, bl_k)``
    2. BL wire segments    ``(bl(i,j), bl(i-1,j))`` both directions
    3. WL wire segments    ``(wl(i,j), wl(i,j-1))`` both directions
    4. diagonal            all BL nodes then all WL nodes
    """
    n_cells = rows * cols
    flat = np.arange(n_cells)
    i_idx = flat // cols
    j_idx = flat % cols
    bl = flat
    wl = n_cells + flat

    # 1. cell branches (all cells; zero conductances stamp harmless zeros
    # and keep the pattern value-independent).
    cell_r = np.concatenate([bl, wl])
    cell_c = np.concatenate([wl, bl])

    # 2. BL segments between row i and i-1 (i >= 1), per column.
    bl_a = bl[i_idx >= 1]
    bl_b = bl_a - cols
    seg_bl_r = np.concatenate([bl_a, bl_b])
    seg_bl_c = np.concatenate([bl_b, bl_a])

    # 3. WL segments between column j and j-1 (j >= 1), per row.
    wl_a = wl[j_idx >= 1]
    wl_b = wl_a - 1
    seg_wl_r = np.concatenate([wl_a, wl_b])
    seg_wl_c = np.concatenate([wl_b, wl_a])

    # 4. diagonal: every node carries its cell conductance plus one wire
    # segment toward the periphery plus (if interior) one away from it.
    diag_idx = np.concatenate([bl, wl])
    bl_seg_count = 1.0 + (i_idx < rows - 1)
    wl_seg_count = 1.0 + (j_idx < cols - 1)

    rows_idx = np.concatenate([cell_r, seg_bl_r, seg_wl_r, diag_idx])
    cols_idx = np.concatenate([cell_c, seg_bl_c, seg_wl_c, diag_idx])
    return {
        "rows_idx": rows_idx,
        "cols_idx": cols_idx,
        "n_seg": seg_bl_r.size + seg_wl_r.size,
        "bl_seg_count": bl_seg_count,
        "wl_seg_count": wl_seg_count,
    }


def _ladder_system(g: np.ndarray, r_wire: float) -> tuple[csc_matrix, int, int]:
    """Assemble the ladder system with vectorized index arithmetic.

    Same unknown ordering and numerical content as
    :func:`_ladder_system_loop` (tests assert exact equality of the
    assembled matrices), but built from the cached per-shape structure
    template in O(cells) NumPy work with no Python loop.
    """
    rows, cols = g.shape
    g_seg = 1.0 / r_wire
    n_cells = rows * cols
    g_flat = np.ascontiguousarray(g, dtype=float).ravel()

    s = _ladder_structure(rows, cols)
    # Diagonal sums replicate the reference loop's accumulation order
    # (cell, then periphery-side segment, then interior segment) so the
    # assembled matrix is bit-identical to the cell-by-cell stamping.
    diag_bl = (g_flat + g_seg) + g_seg * (s["bl_seg_count"] - 1.0)
    diag_wl = (g_flat + g_seg) + g_seg * (s["wl_seg_count"] - 1.0)
    data = np.concatenate(
        [
            -g_flat,
            -g_flat,
            np.full(s["n_seg"], -g_seg),
            diag_bl,
            diag_wl,
        ]
    )
    matrix = csc_matrix(
        (data, (s["rows_idx"], s["cols_idx"])), shape=(2 * n_cells, 2 * n_cells)
    )
    return matrix, rows, cols


def _ladder_system_loop(g: np.ndarray, r_wire: float) -> tuple[csc_matrix, int, int]:
    """Assemble the sparse conductance matrix of the crossbar ladder network.

    Unknowns are ordered ``[v_bl(0,0) ... v_bl(rows-1, cols-1),
    v_wl(0,0) ... v_wl(rows-1, cols-1)]`` in row-major order. BL drivers
    (ideal voltage sources at the top of each column) and WL amplifier
    virtual grounds (0 V at the left of each row) are eliminated into the
    right-hand side, so the system is pure nodal analysis and symmetric
    positive definite.

    This is the original cell-by-cell reference implementation, kept for
    the assembly equivalence tests; :func:`_ladder_system` produces the
    same matrix with vectorized index arithmetic.
    """
    rows, cols = g.shape
    g_seg = 1.0 / r_wire
    n_cells = rows * cols

    def bl(i: int, j: int) -> int:
        return i * cols + j

    def wl(i: int, j: int) -> int:
        return n_cells + i * cols + j

    data: list[float] = []
    rows_idx: list[int] = []
    cols_idx: list[int] = []
    diag = np.zeros(2 * n_cells)

    def add_offdiag(a: int, b: int, value: float) -> None:
        rows_idx.append(a)
        cols_idx.append(b)
        data.append(value)

    def stamp_branch(a: int, b: int, conductance: float) -> None:
        """Stamp a conductance between two internal nodes."""
        diag[a] += conductance
        diag[b] += conductance
        add_offdiag(a, b, -conductance)
        add_offdiag(b, a, -conductance)

    for i in range(rows):
        for j in range(cols):
            # Cell conductance couples the BL node to the WL node.
            gij = g[i, j]
            if gij > 0.0:
                stamp_branch(bl(i, j), wl(i, j), gij)
            # BL wire segment toward the driver (row 0 side). The segment
            # from the driver itself is eliminated into the RHS, so it
            # only loads the first node's diagonal.
            if i > 0:
                stamp_branch(bl(i, j), bl(i - 1, j), g_seg)
            else:
                diag[bl(0, j)] += g_seg
            # WL wire segment toward the amplifier (column 0 side). The
            # amplifier node is a 0 V virtual ground: diagonal only.
            if j > 0:
                stamp_branch(wl(i, j), wl(i, j - 1), g_seg)
            else:
                diag[wl(i, 0)] += g_seg

    for node, value in enumerate(diag):
        add_offdiag(node, node, value)

    matrix = csc_matrix(
        (np.asarray(data), (np.asarray(rows_idx), np.asarray(cols_idx))),
        shape=(2 * n_cells, 2 * n_cells),
    )
    return matrix, rows, cols


def _factorize_ladder(g: np.ndarray, r_wire: float):
    """Factor the ladder system; returns ``(lu, rows, cols)``."""
    system, rows, cols = _ladder_system(g, r_wire)
    try:
        lu = splu(system)
    except RuntimeError as exc:  # pragma: no cover - singular only if malformed
        raise CircuitError(f"parasitic network is singular: {exc}") from exc
    return lu, rows, cols


def _readout_from_lu(lu, rows: int, cols: int, r_wire: float) -> np.ndarray:
    """Solve all identity-drive columns and read the WL currents.

    Multi-RHS ``lu.solve`` calls replace the per-column solve loop; the
    currents into the amplifiers of every row are then a single strided
    slice of each solution block (WL nodes of column 0). Drives are
    chunked so the dense RHS/solution blocks stay within the same memory
    budget the Schur dispatch enforces (one 512x512 array would
    otherwise allocate a ~2 GB RHS in a single call).
    """
    g_seg = 1.0 / r_wire
    n_cells = rows * cols
    chunk = max(1, _SCHUR_MEMORY_LIMIT_BYTES // (2 * n_cells * 8))
    eff = np.empty((rows, cols))
    for start in range(0, cols, chunk):
        stop = min(cols, start + chunk)
        # Drive column j with 1 V: current g_seg injected through the
        # first BL segment into node bl(0, j), whose flat index is j.
        rhs = np.zeros((2 * n_cells, stop - start))
        rhs[np.arange(start, stop), np.arange(stop - start)] = g_seg
        solution = lu.solve(rhs)
        # Current into amplifier of row i flows through the WL segment
        # from node wl(i, 0) (flat index n_cells + i*cols) to the amp.
        eff[:, start:stop] = g_seg * solution[n_cells : 2 * n_cells : cols, :]
    return eff


#: Above this many bytes for the dense Schur block tensor, the exact
#: solver falls back to the sparse-LU path (memory over speed).
_SCHUR_MEMORY_LIMIT_BYTES = 64 * 1024 * 1024

#: Log-ratio floor below which the semiseparable closed form would
#: underflow; such extreme chains reroute to the sparse-LU path.
_SCHUR_LOG_UNDERFLOW = -600.0

#: Per-chunk budget for the batched engine's block tensor. Much smaller
#: than the dispatch limit on purpose: the batched assembly is memory-
#: bound, and chunks that spill the cache hierarchy cost more in
#: bandwidth than they save in amortization. A budget scan over 64-trial
#: stacks measured 1 MB as the knee — 1.4x over the scalar loop at
#: 16x16, parity at 64x64 — while 8 MB chunks were ~12% *slower* than
#: scalar at 64x64 and 64 MB chunks ~6x slower.
_SCHUR_BATCH_CHUNK_BYTES = 1024 * 1024


def _schur_blocks(
    g: np.ndarray, g_seg: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble the Schur diagonal blocks and reduced RHS of the WL system.

    ``g`` has shape ``(..., rows, cols)`` with ``rows <= cols``; leading
    axes (if any) are independent trials. Returns ``(D, R, l_min)``:
    the blocks ``(..., cols, rows, rows)``, the reduced right-hand sides
    ``(..., cols, rows)``, and per-trial minima of the log-ratio profile
    (``(...)``-shaped) for the underflow guard.

    Every operation here is an elementwise ufunc, a sequential scan down
    the chain axis, or pure data movement, so lifting a trials axis in
    front changes nothing per element — the batched assembly is
    bit-identical per trial to the scalar one (asserted in the kernel
    equivalence tests).
    """
    rows, cols = g.shape[-2:]
    lead = g.shape[:-2]
    g2 = g_seg * g_seg
    i_idx = np.arange(rows)

    # Per-column BL chain: tridiag(-g_seg, a, -g_seg) with loaded diagonal.
    a = g + g_seg + g_seg * (i_idx < rows - 1)[:, None]  # (..., rows, cols)
    r = np.empty(lead + (rows, cols))
    s = np.empty(lead + (rows, cols))
    r[..., 0, :] = a[..., 0, :]
    s[..., rows - 1, :] = a[..., rows - 1, :]
    for k in range(1, rows):
        r[..., k, :] = a[..., k, :] - g2 / r[..., k - 1, :]
    for k in range(rows - 2, -1, -1):
        s[..., k, :] = a[..., k, :] - g2 / s[..., k + 1, :]
    d = 1.0 / (r + s - a)  # diagonal of each chain's inverse

    # Semiseparable structure of a tridiagonal inverse: for i >= j,
    # (T^-1)_{ij} = d_i * E_i / E_j with E_i = prod_{k<i} (g_seg / r_k).
    if rows > 1:
        log_rho = np.log(g_seg / r[..., :-1, :])
        L = np.concatenate(
            [np.zeros(lead + (1, cols)), np.cumsum(log_rho, axis=-2)], axis=-2
        )
        l_min = L.min(axis=(-2, -1))
    else:
        L = np.zeros(lead + (1, cols))
        l_min = L.min(axis=(-2, -1))
    # Trials past the underflow floor are rejected by the caller; zero
    # their profile so the (discarded) assembly below stays finite and
    # warning-free. `where` passes surviving trials through untouched.
    L = np.where(l_min[..., None, None] < _SCHUR_LOG_UNDERFLOW, 0.0, L)
    E = np.exp(L)  # (..., rows, cols), decreasing down each chain

    gT = np.ascontiguousarray(np.swapaxes(g, -1, -2))  # (..., cols, rows)
    dET = np.swapaxes(d * E, -1, -2)  # (..., cols, rows)
    u = gT * dET  # g_i d_i E_i
    v = gT / np.swapaxes(E, -1, -2)  # g_j / E_j
    # Schur diagonal blocks D_j = diag(dwl_j) - G_j T_j^-1 G_j, built from
    # the rank-1 triangular outer product of u and v.
    lower = np.tril(u[..., :, :, None] * v[..., :, None, :], k=-1)  # strict
    D = -(lower + np.swapaxes(lower, -1, -2))
    j_idx = np.arange(cols)
    dwl = np.swapaxes(
        g + g_seg + g_seg * (j_idx < cols - 1)[None, :], -1, -2
    )  # (..., cols, rows)
    # diag of -G T^-1 G is -g^2 d
    D[..., i_idx, i_idx] += dwl - gT * gT * np.swapaxes(d, -1, -2)

    # Reduced RHS: drive j injects g_seg through bl(0, j), eliminated to
    # block j as G_j T_j^-1 (g_seg e_0) = g_seg * u'_j with E_0 = 1.
    R = g_seg * gT * dET  # (..., cols, rows)
    return D, R, l_min


def _schur_sweep(D: np.ndarray, R: np.ndarray, g_seg: float) -> np.ndarray | None:
    """Reverse block-UL sweep of one trial's WL system.

    ``D`` is ``(cols, rows, rows)``, ``R`` is ``(cols, rows)``. The
    sweep computes ``U_j = D_j - g_seg^2 U_{j+1}^-1`` and
    ``h_j = r_j + g_seg U_{j+1}^-1 h_{j+1}``; back-substitution then
    starts at block 0, which is the only solution block the readout
    needs — one Cholesky per block column, lower triangles only. This
    single implementation serves the scalar engine and (called per
    trial) the batched one, so per-trial bit-identity is structural.

    Returns ``None`` if a block fails Cholesky (SPD violated — only
    possible on malformed input), signalling the sparse-LU fallback.
    """
    cols, rows = R.shape
    g2 = g_seg * g_seg
    if cols == 1:
        return g_seg * np.linalg.solve(D[0], R[0][:, None])

    U = D[cols - 1].copy()
    h = np.zeros((rows, cols), order="F")
    h[:, cols - 1] = R[cols - 1]
    for j in range(cols - 2, -1, -1):
        c, info = _lapack.dpotrf(U, lower=1, overwrite_a=1)
        if info != 0:  # pragma: no cover - SPD by construction
            return None
        inv_u, info = _lapack.dpotri(c, lower=1, overwrite_c=1)
        if info != 0:  # pragma: no cover
            return None
        h[:, j + 1 :] = g_seg * _blas.dsymm(
            1.0, inv_u, h[:, j + 1 :], side=0, lower=1
        )
        h[:, j] = R[j]
        U = D[j] - g2 * inv_u
    _, x, info = _lapack.dposv(U, h, lower=1)
    if info != 0:  # pragma: no cover - SPD by construction
        return None
    return g_seg * x


def _exact_effective_schur(g: np.ndarray, r_wire: float) -> np.ndarray | None:
    """Exact effective matrix via BL elimination + block-tridiagonal Schur.

    The ladder unknowns split into BL nodes (per-column independent
    tridiagonal chains) and WL nodes. Eliminating the BL nodes leaves a
    block-tridiagonal SPD system over the WL nodes whose diagonal blocks
    come from the *closed-form semiseparable inverse* of each BL chain
    (two continued-fraction recurrences plus one rank-1 triangular outer
    product — no factorization at all; :func:`_schur_blocks`), and whose
    off-diagonal blocks are ``-g_seg I``; :func:`_schur_sweep` then
    solves for the readout block.

    Arrays with ``rows > cols`` are handled by network reciprocity
    (``M(g^T) = M(g)^T``, a consequence of the nodal matrix symmetry).

    Returns ``None`` when the closed form would underflow (pathologically
    lossy chains) so the caller can fall back to the sparse-LU path.
    """
    rows, cols = g.shape
    if rows > cols:
        result = _exact_effective_schur(g.T, r_wire)
        return None if result is None else result.T
    g = np.asarray(g, dtype=float)
    g_seg = 1.0 / r_wire
    D, R, l_min = _schur_blocks(g, g_seg)
    if float(l_min) < _SCHUR_LOG_UNDERFLOW:
        return None  # closed form would underflow; use sparse LU
    return _schur_sweep(D, R, g_seg)


def exact_effective_matrix(
    g: np.ndarray, r_wire: float, *, method: str = "auto"
) -> np.ndarray:
    """Exact parasitic effective matrix via the full ladder network.

    The result ``M`` satisfies ``i_out = M @ v_in`` where ``v_in`` are
    the BL drive voltages and ``i_out`` the currents collected at the
    virtual-ground WL terminals.

    Three solution engines are available:

    - ``"schur"``: eliminate the BL nodes through the closed-form
      semiseparable inverse of each column's tridiagonal chain and solve
      the remaining block-tridiagonal WL system with a reverse block-UL
      sweep. O(cols * rows^3) dense BLAS with tiny constants — the fast
      path for every practical array size.
    - ``"lu"``: vectorized sparse assembly, one SuperLU factorization,
      and a single multi-RHS ``lu.solve`` for all drive columns.
    - ``"loop"``: the original cell-by-cell assembly and column-by-column
      solve, kept as the equivalence reference.

    ``"auto"`` (default) picks ``"schur"`` unless its dense block tensor
    would exceed the memory budget, then falls back to ``"lu"``.

    Use the first-order model for large Monte-Carlo sweeps, or a
    :class:`ParasiticExtractor` to amortize repeated extractions.

    Parameters
    ----------
    g:
        Non-negative programmed conductances (siemens).
    r_wire:
        Segment resistance (ohm).
    method:
        ``"auto"``, ``"schur"``, ``"lu"``, or ``"loop"``.
    """
    g = check_matrix(g, "g")
    if np.any(g < 0.0):
        raise ValueError("conductances must be non-negative")
    if r_wire == 0.0:
        return g.copy()
    if r_wire < 0.0:
        raise ValueError(f"r_wire must be >= 0, got {r_wire}")
    if method not in ("auto", "schur", "lu", "loop"):
        raise ValueError(
            f"method must be 'auto', 'schur', 'lu', or 'loop', got {method!r}"
        )

    if method == "loop":
        system, rows, cols = _ladder_system_loop(g, r_wire)
        try:
            lu = splu(system)
        except RuntimeError as exc:  # pragma: no cover - singular only if malformed
            raise CircuitError(f"parasitic network is singular: {exc}") from exc
        g_seg = 1.0 / r_wire
        n_cells = rows * cols
        eff = np.zeros((rows, cols))
        rhs = np.zeros(2 * n_cells)
        for j in range(cols):
            rhs[:] = 0.0
            rhs[j] = g_seg  # bl(0, j) has flat index 0 * cols + j == j
            solution = lu.solve(rhs)
            eff[:, j] = g_seg * solution[n_cells : 2 * n_cells : cols]
        return eff

    if method in ("auto", "schur"):
        rows, cols = g.shape
        small, large = sorted(g.shape)
        tensor_bytes = large * small * small * 8
        if method == "schur" or tensor_bytes <= _SCHUR_MEMORY_LIMIT_BYTES:
            eff = _exact_effective_schur(g, r_wire)
            if eff is not None:
                return eff
            if method == "schur":
                raise CircuitError(
                    "schur engine under/overflowed for this network; "
                    "use method='lu'"
                )

    lu, rows, cols = _factorize_ladder(g, r_wire)
    return _readout_from_lu(lu, rows, cols, r_wire)


def exact_effective_matrix_batch(g: np.ndarray, r_wire: float) -> np.ndarray:
    """Exact parasitic effective matrices for a ``(trials, rows, cols)`` stack.

    Per-trial results are **bit-identical** to
    ``exact_effective_matrix(g[t], r_wire)`` (asserted in the kernel
    equivalence tests): the Schur *assembly* — elementwise recurrences,
    scans, and data movement — vectorizes over a leading trials axis
    without changing any per-element operation (:func:`_schur_blocks`),
    while the block sweep runs the exact same LAPACK sequence per trial
    (:func:`_schur_sweep` is shared with the scalar engine). The win is
    amortization: one validation pass, one fused assembly over all
    trials (the Python-loop recurrences run once instead of per trial),
    and no per-trial dispatch overhead — which is where the scalar
    engine's time outside BLAS goes for Monte-Carlo-sized arrays.

    Trials are chunked so the assembled block tensor respects the same
    memory budget the scalar auto-dispatch enforces; shapes whose
    *per-trial* tensor exceeds the budget fall back to the scalar engine
    per trial (sparse LU), as does any trial rejected by the underflow
    guard — exactly mirroring ``method="auto"``.

    Parameters
    ----------
    g:
        Non-negative programmed conductances, shape ``(trials, rows, cols)``.
    r_wire:
        Segment resistance (ohm), shared by all trials.
    """
    g = np.asarray(g, dtype=float)
    if g.ndim != 3:
        raise ValidationError(f"g must be 3-D (trials, rows, cols), got {g.shape}")
    if g.size == 0:
        raise ValidationError("g must be non-empty")
    if not np.all(np.isfinite(g)):
        raise ValidationError("g contains non-finite entries")
    if np.any(g < 0.0):
        raise ValueError("conductances must be non-negative")
    if r_wire == 0.0:
        return g.copy()
    if r_wire < 0.0:
        raise ValueError(f"r_wire must be >= 0, got {r_wire}")

    trials, rows, cols = g.shape
    small, large = sorted((rows, cols))
    tensor_bytes = large * small * small * 8
    if tensor_bytes > _SCHUR_MEMORY_LIMIT_BYTES:
        # The scalar auto-dispatch would use sparse LU for this shape.
        return np.stack([exact_effective_matrix(g[t], r_wire) for t in range(trials)])

    # Reciprocity: run the Schur engine on the orientation with
    # rows <= cols and transpose each result back (exact data movement).
    transposed = rows > cols
    work = np.ascontiguousarray(np.swapaxes(g, 1, 2)) if transposed else g
    g_seg = 1.0 / r_wire
    out = np.empty_like(g)
    chunk = max(1, _SCHUR_BATCH_CHUNK_BYTES // tensor_bytes)
    for start in range(0, trials, chunk):
        stop = min(trials, start + chunk)
        D, R, l_min = _schur_blocks(work[start:stop], g_seg)
        bad = l_min < _SCHUR_LOG_UNDERFLOW
        for k in range(stop - start):
            t = start + k
            x = None if bad[k] else _schur_sweep(D[k], R[k], g_seg)
            if x is None:
                # Underflow (or SPD failure): the scalar engine reroutes
                # this trial to sparse LU on the original orientation.
                out[t] = exact_effective_matrix(g[t], r_wire)
            else:
                out[t] = x.T if transposed else x
    return out


class ParasiticExtractor:
    """LRU-cached exact parasitic extraction engine.

    Extraction cost has two parts: the *symbolic* part (the sparsity
    structure of the ladder system, a pure function of the array shape)
    and the *numeric* part (value assembly + LU factorization + solve).
    The symbolic part is shared process-wide via the per-shape structure
    template; this class additionally keeps an LRU cache of completed
    extractions keyed by the exact conductance bytes, so asking for the
    same programmed array twice — as the five-step schedule does for its
    ``A1`` array, or as paired positive/negative arrays with identical
    states do — returns instantly without re-factoring.

    When only ``g``'s *values* change (same shape), the cached structure
    template makes re-assembly a handful of vectorized concatenations;
    only the numeric factorization is redone.

    Parameters
    ----------
    maxsize:
        Maximum number of cached extractions (LRU eviction).
    """

    def __init__(self, maxsize: int = 16):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def extract(self, g: np.ndarray, r_wire: float) -> np.ndarray:
        """Exact effective matrix, served from cache when possible."""
        g = check_matrix(g, "g")
        if r_wire == 0.0:
            return g.copy()
        key = (g.shape, float(r_wire), g.tobytes())
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached.copy()
        self.misses += 1
        eff = exact_effective_matrix(g, r_wire)
        self._cache[key] = eff
        if len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
        return eff.copy()

    def effective(self, g: np.ndarray, config: ParasiticConfig) -> np.ndarray:
        """Dispatch like :func:`effective_conductance_matrix`, with caching."""
        if config.is_ideal:
            return np.array(g, dtype=float, copy=True)
        if config.fidelity == "first_order":
            return first_order_effective_matrix(g, config.r_wire, config.alpha)
        return self.extract(g, config.r_wire)

    def clear(self) -> None:
        """Drop all cached extractions (keeps hit/miss counters)."""
        self._cache.clear()


#: Process-wide extractor behind :func:`effective_conductance_matrix`:
#: cross-array sharing for byte-identical conductance states (live
#: :class:`CrossbarArray` objects additionally keep their own per-array
#: cache). Kept small — at 512x512 each cached result is ~2 MB — and
#: clearable via :func:`default_extractor` for memory-sensitive runs.
_DEFAULT_EXTRACTOR = ParasiticExtractor(maxsize=8)


def default_extractor() -> ParasiticExtractor:
    """The process-wide extractor used by :func:`effective_conductance_matrix`.

    Call ``default_extractor().clear()`` to release cached extractions
    between independent experiments.
    """
    return _DEFAULT_EXTRACTOR


def effective_conductance_matrix(g: np.ndarray, config: ParasiticConfig) -> np.ndarray:
    """Dispatch to the configured parasitic model.

    Exact extractions are served through a shared process-wide
    :class:`ParasiticExtractor` (see :func:`default_extractor`), so
    repeated extraction of the same programmed conductances costs one
    cache lookup.

    Parameters
    ----------
    g:
        Non-negative programmed conductances (siemens).
    config:
        Model selection and wire resistance.
    """
    if config.is_ideal:
        return np.array(g, dtype=float, copy=True)
    if config.fidelity == "first_order":
        return first_order_effective_matrix(g, config.r_wire, config.alpha)
    return _DEFAULT_EXTRACTOR.extract(g, config.r_wire)
