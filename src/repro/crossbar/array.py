"""Programmed crossbar array pairs.

A :class:`CrossbarArray` is the hardware image of one signed matrix: two
non-negative conductance arrays (positive and negative part) that went
through the full programming pipeline —

    target mapping -> level quantization -> programming variation
    (or an explicit write-and-verify session) -> stuck-at faults

— plus the interconnect model that turns programmed conductances into the
*effective* operator the analog periphery actually sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crossbar.mapping import MappedConductances, map_to_conductances
from repro.crossbar.parasitics import ParasiticConfig, effective_conductance_matrix
from repro.devices.faults import StuckFaultModel
from repro.devices.models import PAPER_G0_SIEMENS, DeviceSpec
from repro.devices.programming import write_verify
from repro.devices.quantization import quantize_conductance
from repro.devices.variations import NoVariation, VariationModel
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ProgrammingConfig:
    """Device-level non-ideality selection for programming an array.

    Parameters
    ----------
    device:
        Physical cell envelope.
    variation:
        Statistical programming-error model (paper: Gaussian, 0.05 * G0).
    faults:
        Stuck-at fault injection model.
    quantize:
        Snap targets to the device's level grid before programming
        (no-op for continuous devices).
    use_write_verify:
        Replace the statistical variation model with an explicit
        write-and-verify pulse-loop simulation. Much slower; used to
        validate that the closed loop indeed leaves a near-Gaussian
        residual of the assumed magnitude.
    """

    device: DeviceSpec = field(default_factory=DeviceSpec.paper_reference)
    variation: VariationModel = field(default_factory=NoVariation)
    faults: StuckFaultModel = field(default_factory=StuckFaultModel)
    quantize: bool = False
    use_write_verify: bool = False

    @classmethod
    def ideal(cls) -> "ProgrammingConfig":
        """Perfect programming: conductances equal their targets."""
        return cls()

    def program(self, target: np.ndarray, rng=None) -> np.ndarray:
        """Run the full pipeline on one non-negative target array."""
        rng = as_generator(rng)
        target = self.device.clip(np.asarray(target, dtype=float))
        if self.quantize:
            target = quantize_conductance(target, self.device)
        if self.use_write_verify:
            programmed = write_verify(target, self.device, rng).conductance
        else:
            programmed = self.variation.apply(target, rng)
        if not self.faults.is_trivial:
            programmed = self.faults.apply(programmed, self.device, rng)
        return programmed


class CrossbarArray:
    """A signed matrix stored on a positive/negative pair of RRAM arrays.

    Use :meth:`program` to build one from a matrix; the constructor takes
    already-programmed conductances (used by tests to inject exact states).
    """

    def __init__(
        self,
        g_pos: np.ndarray,
        g_neg: np.ndarray,
        g_unit: float = PAPER_G0_SIEMENS,
        scale: float = 1.0,
        target: MappedConductances | None = None,
    ):
        g_pos = np.asarray(g_pos, dtype=float)
        g_neg = np.asarray(g_neg, dtype=float)
        if g_pos.shape != g_neg.shape:
            raise ValueError(f"g_pos/g_neg shapes differ: {g_pos.shape} vs {g_neg.shape}")
        if np.any(g_pos < 0.0) or np.any(g_neg < 0.0):
            raise ValueError("programmed conductances must be non-negative")
        self._g_pos = g_pos
        self._g_neg = g_neg
        self._g_unit = float(g_unit)
        self._scale = float(scale)
        self._target = target
        self._effective_cache: dict[ParasiticConfig, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def program(
        cls,
        matrix: np.ndarray,
        config: ProgrammingConfig | None = None,
        rng=None,
        *,
        g_unit: float = PAPER_G0_SIEMENS,
        pre_normalized: bool = False,
        scale: float = 1.0,
    ) -> "CrossbarArray":
        """Map and program ``matrix`` onto a dual-array pair.

        Parameters mirror :func:`repro.crossbar.mapping.map_to_conductances`
        plus the programming pipeline configuration. Two independent RNG
        children drive the positive and negative arrays so their errors
        are uncorrelated, as in hardware.
        """
        config = config or ProgrammingConfig.ideal()
        rng = as_generator(rng)
        mapped = map_to_conductances(
            matrix, g_unit, pre_normalized=pre_normalized, scale=scale
        )
        g_pos = config.program(mapped.g_pos, rng)
        g_neg = config.program(mapped.g_neg, rng)
        return cls(g_pos, g_neg, g_unit=g_unit, scale=mapped.scale, target=mapped)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape (rows = WLs, cols = BLs)."""
        return self._g_pos.shape

    @property
    def g_unit(self) -> float:
        """Unit conductance ``G0`` in siemens."""
        return self._g_unit

    @property
    def scale(self) -> float:
        """Normalization factor: stored matrix = original / scale."""
        return self._scale

    @property
    def g_pos(self) -> np.ndarray:
        """Programmed positive-part conductances (read-only view)."""
        view = self._g_pos.view()
        view.flags.writeable = False
        return view

    @property
    def g_neg(self) -> np.ndarray:
        """Programmed negative-part conductances (read-only view)."""
        view = self._g_neg.view()
        view.flags.writeable = False
        return view

    @property
    def target(self) -> MappedConductances | None:
        """The mapping targets, if the array was built via :meth:`program`."""
        return self._target

    @property
    def device_count(self) -> int:
        """Total number of RRAM cells (both arrays of the pair)."""
        return 2 * self._g_pos.size

    # ------------------------------------------------------------------
    # effective operator
    # ------------------------------------------------------------------
    def effective_matrix(self, parasitics: ParasiticConfig | None = None) -> np.ndarray:
        """The normalized signed matrix the periphery actually sees.

        ``M = (M+ - M-) / G0`` where ``M+``/``M-`` are the programmed
        conductances corrected by the configured interconnect model. With
        ideal programming and no wires this equals the normalized target
        matrix exactly. Results are cached per parasitic configuration.
        """
        parasitics = parasitics or ParasiticConfig.ideal()
        cached = self._effective_cache.get(parasitics)
        if cached is None:
            eff_pos = effective_conductance_matrix(self._g_pos, parasitics)
            eff_neg = effective_conductance_matrix(self._g_neg, parasitics)
            cached = (eff_pos - eff_neg) / self._g_unit
            self._effective_cache[parasitics] = cached
        return cached.copy()

    def load_row_sums(self) -> np.ndarray:
        """Total normalized conductance loading each WL (for finite gain).

        Both arrays of the pair load the amplifier input node, so the sum
        runs over ``g_pos + g_neg`` regardless of sign.
        """
        return (self._g_pos + self._g_neg).sum(axis=1) / self._g_unit

    def load_col_sums(self) -> np.ndarray:
        """Total normalized conductance loading each BL (for drivers)."""
        return (self._g_pos + self._g_neg).sum(axis=0) / self._g_unit

    def programming_error(self) -> np.ndarray | None:
        """Signed conductance error vs target, in normalized (matrix) units.

        ``None`` when the array was constructed from raw conductances.
        """
        if self._target is None:
            return None
        ideal = self._target.reconstruct_normalized()
        actual = (self._g_pos - self._g_neg) / self._g_unit
        return actual - ideal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows, cols = self.shape
        return (
            f"CrossbarArray({rows}x{cols}, g_unit={self._g_unit:.3g} S, "
            f"scale={self._scale:.3g})"
        )
