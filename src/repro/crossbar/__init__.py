"""Crossbar array substrate.

Turns real-valued matrices into pairs of non-negative conductance arrays
(the positive/negative split the paper describes in Sec. II), pushes them
through the device-level programming pipeline, and models the interconnect
(wire) resistance of the array.
"""

from repro.crossbar.array import CrossbarArray, ProgrammingConfig
from repro.crossbar.mapping import (
    MappedConductances,
    map_to_conductances,
    normalize_matrix,
    split_signed,
)
from repro.crossbar.remapping import (
    fault_aware_permutation,
    fault_overlap,
    remap_system,
    unpermute_solution,
)
from repro.crossbar.parasitics import (
    ParasiticConfig,
    ParasiticExtractor,
    default_extractor,
    effective_conductance_matrix,
    exact_effective_matrix,
    first_order_effective_matrix,
)

__all__ = [
    "CrossbarArray",
    "MappedConductances",
    "ParasiticConfig",
    "ParasiticExtractor",
    "ProgrammingConfig",
    "default_extractor",
    "effective_conductance_matrix",
    "exact_effective_matrix",
    "fault_aware_permutation",
    "fault_overlap",
    "first_order_effective_matrix",
    "map_to_conductances",
    "normalize_matrix",
    "remap_system",
    "split_signed",
    "unpermute_solution",
]
