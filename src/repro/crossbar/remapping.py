"""Fault-aware matrix remapping.

The paper motivates partitioning partly with yield: cells "may get
stuck in the ON or OFF state". When a fault map is known (from a
post-programming read-verify pass), the damage can be reduced *before*
solving by permuting the matrix so that large-magnitude entries avoid
faulty cells:

    P A Q  mapped to the (faulty) array,
    solve (P A Q) y = P b, recover x = Q y.

Row/column permutations are free in the digital preprocessing step and
do not change the solution — only which entry lands on which cell.
:func:`fault_aware_permutation` runs a greedy assignment that minimizes
the total |entry| * fault indicator, and :func:`remap_system` applies
the permutations.

This is an extension beyond the paper (its fault story stops at
motivation). Caveats: minimizing the magnitude on faulty cells directly
bounds the *forward* (MVM) error; for INV the sensitivity to a given
cell also depends on the inverse's structure, so remapping helps on
average but is not guaranteed per instance — the fault ablation bench
reports both.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.utils.validation import check_square_matrix, check_vector


def _greedy_assignment(cost: np.ndarray) -> np.ndarray:
    """Greedy row assignment minimizing total cost.

    Picks the (row, slot) pair with the smallest cost first; O(n^2 log n)
    and within a few percent of the Hungarian optimum for the sparse,
    few-large-entries cost maps fault remapping produces.
    """
    n = cost.shape[0]
    order = np.dstack(np.unravel_index(np.argsort(cost, axis=None), cost.shape))[0]
    assignment = np.full(n, -1)
    used_slots = np.zeros(n, dtype=bool)
    assigned = 0
    for row, slot in order:
        if assignment[row] == -1 and not used_slots[slot]:
            assignment[row] = slot
            used_slots[slot] = True
            assigned += 1
            if assigned == n:
                break
    return assignment


def fault_aware_permutation(
    matrix: np.ndarray,
    fault_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Choose row/column permutations steering weight away from faults.

    Parameters
    ----------
    matrix:
        The (square) matrix to map.
    fault_mask:
        Boolean array, True where the physical cell is stuck. The mask
        indexes *physical* positions; entry ``(i, j)`` of the permuted
        matrix lands on physical cell ``(i, j)``.

    Returns
    -------
    (row_perm, col_perm):
        Index arrays such that ``matrix[row_perm][:, col_perm]`` places
        small-magnitude entries on faulty cells. Two greedy passes: rows
        are matched to physical rows minimizing |entry| mass on faulty
        cells (with columns identity), then columns likewise.
    """
    matrix = check_square_matrix(matrix)
    fault_mask = np.asarray(fault_mask, dtype=bool)
    if fault_mask.shape != matrix.shape:
        raise MappingError(
            f"fault mask shape {fault_mask.shape} != matrix shape {matrix.shape}"
        )
    n = matrix.shape[0]
    weight = np.abs(matrix)
    fault = fault_mask.astype(float)

    # Cost of placing logical row r on physical row i: overlap of the
    # row's weight with row i's fault pattern.
    row_cost = weight @ fault.T  # (logical r, physical i)
    row_assignment = _greedy_assignment(row_cost.T).argsort()  # logical -> physical
    # Build row_perm such that permuted[i] = matrix[row_perm[i]].
    row_perm = np.empty(n, dtype=int)
    for logical, physical in enumerate(row_assignment):
        row_perm[physical] = logical

    permuted_rows = weight[row_perm]
    col_cost = permuted_rows.T @ fault  # (logical c, physical j)
    col_assignment = _greedy_assignment(col_cost.T).argsort()
    col_perm = np.empty(n, dtype=int)
    for logical, physical in enumerate(col_assignment):
        col_perm[physical] = logical

    return row_perm, col_perm


def remap_system(
    matrix: np.ndarray,
    b: np.ndarray,
    row_perm: np.ndarray,
    col_perm: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the permutations: returns ``(P A Q, P b)``.

    Solve the permuted system, then recover the original solution with
    :func:`unpermute_solution`.
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    return matrix[row_perm][:, col_perm], b[row_perm]


def unpermute_solution(y: np.ndarray, col_perm: np.ndarray) -> np.ndarray:
    """Undo the column permutation on the permuted system's solution.

    If ``(P A Q) y = P b`` then ``x = Q y``, i.e. ``x[col_perm[k]] = y[k]``.
    """
    y = check_vector(y, "y")
    col_perm = np.asarray(col_perm, dtype=int)
    if col_perm.size != y.size:
        raise MappingError(f"permutation length {col_perm.size} != solution {y.size}")
    x = np.empty_like(y)
    x[col_perm] = y
    return x


def fault_overlap(matrix: np.ndarray, fault_mask: np.ndarray) -> float:
    """Total |entry| magnitude sitting on faulty cells (the remap target)."""
    matrix = check_square_matrix(matrix)
    return float(np.sum(np.abs(matrix)[np.asarray(fault_mask, dtype=bool)]))
