"""Closed-loop offset calibration.

Op-amp input offsets are *systematic*: fixed per amplifier, multiplied
by each array's noise gain. Because the whole circuit is linear, the
offset contribution to any operation's output is exactly the output
measured with **zero input** — so a one-time zero-input measurement per
(array, operation) pair can be subtracted from every subsequent result.
This is the software equivalent of the auto-zero phase real mixed-signal
front ends run at power-up.

:class:`CalibratedOperations` wraps :class:`~repro.amc.ops.AMCOperations`
with exactly that procedure. After calibration the offset error is gone
up to (a) the output noise of the calibration measurement itself and
(b) converter quantization of the stored correction — both quantified in
the tests.
"""

from __future__ import annotations

import numpy as np

from repro.amc.ops import AMCOperations, OpResult
from repro.crossbar.array import CrossbarArray
from repro.utils.rng import as_generator


class CalibratedOperations:
    """Offset-calibrated MVM/INV primitives.

    Parameters
    ----------
    ops:
        The physical operations instance to calibrate (its cached
        offsets are what calibration measures).
    averages:
        Zero-input measurements averaged per calibration entry; >1
        suppresses output noise in the stored correction.
    """

    def __init__(self, ops: AMCOperations, averages: int = 1):
        if averages < 1:
            raise ValueError(f"averages must be >= 1, got {averages}")
        self.ops = ops
        self.averages = averages
        self._corrections: dict[tuple[int, str, float], np.ndarray] = {}

    @property
    def config(self):
        """The wrapped hardware configuration."""
        return self.ops.config

    def _key(self, array: CrossbarArray, kind: str, input_scale: float) -> tuple:
        return (id(array), kind, float(input_scale))

    def _zero_response(
        self, array: CrossbarArray, kind: str, input_scale: float, rng
    ) -> np.ndarray:
        """Measure (and cache) the zero-input output of one operation."""
        key = self._key(array, kind, input_scale)
        cached = self._corrections.get(key)
        if cached is None:
            rows, cols = array.shape
            zero = np.zeros(cols if kind == "mvm" else rows)
            samples = []
            for _ in range(self.averages):
                if kind == "mvm":
                    result = self.ops.mvm(array, zero, label="cal:mvm", rng=rng)
                else:
                    result = self.ops.inv(
                        array, zero, label="cal:inv", input_scale=input_scale, rng=rng
                    )
                samples.append(result.output)
            cached = np.mean(samples, axis=0)
            self._corrections[key] = cached
        return cached

    def calibrate(self, array: CrossbarArray, kinds=("mvm", "inv"), input_scale: float = 1.0, rng=None) -> None:
        """Pre-measure corrections for an array (optional; lazy otherwise)."""
        rng = as_generator(rng)
        for kind in kinds:
            if kind == "inv" and array.shape[0] != array.shape[1]:
                continue
            self._zero_response(array, kind, input_scale if kind == "inv" else 1.0, rng)

    @property
    def calibrated_entries(self) -> int:
        """Number of stored (array, operation) corrections."""
        return len(self._corrections)

    def mvm(self, array: CrossbarArray, v_in: np.ndarray, label: str = "mvm", rng=None) -> OpResult:
        """Offset-calibrated MVM (same contract as ``AMCOperations.mvm``)."""
        rng = as_generator(rng)
        correction = self._zero_response(array, "mvm", 1.0, rng)
        raw = self.ops.mvm(array, v_in, label=label, rng=rng)
        return OpResult(
            kind=raw.kind,
            label=raw.label,
            output=raw.output - correction,
            ideal_output=raw.ideal_output,
            settling_time_s=raw.settling_time_s,
            saturated=raw.saturated,
            rows=raw.rows,
            cols=raw.cols,
            opa_count=raw.opa_count,
            device_count=raw.device_count,
        )

    def inv(
        self,
        array: CrossbarArray,
        v_in: np.ndarray,
        label: str = "inv",
        input_scale: float = 1.0,
        rng=None,
    ) -> OpResult:
        """Offset-calibrated INV (same contract as ``AMCOperations.inv``)."""
        rng = as_generator(rng)
        correction = self._zero_response(array, "inv", input_scale, rng)
        raw = self.ops.inv(array, v_in, label=label, input_scale=input_scale, rng=rng)
        return OpResult(
            kind=raw.kind,
            label=raw.label,
            output=raw.output - correction,
            ideal_output=raw.ideal_output,
            settling_time_s=raw.settling_time_s,
            saturated=raw.saturated,
            rows=raw.rows,
            cols=raw.cols,
            opa_count=raw.opa_count,
            device_count=raw.device_count,
        )
