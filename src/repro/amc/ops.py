"""The two AMC primitives: one-step MVM and one-step INV.

Both primitives reduce, at DC, to linear-algebra on the *effective*
operator the crossbar implements (programmed conductances corrected by
the interconnect model). Deriving the finite-gain equations from KCL at
the op-amp summing nodes (single-pole op-amp, inverting input at
``v = -v_out / A0``):

**MVM** (Fig. 1a, feedback conductance ``G0``)::

    v_out_i = (-(M v_in)_i + (1 + L_i) vos_i) / (1 + (1 + L_i) / A0)

**INV** (Fig. 1b, input conductance ``G0 * s`` with input scale ``s``)::

    (M + D / A0) v_out = -s * v_in + (s + L) * vos,   D = diag(s + L_i)

where ``M`` is the normalized effective matrix, ``L_i`` the total
normalized conductance loading row ``i`` (both arrays of the pair load the
node regardless of sign), ``A0`` the open-loop gain, and ``vos_i`` the
random input-referred offset of amplifier ``i`` (multiplied by its noise
gain ``1 + L_i`` — the term that makes accuracy degrade with array size
even under ideal mapping). As ``A0 -> inf`` and ``vos -> 0`` these
collapse to the paper's ideal relations ``v_out = -M v_in`` and
``v_out = -M^-1 v_in``.

The ``input scale`` deserves a note: when a block (typically the Schur
complement) needs its own normalization ``s < 1`` to fit the conductance
window, the INV input conductance is scaled by the same factor
(``G0 -> s * G0``), which cancels the array scale *inside the analog
domain* — no digital fix-up of cascaded intermediates is needed.

Every call returns an :class:`OpResult` carrying the actual and ideal
outputs (for the paper's scatter plots), the settling time, and resource
counts for the cost model. With ``HardwareConfig.use_mna`` the same
operations are routed through full MNA netlists
(:mod:`repro.circuits.generators`) instead of the algebraic model; tests
verify the two paths agree.

The algebraic physics itself lives in :mod:`repro.core.common` — the
shared shape-generic kernel also driving the trial-batched and
multi-RHS engines — so this module only owns the scalar call shape:
per-operation telemetry, quasi-static offset caching, output noise, and
the MNA routing.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.circuits.dynamics import (
    inv_eigenvalue_margin,
    inv_settling_time,
    mvm_settling_time,
)
from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.mna import assemble_mna
from repro.core.common import (
    draw_offsets,
    ideal_inv,
    ideal_mvm,
    inv_raw,
    mvm_raw,
    saturate,
)
from repro.crossbar.array import CrossbarArray
from repro.errors import SolverError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_vector


@dataclass(frozen=True)
class OpResult:
    """Telemetry of one analog operation.

    Attributes
    ----------
    kind:
        ``"mvm"`` or ``"inv"``.
    label:
        Free-form tag (e.g. ``"step1:INV(A1)"``) used by reports.
    output:
        Actual circuit output voltages (includes the hardware minus sign).
    ideal_output:
        What a perfect circuit would have produced for the same input
        (also carries the minus sign) — the paper's "numerical" reference
        for the per-step scatter plots of Fig. 6(a).
    settling_time_s:
        First-order settling-time estimate for this operation.
    saturated:
        True when any output clipped at the op-amp saturation voltage.
    rows, cols:
        Array dimensions used.
    opa_count:
        Op-amps engaged by the operation.
    device_count:
        RRAM cells engaged (both arrays of the pair).
    """

    kind: str
    label: str
    output: np.ndarray
    ideal_output: np.ndarray
    settling_time_s: float
    saturated: bool
    rows: int
    cols: int
    opa_count: int
    device_count: int

    @property
    def error_vector(self) -> np.ndarray:
        """Element-wise deviation of the actual output from ideal."""
        return self.output - self.ideal_output


class AMCOperations:
    """Executes MVM/INV primitives under one :class:`HardwareConfig`.

    One instance models one physical op-amp column: input offsets are
    drawn once per column size on first use and then held fixed (real
    offsets are quasi-static device mismatch), so the five steps of a
    macro — which share the column through the transmission gates — see
    the *same* offsets. Output noise, by contrast, is fresh per
    operation.
    """

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig.ideal()
        self._offsets_by_rows: dict[int, np.ndarray] = {}
        # Assembled (stamped + factorizable) MNA systems per array. Input
        # voltages enter MNA purely through the RHS, so one assembly and
        # one LU factorization serve every operation on the same array —
        # the five-step schedule (and its gain-ranging reruns) factor each
        # array's circuit once per programming, not once per op.
        self._assembled: "weakref.WeakKeyDictionary[CrossbarArray, dict]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _ideal_matrix(self, array: CrossbarArray) -> np.ndarray:
        """Normalized matrix a perfect array would implement."""
        if array.target is not None:
            return array.target.reconstruct_normalized()
        return (np.asarray(array.g_pos) - np.asarray(array.g_neg)) / array.g_unit

    def _saturate(self, v_out: np.ndarray) -> tuple[np.ndarray, bool]:
        clipped, saturated = saturate(v_out, self.config.opamp.v_sat)
        return clipped, bool(saturated)

    def _draw_offsets(self, rows: int, rng) -> np.ndarray | None:
        """Input-referred offsets of the shared op-amp column.

        Drawn once per column size and cached: offsets are device
        mismatch, fixed for the life of the hardware (until re-drawn by
        a new :class:`AMCOperations`, i.e. a new physical instance).
        """
        sigma = self.config.opamp.input_offset_sigma_v
        if sigma == 0.0:
            return None
        cached = self._offsets_by_rows.get(rows)
        if cached is None:
            cached = draw_offsets(sigma, rows, rng)
            self._offsets_by_rows[rows] = cached
        return cached

    def _add_output_noise(self, raw: np.ndarray, rng) -> np.ndarray:
        """Per-operation output-referred noise (fresh sample each op).

        Draws are always float64 (identical generator stream across
        precision tiers); the sum is cast back to the operating dtype.
        """
        sigma = self.config.opamp.output_noise_sigma_v
        if sigma == 0.0:
            return raw
        noisy = raw + as_generator(rng).normal(0.0, sigma, size=raw.shape)
        return noisy.astype(raw.dtype, copy=False)

    # ------------------------------------------------------------------
    # MVM
    # ------------------------------------------------------------------
    def mvm(
        self,
        array: CrossbarArray,
        v_in: np.ndarray,
        label: str = "mvm",
        rng=None,
    ) -> OpResult:
        """One-step analog MVM: ``v_out ~ -(M v_in)``.

        Parameters
        ----------
        array:
            Programmed crossbar pair implementing the matrix.
        v_in:
            BL drive voltages (one per column).
        label:
            Telemetry tag.
        rng:
            Seed or generator driving the op-amp offset draw.
        """
        rows, cols = array.shape
        v_in = check_vector(v_in, "v_in", size=cols)

        ideal = ideal_mvm(self._ideal_matrix(array), v_in)
        offsets = self._draw_offsets(rows, rng)

        if self.config.use_mna:
            # MNA routing always solves the netlist at float64.
            raw = self._mvm_mna(array, v_in, offsets)
        else:
            bk = self.config.resolve_backend()
            raw = mvm_raw(
                bk.cast(array.effective_matrix(self.config.parasitics)),
                bk.cast(array.load_row_sums()),
                bk.cast(v_in),
                bk.cast(offsets),
                self.config.opamp.open_loop_gain,
            )

        raw = self._add_output_noise(raw, rng)
        output, saturated = self._saturate(raw)
        g_total = np.asarray(array.g_pos) + np.asarray(array.g_neg)
        settle = mvm_settling_time(g_total, array.g_unit, self.config.opamp.gbwp_hz)
        return OpResult(
            kind="mvm",
            label=label,
            output=output,
            ideal_output=ideal,
            settling_time_s=settle,
            saturated=saturated,
            rows=rows,
            cols=cols,
            opa_count=rows,
            device_count=array.device_count,
        )

    def _cached_assembly(self, array: CrossbarArray, key: tuple, build):
        """Assembled MNA system for ``array``, built at most once per key."""
        per_array = self._assembled.get(array)
        if per_array is None:
            per_array = {}
            self._assembled[array] = per_array
        entry = per_array.get(key)
        if entry is None:
            circuit, outputs = build()
            entry = (assemble_mna(circuit), outputs)
            per_array[key] = entry
        return entry

    def _mvm_mna(
        self, array: CrossbarArray, v_in: np.ndarray, offsets: np.ndarray | None
    ) -> np.ndarray:
        gain = self.config.opamp.open_loop_gain

        def build():
            return build_mvm_circuit(
                array.g_pos,
                array.g_neg,
                np.zeros_like(v_in),
                g_feedback=array.g_unit,
                r_wire=self.config.parasitics.r_wire
                if not self.config.parasitics.is_ideal
                else 0.0,
                opamp_gain=None if math.isinf(gain) else gain,
                offsets=offsets,
                columnar=True,
            )

        assembled, outputs = self._cached_assembly(array, ("mvm", id(offsets)), build)
        overrides: dict[str, float] = {}
        for j, v in enumerate(v_in):
            overrides[f"Vp_{j}"] = float(v)
            overrides[f"Vn_{j}"] = float(-v)
        return assembled.solve(overrides).voltages(outputs)

    # ------------------------------------------------------------------
    # INV
    # ------------------------------------------------------------------
    def inv(
        self,
        array: CrossbarArray,
        v_in: np.ndarray,
        label: str = "inv",
        input_scale: float = 1.0,
        rng=None,
    ) -> OpResult:
        """One-step analog linear-system solution: ``v_out ~ -(M^-1 v_in)``.

        Parameters
        ----------
        array:
            Programmed square crossbar pair.
        v_in:
            Input voltages conveyed through the input conductances.
        label:
            Telemetry tag.
        input_scale:
            Ratio ``g_input / G0``; used to cancel a block's private array
            scale in-analog (see module docstring).
        rng:
            Seed or generator driving the op-amp offset draw.
        """
        rows, cols = array.shape
        if rows != cols:
            raise SolverError(f"INV requires a square array, got {array.shape}")
        v_in = check_vector(v_in, "v_in", size=rows)
        check_positive(input_scale, "input_scale")

        ideal = ideal_inv(self._ideal_matrix(array), v_in, input_scale)

        offsets = self._draw_offsets(rows, rng)
        effective = array.effective_matrix(self.config.parasitics)
        if self.config.use_mna:
            # MNA routing always solves the netlist at float64.
            raw = self._inv_mna(array, v_in, input_scale, offsets)
        else:
            bk = self.config.resolve_backend()
            raw = inv_raw(
                bk.cast(effective),
                bk.cast(array.load_row_sums()),
                bk.cast(v_in),
                bk.cast(offsets),
                input_scale,
                self.config.opamp.open_loop_gain,
            )

        raw = self._add_output_noise(raw, rng)
        output, saturated = self._saturate(raw)
        settle = self._inv_settle(effective)
        return OpResult(
            kind="inv",
            label=label,
            output=output,
            ideal_output=ideal,
            settling_time_s=settle,
            saturated=saturated,
            rows=rows,
            cols=cols,
            opa_count=rows,
            device_count=array.device_count,
        )

    def _inv_settle(self, effective: np.ndarray) -> float:
        """Settling estimate; unstable circuits report infinite time.

        The eigenvalue margin is computed once and shared between the
        stability check and the settling formula (one ``eigvals`` call
        per operation, not two).
        """
        margin = inv_eigenvalue_margin(effective)
        if margin <= 0.0:
            return math.inf
        return inv_settling_time(effective, self.config.opamp.gbwp_hz, margin=margin)

    def _inv_mna(
        self,
        array: CrossbarArray,
        v_in: np.ndarray,
        input_scale: float,
        offsets: np.ndarray | None,
    ) -> np.ndarray:
        gain = self.config.opamp.open_loop_gain

        def build():
            return build_inv_circuit(
                array.g_pos,
                array.g_neg,
                np.zeros_like(v_in),
                g_input=input_scale * array.g_unit,
                r_wire=self.config.parasitics.r_wire
                if not self.config.parasitics.is_ideal
                else 0.0,
                opamp_gain=None if math.isinf(gain) else gain,
                offsets=offsets,
                columnar=True,
            )

        assembled, outputs = self._cached_assembly(
            array, ("inv", float(input_scale), id(offsets)), build
        )
        overrides = {f"Vin_{i}": float(v) for i, v in enumerate(v_in)}
        return assembled.solve(overrides).voltages(outputs)
