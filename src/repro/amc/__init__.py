"""Analog matrix computing primitives.

Builds the paper's two AMC primitives — one-step MVM and one-step INV —
on top of the crossbar and circuit substrates, together with the mixed-
signal periphery (DAC, ADC, sample-and-hold) and the reconfigurable
BlockAMC macro (shared op-amps, transmission-gate phases, pipelining).
"""

from repro.amc.calibration import CalibratedOperations
from repro.amc.config import (
    ConverterConfig,
    HardwareConfig,
    OpAmpConfig,
    SampleHoldConfig,
)
from repro.amc.interfaces import ADC, DAC, SampleHold
from repro.amc.macro import BlockAMCMacro, MacroArrays
from repro.amc.ops import AMCOperations, OpResult
from repro.amc.scheduler import ClockController, PhaseSchedule, simulate_schedule

__all__ = [
    "ADC",
    "AMCOperations",
    "BlockAMCMacro",
    "CalibratedOperations",
    "ClockController",
    "ConverterConfig",
    "DAC",
    "HardwareConfig",
    "MacroArrays",
    "OpAmpConfig",
    "OpResult",
    "PhaseSchedule",
    "SampleHold",
    "SampleHoldConfig",
    "simulate_schedule",
]
