"""Mixed-signal interface models: DAC, ADC, and sample-and-hold.

The BlockAMC system receives the known vector through a DAC, conveys
analog intermediates through S&H banks, and returns solutions through an
ADC (paper Fig. 3/4). All three are modelled as memoryless element-wise
transforms on voltage vectors.
"""

from __future__ import annotations

import numpy as np

from repro.amc.config import ConverterConfig, SampleHoldConfig
from repro.utils.rng import as_generator
from repro.utils.validation import check_vector


def quantize_voltages(voltages: np.ndarray, bits: int | None, v_fs: float) -> np.ndarray:
    """Uniform mid-tread quantizer over ``[-v_fs, +v_fs]``.

    ``bits=None`` is transparent (ideal converter). Values outside the
    full-scale range clip, as a real converter would. Shape-generic: the
    single converter model behind :class:`DAC`/:class:`ADC` and the
    batched solve engines (``core.batched``, ``PreparedBlockAMC.solve_many``).
    """
    if bits is None:
        return voltages.copy()
    lsb = 2.0 * v_fs / (2**bits)
    clipped = np.clip(voltages, -v_fs, v_fs)
    return np.clip(np.round(clipped / lsb) * lsb, -v_fs, v_fs)


#: Backwards-compatible private alias (pre-existing internal call sites).
_quantize = quantize_voltages


class DAC:
    """Digital-to-analog converter bank (one channel per vector element)."""

    def __init__(self, config: ConverterConfig):
        self.config = config

    def convert(self, digital: np.ndarray) -> np.ndarray:
        """Produce analog voltages from (ideal) digital values.

        Values beyond full scale saturate; finite resolution rounds to the
        nearest LSB.
        """
        digital = check_vector(digital, "digital", preserve_dtype=True)
        return _quantize(digital, self.config.dac_bits, self.config.v_fs)


class ADC:
    """Analog-to-digital converter bank (one channel per vector element)."""

    def __init__(self, config: ConverterConfig):
        self.config = config

    def convert(self, analog: np.ndarray) -> np.ndarray:
        """Digitize analog voltages (clip to full scale, round to LSB)."""
        analog = check_vector(analog, "analog", preserve_dtype=True)
        return _quantize(analog, self.config.adc_bits, self.config.v_fs)


class SampleHold:
    """Sample-and-hold buffer bank.

    Applies the configured gain error and, when enabled, additive sampled
    noise. Two instances per macro implement the double buffering that
    lets the paper pipeline cascaded operations.
    """

    def __init__(self, config: SampleHoldConfig):
        self.config = config

    def transfer(self, voltages: np.ndarray, rng=None) -> np.ndarray:
        """Sample ``voltages`` and return the held values."""
        voltages = check_vector(voltages, "voltages", preserve_dtype=True)
        held = voltages * (1.0 + self.config.gain_error)
        if self.config.noise_sigma_v > 0.0:
            rng = as_generator(rng)
            held = held + rng.normal(0.0, self.config.noise_sigma_v, size=held.shape)
        return held
