"""Clock controller and pipelining model of the BlockAMC macro.

The macro (paper Fig. 4) runs the five-step algorithm as five clock
phases, each closing one set of transmission gates to connect the shared
op-amp column to one of the four arrays in either MVM or INV topology:

    S0: INV  A1      S1: MVM  A3      S2: INV  A4s
    S3: MVM  A2      S4: INV  A1

:class:`ClockController` produces the gate control words per phase (the
paper's Fig. 4b, modelled at the functional level). :func:`simulate_schedule`
is a small discrete-event simulation of the dataflow across three
resources — the shared op-amp bank, the DAC, and the ADC — that
quantifies the throughput gain of the double-buffered S&H pipelining the
paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError

#: Canonical phase program of the one-stage BlockAMC macro.
PHASE_PROGRAM: tuple[tuple[str, str, str], ...] = (
    ("S0", "inv", "A1"),
    ("S1", "mvm", "A3"),
    ("S2", "inv", "A4s"),
    ("S3", "mvm", "A2"),
    ("S4", "inv", "A1"),
)

#: Arrays a macro hosts, in gate-bus order.
MACRO_ARRAYS = ("A1", "A2", "A3", "A4s")


@dataclass(frozen=True)
class PhaseSchedule:
    """One phase of the macro program."""

    name: str
    kind: str  # "mvm" | "inv"
    array: str

    def __post_init__(self):
        if self.kind not in ("mvm", "inv"):
            raise ScheduleError(f"phase kind must be 'mvm' or 'inv', got {self.kind!r}")
        if self.array not in MACRO_ARRAYS:
            raise ScheduleError(f"unknown array {self.array!r}; expected one of {MACRO_ARRAYS}")


def default_program() -> tuple[PhaseSchedule, ...]:
    """The paper's five-phase program as :class:`PhaseSchedule` objects."""
    return tuple(PhaseSchedule(*entry) for entry in PHASE_PROGRAM)


class ClockController:
    """Functional model of the macro's transmission-gate controller.

    Each (array, mode) pair owns one gate group; in every phase exactly
    one group is on. :meth:`gate_word` returns the boolean control word
    for a phase, ordered as ``[(array, mode) for array in MACRO_ARRAYS
    for mode in ("mvm", "inv")]``.
    """

    def __init__(self, program: tuple[PhaseSchedule, ...] | None = None):
        self.program = default_program() if program is None else tuple(program)
        self._groups = [(array, mode) for array in MACRO_ARRAYS for mode in ("mvm", "inv")]

    @property
    def gate_groups(self) -> list[tuple[str, str]]:
        """All (array, mode) gate groups of the macro."""
        return list(self._groups)

    def phase(self, index: int) -> PhaseSchedule:
        """The phase executed at clock cycle ``index`` (modulo the program)."""
        if not self.program:
            raise ScheduleError("controller has an empty program")
        return self.program[index % len(self.program)]

    def gate_word(self, index: int) -> tuple[bool, ...]:
        """Boolean control word for clock cycle ``index``.

        Exactly one entry is True (one gate group conducts per cycle) —
        the invariant the hardware controller of Fig. 4(b) guarantees.
        """
        active = self.phase(index)
        return tuple(
            (array == active.array and mode == active.kind) for array, mode in self._groups
        )


@dataclass(frozen=True)
class ScheduleEvent:
    """One resource occupation interval in the dataflow simulation."""

    problem: int
    stage: str
    resource: str  # "dac" | "opa" | "adc"
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Event length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of :func:`simulate_schedule`."""

    events: tuple[ScheduleEvent, ...]
    makespan: float
    latency_first: float
    pipelined: bool

    @property
    def throughput(self) -> float:
        """Solved problems per second at the simulated batch size."""
        problems = len({e.problem for e in self.events})
        if self.makespan == 0.0:
            return float("inf")
        return problems / self.makespan


def simulate_schedule(
    op_times: list[float],
    *,
    t_dac: float,
    t_adc: float,
    t_snh: float,
    n_problems: int = 1,
    pipelined: bool = True,
) -> ScheduleResult:
    """Simulate the macro dataflow for a batch of independent problems.

    Every problem runs the op sequence ``op_times`` (five entries for the
    standard program) on the shared op-amp bank, with an S&H transfer
    between consecutive ops, a DAC conversion before its first op, and an
    ADC conversion after its last op.

    With ``pipelined=True`` the DAC and ADC are independent resources, so
    problem ``p+1``'s input conversion and problem ``p``'s output
    conversion overlap analog computation — the benefit of the two S&H
    banks. With ``pipelined=False`` every step serializes onto a single
    timeline (single-buffered system).

    Parameters
    ----------
    op_times:
        Settling time of each analog op (seconds).
    t_dac, t_adc:
        Conversion time of a full vector (seconds).
    t_snh:
        Sample-and-hold transfer time between cascaded ops.
    n_problems:
        Batch size.
    pipelined:
        Enable double-buffered S&H pipelining.
    """
    if not op_times:
        raise ScheduleError("op_times must not be empty")
    if any(t < 0 for t in op_times) or min(t_dac, t_adc, t_snh) < 0:
        raise ScheduleError("times must be non-negative")
    if n_problems < 1:
        raise ScheduleError(f"n_problems must be >= 1, got {n_problems}")

    events: list[ScheduleEvent] = []
    free = {"dac": 0.0, "opa": 0.0, "adc": 0.0}
    latency_first = 0.0

    serial_cursor = 0.0
    for problem in range(n_problems):
        if pipelined:
            dac_start = free["dac"]
            dac_end = dac_start + t_dac
            free["dac"] = dac_end
            events.append(ScheduleEvent(problem, "dac", "dac", dac_start, dac_end))

            ready = dac_end
            for index, duration in enumerate(op_times):
                start = max(ready, free["opa"])
                end = start + duration
                free["opa"] = end
                events.append(ScheduleEvent(problem, f"op{index}", "opa", start, end))
                ready = end + t_snh

            adc_start = max(ready - t_snh, free["adc"])
            adc_end = adc_start + t_adc
            free["adc"] = adc_end
            events.append(ScheduleEvent(problem, "adc", "adc", adc_start, adc_end))
            finish = adc_end
        else:
            start = serial_cursor
            events.append(ScheduleEvent(problem, "dac", "dac", start, start + t_dac))
            cursor = start + t_dac
            for index, duration in enumerate(op_times):
                events.append(ScheduleEvent(problem, f"op{index}", "opa", cursor, cursor + duration))
                cursor += duration + t_snh
            cursor -= t_snh
            events.append(ScheduleEvent(problem, "adc", "adc", cursor, cursor + t_adc))
            cursor += t_adc
            serial_cursor = cursor
            finish = cursor

        if problem == 0:
            latency_first = finish

    makespan = max(e.end for e in events)
    return ScheduleResult(
        events=tuple(events),
        makespan=makespan,
        latency_first=latency_first,
        pipelined=pipelined,
    )
