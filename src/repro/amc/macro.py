"""The reconfigurable BlockAMC macro.

A :class:`BlockAMCMacro` owns the four crossbar arrays of one partition
level (``A1``, ``A2``, ``A3``, ``A4s``), one shared op-amp column, the
DAC/ADC interfaces, and two S&H banks. :meth:`BlockAMCMacro.solve` runs
the paper's five-step schedule in the analog voltage domain, cascading
intermediates through the S&H banks exactly as Fig. 4 describes:

    step 1  INV(A1,  f)          -> -y_t        (S&H)
    step 2  MVM(A3, -y_t)        ->  g_t        (S&H)
    step 3  INV(A4s, g_t - g)    ->  z          (ADC: bottom half)
    step 4  MVM(A2,  z)          -> -f_t        (S&H)
    step 5  INV(A1,  f - f_t)    -> -y          (ADC: upper half, negated)

Inputs ``f`` and ``g`` arrive through the DAC; only the step-3 and step-5
outputs leave through the ADC. All sign bookkeeping follows the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import ADC, DAC, SampleHold
from repro.amc.ops import AMCOperations, OpResult
from repro.amc.scheduler import default_program
from repro.core.common import contract, solve_columns
from repro.crossbar.array import CrossbarArray
from repro.errors import SolverError
from repro.utils.rng import as_generator
from repro.utils.validation import check_vector


@dataclass(frozen=True)
class MacroArrays:
    """The four programmed arrays of one partition level.

    ``schur_input_scale`` is ``g_input / G0`` of the ``A4s`` INV stage; it
    cancels the Schur complement's private normalization in-analog (see
    :mod:`repro.amc.ops`).
    """

    a1: CrossbarArray
    a2: CrossbarArray
    a3: CrossbarArray
    a4s: CrossbarArray
    schur_input_scale: float = 1.0

    def __post_init__(self):
        k = self.a1.shape[0]
        m = self.a4s.shape[0]
        if self.a1.shape != (k, k):
            raise SolverError(f"A1 must be square, got {self.a1.shape}")
        if self.a4s.shape != (m, m):
            raise SolverError(f"A4s must be square, got {self.a4s.shape}")
        if self.a2.shape != (k, m):
            raise SolverError(f"A2 must be {k}x{m}, got {self.a2.shape}")
        if self.a3.shape != (m, k):
            raise SolverError(f"A3 must be {m}x{k}, got {self.a3.shape}")
        if self.schur_input_scale <= 0.0:
            raise SolverError(f"schur_input_scale must be > 0, got {self.schur_input_scale}")

    @property
    def upper_size(self) -> int:
        """Rows of the leading block (length of ``f``)."""
        return self.a1.shape[0]

    @property
    def lower_size(self) -> int:
        """Rows of the trailing block (length of ``g``)."""
        return self.a4s.shape[0]

    @property
    def size(self) -> int:
        """Size of the original system this level solves."""
        return self.upper_size + self.lower_size

    @property
    def device_count(self) -> int:
        """Total RRAM cells across the four array pairs."""
        return (
            self.a1.device_count
            + self.a2.device_count
            + self.a3.device_count
            + self.a4s.device_count
        )


@dataclass(frozen=True)
class MacroResult:
    """Outcome of one macro execution.

    ``x_upper`` / ``x_lower`` are the digital solution halves (ADC
    output, sign-corrected). ``steps`` holds per-operation telemetry;
    ``reference_steps`` holds the exact-arithmetic value of each step's
    output (the paper's "numerical" curves of Fig. 6a), computed from the
    pre-DAC inputs.
    """

    x_upper: np.ndarray
    x_lower: np.ndarray
    steps: tuple[OpResult, ...]
    reference_steps: dict[str, np.ndarray]

    @property
    def solution(self) -> np.ndarray:
        """Concatenated solution vector."""
        return np.concatenate([self.x_upper, self.x_lower])

    @property
    def analog_time_s(self) -> float:
        """Sum of all analog settling times (serial schedule)."""
        return float(sum(step.settling_time_s for step in self.steps))

    @property
    def saturated(self) -> bool:
        """True when any step clipped at the op-amp rails."""
        return any(step.saturated for step in self.steps)


def reference_schedule(
    a1: np.ndarray,
    a2: np.ndarray,
    a3: np.ndarray,
    a4s_normalized: np.ndarray,
    f: np.ndarray,
    g: np.ndarray,
) -> dict[str, np.ndarray]:
    """Exact-arithmetic outputs of the five-step schedule (Fig. 6a).

    Shape-generic over the kernel conventions: ``f``/``g`` may be single
    vectors or row-stacked ``(rhs, n)`` batches, and the batch results
    are bit-identical per row to the scalar calls (solves go one column
    at a time through :func:`repro.core.common.solve_columns`,
    contractions through :func:`repro.core.common.contract`).
    ``a4s_normalized`` is the Schur block *after* undoing its private
    array scale (``A4s / schur_input_scale``).
    """
    y_t = solve_columns(a1, f, what="A1 block")
    g_t = contract(a3, y_t)
    z = solve_columns(a4s_normalized, g - g_t, what="Schur block")
    f_t = contract(a2, z)
    y = solve_columns(a1, f - f_t, what="A1 block")
    return {
        "step1": -y_t,
        "step2": g_t,
        "step3": z,
        "step4": -f_t,
        "step5": -y,
    }


class BlockAMCMacro:
    """One-stage BlockAMC macro: four arrays sharing one op-amp column."""

    def __init__(self, arrays: MacroArrays, config: HardwareConfig | None = None):
        self.arrays = arrays
        self.config = config or HardwareConfig.ideal()
        self.ops = AMCOperations(self.config)
        self.dac = DAC(self.config.converters)
        self.adc = ADC(self.config.converters)
        self.snh_out = SampleHold(self.config.sample_hold)
        self.snh_in = SampleHold(self.config.sample_hold)
        self.program = default_program()

    # ------------------------------------------------------------------
    # resource inventory (for the cost model)
    # ------------------------------------------------------------------
    @property
    def opa_count(self) -> int:
        """Shared op-amp column size: the largest block row count."""
        return max(self.arrays.upper_size, self.arrays.lower_size)

    @property
    def dac_count(self) -> int:
        """DAC channels: inputs are at most the larger block's length."""
        return self.opa_count

    @property
    def adc_count(self) -> int:
        """ADC channels: outputs are at most the larger block's length."""
        return self.opa_count

    @property
    def device_count(self) -> int:
        """RRAM cells across all arrays."""
        return self.arrays.device_count

    # ------------------------------------------------------------------
    # exact-arithmetic reference of every step (Fig. 6a "numerical")
    # ------------------------------------------------------------------
    def reference_steps(self, f: np.ndarray, g: np.ndarray) -> dict[str, np.ndarray]:
        """Exact step outputs for inputs ``f``, ``g`` (with circuit signs)."""
        return reference_schedule(
            self.arrays.a1.target.reconstruct_normalized(),
            self.arrays.a2.target.reconstruct_normalized(),
            self.arrays.a3.target.reconstruct_normalized(),
            self.arrays.a4s.target.reconstruct_normalized()
            / self.arrays.schur_input_scale,
            f,
            g,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def solve(self, f: np.ndarray, g: np.ndarray, rng=None) -> MacroResult:
        """Run the five-step BlockAMC schedule for inputs ``f`` and ``g``.

        ``f`` and ``g`` are the upper/lower halves of the known vector in
        the analog voltage domain (the caller scales the digital ``b``
        into DAC full scale). Returns the digital solution halves plus
        full telemetry.
        """
        f = check_vector(f, "f", size=self.arrays.upper_size)
        g = check_vector(g, "g", size=self.arrays.lower_size)
        rng = as_generator(rng)

        reference = self.reference_steps(f, g)

        # DAC outputs enter the analog voltage domain: cast to the
        # backend tier (identity on float64) so in-analog sums like
        # ``h2 - v_g`` happen at the tier's precision, exactly like the
        # batched engines.
        cast = self.config.resolve_backend().cast
        v_f = cast(self.dac.convert(f))
        v_g = cast(self.dac.convert(g))

        # Step 1: INV with A1 and f -> -y_t.
        s1 = self.ops.inv(self.arrays.a1, v_f, label="step1:INV(A1)", rng=rng)
        h1 = self.snh_in.transfer(self.snh_out.transfer(s1.output, rng), rng)

        # Step 2: MVM with A3 and -y_t -> g_t (the minus sign is removed
        # by the MVM circuit's own inversion).
        s2 = self.ops.mvm(self.arrays.a3, h1, label="step2:MVM(A3)", rng=rng)
        h2 = self.snh_in.transfer(self.snh_out.transfer(s2.output, rng), rng)

        # Step 3: INV with A4s and (g_t - g); the summation of -g (DAC)
        # and g_t (S&H) happens at the INV input conductances.
        s3 = self.ops.inv(
            self.arrays.a4s,
            h2 - v_g,
            label="step3:INV(A4s)",
            input_scale=self.arrays.schur_input_scale,
            rng=rng,
        )
        h3 = self.snh_in.transfer(self.snh_out.transfer(s3.output, rng), rng)

        # Step 4: MVM with A2 and z -> -f_t.
        s4 = self.ops.mvm(self.arrays.a2, h3, label="step4:MVM(A2)", rng=rng)
        h4 = self.snh_in.transfer(self.snh_out.transfer(s4.output, rng), rng)

        # Step 5: INV with A1 and (f - f_t) -> -y.
        s5 = self.ops.inv(self.arrays.a1, v_f + h4, label="step5:INV(A1)", rng=rng)

        x_lower = self.adc.convert(s3.output)
        x_upper = -self.adc.convert(s5.output)

        return MacroResult(
            x_upper=x_upper,
            x_lower=x_lower,
            steps=(s1, s2, s3, s4, s5),
            reference_steps=reference,
        )
