"""Hardware configuration bundles.

A :class:`HardwareConfig` fully describes one simulated AMC deployment:
op-amp non-idealities, data-converter resolutions, sample-and-hold
behaviour, the device programming pipeline, and the interconnect model.
Factory methods reproduce the configurations used by the paper's
experiments so benches read like the evaluation section:

- :meth:`HardwareConfig.ideal` — everything perfect (sanity baseline);
- :meth:`HardwareConfig.paper_ideal_mapping` — Fig. 6: perfect
  programming but realistic finite-gain op-amps and converters;
- :meth:`HardwareConfig.paper_variation` — Figs. 7/8: plus Gaussian
  conductance variation, sigma = 0.05 * G0;
- :meth:`HardwareConfig.paper_interconnect` — Fig. 9: plus 1 ohm/segment
  wire resistance.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, fields, is_dataclass, replace

from repro.core.backend import ArrayBackend, get_backend
from repro.crossbar.array import ProgrammingConfig
from repro.crossbar.parasitics import ParasiticConfig
from repro.devices.models import PAPER_G0_SIEMENS
from repro.devices.variations import RelativeGaussianVariation
from repro.utils.validation import check_positive


def _content_signature(value):
    """Canonical, hashable signature of a configuration value.

    Dataclasses flatten field by field; objects exposing ``signature()``
    (the variation models) delegate to it; scalars pass through. The
    fallback is ``repr`` so exotic values still produce *some* stable
    key rather than failing — at worst two configs that repr identically
    share a key, which for frozen config objects means they are equal.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, _content_signature(getattr(value, f.name))) for f in fields(value)),
        )
    if hasattr(value, "signature") and callable(value.signature):
        return value.signature()
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    return repr(value)


@dataclass(frozen=True)
class OpAmpConfig:
    """Operational amplifier model.

    Parameters
    ----------
    open_loop_gain:
        DC open-loop gain ``A0`` (``math.inf`` for an ideal op-amp). The
        default 10^4 (80 dB) is typical of wide-band CMOS OPAs at 45 nm.
    gbwp_hz:
        Gain-bandwidth product (hertz), sets settling time.
    v_sat:
        Output saturation (volts); outputs clip to ``+-v_sat``.
        ``math.inf`` disables clipping.
    input_offset_sigma_v:
        Standard deviation of the random input-referred offset voltage
        (volts). The offset error is multiplied by the amplifier's noise
        gain — one plus the total conductance loading its summing node —
        so it grows with array size, which is the dominant reason the
        paper's *ideal-mapping* accuracy (Fig. 6c) still degrades with
        size and improves under partitioning.
    output_noise_sigma_v:
        Standard deviation of additive output-referred noise per
        operation (volts) — integrated thermal/amplifier noise over the
        settling window. Zero by default (the paper's analysis is
        noise-free); sampled fresh on every operation, unlike offsets
        which are fixed per amplifier.
    supply_voltage:
        Supply ``Vs`` for the power estimate of the paper's Eq. 7.
    quiescent_current:
        Quiescent current ``Iq`` per op-amp (amps), Eq. 7.
    """

    open_loop_gain: float = 1e4
    gbwp_hz: float = 100e6
    v_sat: float = math.inf
    input_offset_sigma_v: float = 0.25e-3
    output_noise_sigma_v: float = 0.0
    supply_voltage: float = 1.2
    quiescent_current: float = 11e-6

    def __post_init__(self):
        check_positive(self.open_loop_gain, "open_loop_gain", allow_inf=True)
        check_positive(self.gbwp_hz, "gbwp_hz")
        check_positive(self.v_sat, "v_sat", allow_inf=True)
        if self.input_offset_sigma_v < 0.0:
            raise ValueError(
                f"input_offset_sigma_v must be >= 0, got {self.input_offset_sigma_v}"
            )
        if self.output_noise_sigma_v < 0.0:
            raise ValueError(
                f"output_noise_sigma_v must be >= 0, got {self.output_noise_sigma_v}"
            )
        check_positive(self.supply_voltage, "supply_voltage")
        check_positive(self.quiescent_current, "quiescent_current")

    @property
    def is_ideal(self) -> bool:
        """True when gain is infinite with no clipping, offset, or noise."""
        return (
            math.isinf(self.open_loop_gain)
            and math.isinf(self.v_sat)
            and self.input_offset_sigma_v == 0.0
            and self.output_noise_sigma_v == 0.0
        )

    @property
    def static_power(self) -> float:
        """Per-op-amp static power ``Vs * Iq`` (watts), Eq. 7 with N = 1."""
        return self.supply_voltage * self.quiescent_current


@dataclass(frozen=True)
class ConverterConfig:
    """DAC/ADC interface resolutions and full-scale range.

    ``None`` bits model an ideal (transparent) converter. The 12-bit
    default keeps converter quantization (~2.4e-4 of full scale) well
    below the analog error sources the paper studies; the quantization
    ablation bench sweeps this down to 4 bits.
    """

    dac_bits: int | None = 12
    adc_bits: int | None = 12
    v_fs: float = 1.0

    def __post_init__(self):
        check_positive(self.v_fs, "v_fs")
        for label, bits in (("dac_bits", self.dac_bits), ("adc_bits", self.adc_bits)):
            if bits is not None and bits < 1:
                raise ValueError(f"{label} must be >= 1 or None, got {bits}")

    @classmethod
    def ideal(cls) -> "ConverterConfig":
        """Transparent converters."""
        return cls(dac_bits=None, adc_bits=None)


@dataclass(frozen=True)
class SampleHoldConfig:
    """Sample-and-hold buffer model.

    The macro's S&H banks convey analog intermediates between cascaded
    operations; they contribute a (small) gain error and sampled noise.
    """

    gain_error: float = 0.0
    noise_sigma_v: float = 0.0

    def __post_init__(self):
        if abs(self.gain_error) >= 1.0:
            raise ValueError(f"|gain_error| must be < 1, got {self.gain_error}")
        if self.noise_sigma_v < 0.0:
            raise ValueError(f"noise_sigma_v must be >= 0, got {self.noise_sigma_v}")


@dataclass(frozen=True)
class HardwareConfig:
    """Complete description of one simulated AMC hardware deployment."""

    opamp: OpAmpConfig = field(default_factory=OpAmpConfig)
    converters: ConverterConfig = field(default_factory=ConverterConfig)
    sample_hold: SampleHoldConfig = field(default_factory=SampleHoldConfig)
    programming: ProgrammingConfig = field(default_factory=ProgrammingConfig.ideal)
    parasitics: ParasiticConfig = field(default_factory=ParasiticConfig.ideal)
    g_unit: float = PAPER_G0_SIEMENS
    use_mna: bool = False
    """Route operations through the full MNA netlist instead of the fast
    algebraic model (slow; for validation)."""
    backend: str = "numpy"
    """Array backend / precision tier the analog kernel runs at (a name
    registered in :mod:`repro.core.backend`; ``"numpy"`` is the
    byte-identical float64 default, ``"numpy-f32"`` the float32 tier).
    Digital glue — references, Schur preprocessing, MNA routing — always
    runs float64 regardless of tier."""

    def __post_init__(self):
        check_positive(self.g_unit, "g_unit")
        get_backend(self.backend)  # fail fast on unknown/unavailable names

    def resolve_backend(self) -> ArrayBackend:
        """The :class:`~repro.core.backend.ArrayBackend` instance for
        :attr:`backend` (memoized; the config is frozen)."""
        cached = self.__dict__.get("_backend")
        if cached is None:
            cached = get_backend(self.backend)
            object.__setattr__(self, "_backend", cached)
        return cached

    # ------------------------------------------------------------------
    # factory configurations used by the paper's experiments
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "HardwareConfig":
        """Mathematically perfect hardware (solver sanity baseline)."""
        return cls(
            opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=0.0),
            converters=ConverterConfig.ideal(),
        )

    @classmethod
    def paper_ideal_mapping(cls) -> "HardwareConfig":
        """Fig. 6 setup: exact conductances, realistic analog periphery."""
        return cls()

    @classmethod
    def paper_variation(cls, sigma_relative: float = 0.05) -> "HardwareConfig":
        """Figs. 7/8 setup: Gaussian programming variation, sigma = 5%.

        The sigma is relative to each cell's conductance (the reading of
        the paper's "0.05 G0" that reproduces its error magnitudes; see
        :class:`repro.devices.RelativeGaussianVariation`).
        """
        programming = ProgrammingConfig(
            variation=RelativeGaussianVariation(sigma_relative)
        )
        return cls(programming=programming)

    @classmethod
    def paper_interconnect(
        cls,
        sigma_relative: float = 0.05,
        r_wire: float = 1.0,
        fidelity: str = "first_order",
    ) -> "HardwareConfig":
        """Fig. 9 setup: variation plus wire segment resistance."""
        programming = ProgrammingConfig(
            variation=RelativeGaussianVariation(sigma_relative)
        )
        return cls(
            programming=programming,
            parasitics=ParasiticConfig(r_wire=r_wire, fidelity=fidelity),
        )

    def with_(self, **changes) -> "HardwareConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Canonical tuple covering every field, nested configs included."""
        return _content_signature(self)

    def cache_key(self) -> str:
        """Stable content digest of the full configuration.

        Two configs have the same key iff every nested parameter — device
        envelope, variation model, faults, converter resolutions, op-amp
        non-idealities, parasitics, MNA routing — is equal, so prepared
        solvers cached under this key (see
        :class:`repro.serve.PreparedSolverCache`) can never be served to
        a differently-configured request. The digest is stable across
        processes and platforms (it hashes a canonical repr, not object
        identities).

        Memoized per instance: the config is frozen, and the service
        derives a cache key on every submitted request.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            cached = hashlib.sha256(repr(self.signature()).encode()).hexdigest()
            object.__setattr__(self, "_cache_key", cached)
        return cached
