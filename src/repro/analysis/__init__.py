"""Analysis layer: metrics, sweeps, cost/energy models, reporting, export."""

from repro.analysis.accuracy import (
    AccuracyRecord,
    accuracy_quantiles,
    accuracy_sweep,
    run_trials,
    run_trials_batched,
)
from repro.analysis.costmodel import (
    ComponentCosts,
    CostBreakdown,
    SolverCosts,
    savings_vs_original,
    solver_cost_breakdown,
)
from repro.analysis.energymodel import EnergyBreakdown, solve_energy
from repro.analysis.export import records_to_csv, sweep_to_csv
from repro.analysis.metrics import (
    max_abs_error,
    paper_relative_error,
    scatter_points,
)
from repro.analysis.reporting import (
    format_table,
    generate_report,
    markdown_table,
    write_report,
)
from repro.analysis.sensitivity import (
    SensitivityMap,
    inv_sensitivity,
    mvm_sensitivity,
    predicted_variation_error,
)

__all__ = [
    "AccuracyRecord",
    "ComponentCosts",
    "CostBreakdown",
    "EnergyBreakdown",
    "SensitivityMap",
    "SolverCosts",
    "accuracy_quantiles",
    "accuracy_sweep",
    "format_table",
    "generate_report",
    "inv_sensitivity",
    "markdown_table",
    "max_abs_error",
    "mvm_sensitivity",
    "paper_relative_error",
    "predicted_variation_error",
    "records_to_csv",
    "run_trials",
    "run_trials_batched",
    "savings_vs_original",
    "scatter_points",
    "solve_energy",
    "solver_cost_breakdown",
    "sweep_to_csv",
    "write_report",
]
