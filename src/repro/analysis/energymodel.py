"""Per-solve energy accounting.

Combines the operation telemetry (settling times from the dynamics
models) with the calibrated component powers of the Fig. 10 cost model
to estimate the energy of one solve:

    E = sum_ops [ (P_opa * N_opa + P_rram_active) * t_settle ]
        + E_dac * dac_conversions * channels
        + E_adc * adc_conversions * channels

Static OPA power follows the paper's Eq. 7; the RRAM term charges the
array's dissipation only while its operation settles. Conversion
energies derive from the converter powers at a nominal conversion rate.

This goes beyond the paper's static power comparison (Fig. 10b): it
lets benches report energy *per solved system*, where the pipelined
macro's shorter busy time shows up directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.costmodel import ComponentCosts
from repro.core.solution import SolveResult
from repro.errors import CostModelError
from repro.utils.validation import check_positive

#: Nominal conversion time used to turn converter power into energy.
DEFAULT_CONVERSION_TIME_S = 100e-9


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one solve, split by component class (joules)."""

    opa: float
    rram: float
    dac: float
    adc: float

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.opa + self.rram + self.dac + self.adc

    def as_dict(self) -> dict[str, float]:
        """Component map, matching the cost model's component names."""
        return {"OPA": self.opa, "RRAM": self.rram, "DAC": self.dac, "ADC": self.adc}


def solve_energy(
    result: SolveResult,
    costs: ComponentCosts | None = None,
    *,
    conversion_time_s: float = DEFAULT_CONVERSION_TIME_S,
) -> EnergyBreakdown:
    """Estimate the energy of one completed solve from its telemetry.

    Parameters
    ----------
    result:
        A :class:`~repro.core.solution.SolveResult` with operation
        telemetry (analog solvers only).
    costs:
        Component unit powers; defaults to the Fig. 10 calibration.
    conversion_time_s:
        Time per DAC/ADC conversion (energy = power * time).

    Raises
    ------
    CostModelError
        For digital results with no analog operations.
    """
    costs = costs or ComponentCosts.paper_calibrated()
    check_positive(conversion_time_s, "conversion_time_s")
    if not result.operations:
        raise CostModelError("result carries no analog operations to account for")

    opa_energy = 0.0
    rram_energy = 0.0
    for op in result.operations:
        t = op.settling_time_s
        opa_energy += costs.power_opa * op.opa_count * t
        rram_energy += costs.power_cell * op.device_count * t

    channels = max(op.rows for op in result.operations)
    dac_count = int(result.metadata.get("dac_conversions", 0))
    adc_count = int(result.metadata.get("adc_conversions", 0))
    dac_energy = costs.power_dac * conversion_time_s * dac_count * channels
    adc_energy = costs.power_adc * conversion_time_s * adc_count * channels

    return EnergyBreakdown(
        opa=opa_energy, rram=rram_energy, dac=dac_energy, adc=adc_energy
    )
