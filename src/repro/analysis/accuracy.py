"""Monte-Carlo accuracy sweeps (the engine behind Figs. 6c, 7, 8d, 9).

``run_trials`` evaluates a set of solvers on the same random systems
(paired comparison, as the paper does when overlaying original AMC and
BlockAMC curves) and returns flat records; ``accuracy_sweep`` aggregates
them into per-size mean/std series ready for tabulation.

``run_trials_batched`` produces the *same records* through the
trial-batched engine of :mod:`repro.core.batched`: per size, all trials
are stacked into ``(trials, n, n)`` tensors and the whole analog pipeline
runs through batched linalg. Random draws are bit-identical to
``run_trials`` (each trial consumes its own hardware generator in the
sequential order), so record values agree to ~1e-12; solvers the engine
cannot batch fall back to the sequential path transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.batched import make_batched_runner
from repro.utils.rng import RngStream
from repro.workloads.matrices import random_vector


@dataclass(frozen=True)
class AccuracyRecord:
    """One (solver, size, trial) accuracy measurement."""

    solver: str
    size: int
    trial: int
    relative_error: float
    saturated: bool
    analog_time_s: float


def run_trials(
    solver_factories: dict[str, Callable[[], object]],
    matrix_factory: Callable[[int, np.random.Generator], np.ndarray],
    sizes,
    trials: int,
    seed=None,
    *,
    vector_factory: Callable[[int, np.random.Generator], np.ndarray] = random_vector,
) -> list[AccuracyRecord]:
    """Run the Monte-Carlo sweep.

    Parameters
    ----------
    solver_factories:
        ``{name: factory}`` where ``factory()`` builds a solver exposing
        ``solve(matrix, b, rng) -> SolveResult``. A fresh solver is built
        per trial so stateless factories are fine.
    matrix_factory:
        ``(size, rng) -> matrix``.
    sizes:
        Iterable of matrix sizes.
    trials:
        Trials per size; every solver sees the same (matrix, b, variation
        seed) triple within a trial.
    seed:
        Root seed for full reproducibility.
    vector_factory:
        ``(size, rng) -> b``.
    """
    stream = RngStream(seed)
    records: list[AccuracyRecord] = []
    for size in sizes:
        for trial in range(trials):
            rng_matrix = stream.child()
            rng_vector = stream.child()
            matrix = matrix_factory(size, rng_matrix)
            b = vector_factory(size, rng_vector)
            hardware_seed = stream.child().integers(0, 2**63 - 1)
            for name, factory in solver_factories.items():
                solver = factory()
                result = solver.solve(matrix, b, rng=np.random.default_rng(hardware_seed))
                records.append(
                    AccuracyRecord(
                        solver=name,
                        size=int(size),
                        trial=trial,
                        relative_error=result.relative_error,
                        saturated=result.saturated,
                        analog_time_s=result.analog_time_s,
                    )
                )
    return records


def run_trials_batched(
    solvers: dict[str, object],
    matrix_factory: Callable[[int, np.random.Generator], np.ndarray],
    sizes,
    trials: int,
    seed=None,
    *,
    vector_factory: Callable[[int, np.random.Generator], np.ndarray] = random_vector,
) -> list[AccuracyRecord]:
    """Run the Monte-Carlo sweep through the trial-batched engine.

    Produces the same records as :func:`run_trials` (to ~1e-12; the
    random samples are bit-identical) at a fraction of the wall clock:
    per (size, solver) all trials execute as one stack of batched linalg
    calls instead of ``trials`` sequential pipeline runs.

    Parameters
    ----------
    solvers:
        ``{name: solver}`` — solver *instances* (solvers are stateless
        across solves). Instances the batched engine supports
        (:class:`~repro.core.original.OriginalAMCSolver`, one-stage
        :class:`~repro.core.blockamc.BlockAMCSolver` with batchable
        configs) run batched; anything else falls back to per-trial
        ``solver.solve`` with the identical RNG layout.
    matrix_factory, sizes, trials, seed, vector_factory:
        As in :func:`run_trials`. The per-trial derivation of matrix,
        right-hand side, and hardware seed from ``seed`` is unchanged,
        so paired comparisons against :func:`run_trials` results hold.
    """
    stream = RngStream(seed)
    records: list[AccuracyRecord] = []
    runners = {name: make_batched_runner(solver) for name, solver in solvers.items()}
    for size in sizes:
        matrices = []
        vectors = []
        seeds = []
        for _ in range(trials):
            rng_matrix = stream.child()
            rng_vector = stream.child()
            matrices.append(matrix_factory(size, rng_matrix))
            vectors.append(vector_factory(size, rng_vector))
            seeds.append(stream.child().integers(0, 2**63 - 1))
        matrix_stack = np.stack(matrices) if trials else np.empty((0, size, size))
        vector_stack = np.stack(vectors) if trials else np.empty((0, size))
        per_solver: dict[str, list[AccuracyRecord]] = {}
        for name, solver in solvers.items():
            runner = runners[name]
            if runner is not None:
                outcomes = runner.run(matrix_stack, vector_stack, seeds)
                per_solver[name] = [
                    AccuracyRecord(
                        solver=name,
                        size=int(size),
                        trial=trial,
                        relative_error=outcome.relative_error,
                        saturated=outcome.saturated,
                        analog_time_s=outcome.analog_time_s,
                    )
                    for trial, outcome in enumerate(outcomes)
                ]
            else:
                per_solver[name] = []
                for trial in range(trials):
                    result = solver.solve(
                        matrix_stack[trial],
                        vector_stack[trial],
                        rng=np.random.default_rng(seeds[trial]),
                    )
                    per_solver[name].append(
                        AccuracyRecord(
                            solver=name,
                            size=int(size),
                            trial=trial,
                            relative_error=result.relative_error,
                            saturated=result.saturated,
                            analog_time_s=result.analog_time_s,
                        )
                    )
        # Emit trial-major (trial, then solver), matching run_trials, so
        # positional consumers can pair the two outputs record for record.
        for trial in range(trials):
            for name in solvers:
                records.append(per_solver[name][trial])
    return records


def _group(records: list[AccuracyRecord]) -> dict[str, dict[int, list[float]]]:
    table: dict[str, dict[int, list[float]]] = {}
    for record in records:
        table.setdefault(record.solver, {}).setdefault(record.size, []).append(
            record.relative_error
        )
    return table


def accuracy_sweep(records: list[AccuracyRecord]) -> dict[str, dict[int, tuple[float, float]]]:
    """Aggregate records into ``{solver: {size: (mean, std)}}``."""
    return {
        solver: {
            size: (float(np.mean(errors)), float(np.std(errors)))
            for size, errors in sorted(by_size.items())
        }
        for solver, by_size in _group(records).items()
    }


def accuracy_quantiles(
    records: list[AccuracyRecord],
    quantiles: tuple[float, ...] = (0.5, 0.9),
) -> dict[str, dict[int, tuple[float, ...]]]:
    """Aggregate records into per-(solver, size) error quantiles.

    Relative-error distributions under heavy non-idealities are
    long-tailed (a near-singular draw ruins one trial); quantiles convey
    the typical behaviour where the mean would be dominated by the tail.
    """
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantiles must lie in [0, 1], got {q}")
    return {
        solver: {
            size: tuple(float(np.quantile(errors, q)) for q in quantiles)
            for size, errors in sorted(by_size.items())
        }
        for solver, by_size in _group(records).items()
    }
