"""Area and power cost model (paper Fig. 10).

The paper estimates macro area/power as the sum of four component
classes — OPA, DAC, ADC, and RRAM arrays — with component counts
determined by the solver architecture (Sec. IV-B):

- **original AMC** at size ``n``: ``n`` OPAs, ``n`` DACs, ``n`` ADCs;
- **one-stage BlockAMC**: the shared amplifier column halves every
  periphery count to ``n/2``;
- **two-stage BlockAMC**: OPAs are deployed separately for the
  first-stage INV and MVM macros ("resulting in the same count of OPAs"
  as the original, i.e. ``n``) while converters stay at ``n/2``.

All three store the same matrix volume (``2 n^2`` cells with the
positive/negative split).

Unit costs are calibrated so the model reproduces the paper's published
totals at ``n = 512`` — areas 0.01577 / 0.00807 / 0.01383 mm^2 and the
40% / 37.4% power savings (OPA power follows Eq. 7, ``P = N Vs Iq``; ADC
and DAC units derive from the RePAST-based parameters the paper cites).
EXPERIMENTS.md documents the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CostModelError
from repro.utils.validation import check_positive

#: Architectures the counting model knows about.
ARCHITECTURES = ("original", "blockamc-1stage", "blockamc-2stage")


@dataclass(frozen=True)
class ComponentCosts:
    """Per-unit area (mm^2) and power (W) of each component class."""

    area_opa: float
    area_dac: float
    area_adc: float
    area_cell: float
    power_opa: float
    power_dac: float
    power_adc: float
    power_cell: float

    def __post_init__(self):
        for name in (
            "area_opa",
            "area_dac",
            "area_adc",
            "area_cell",
            "power_opa",
            "power_dac",
            "power_adc",
            "power_cell",
        ):
            check_positive(getattr(self, name), name)

    @classmethod
    def paper_calibrated(cls) -> "ComponentCosts":
        """Units calibrated to reproduce the paper's Fig. 10 at n = 512.

        The OPA power is Eq. 7 with ``Vs = 1.2 V`` and ``Iq = 11 uA``;
        the converter units follow the ADC-dominated split typical of the
        RePAST parameters the paper references.
        """
        return cls(
            area_opa=2.25e-5,
            area_dac=1.578125e-6,
            area_adc=6.0e-6,
            area_cell=7.0572e-10,
            power_opa=1.32e-5,
            power_dac=3.99e-5,
            power_adc=1.5e-4,
            power_cell=4.9591e-8,
        )


@dataclass(frozen=True)
class SolverCosts:
    """Component counts of one solver architecture at one problem size."""

    architecture: str
    size: int
    opa_count: int
    dac_count: int
    adc_count: int
    cell_count: int


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component area/power plus totals (the bars of Fig. 10)."""

    counts: SolverCosts
    area_by_component: dict[str, float]
    power_by_component: dict[str, float]

    @property
    def total_area_mm2(self) -> float:
        """Total macro area in mm^2."""
        return sum(self.area_by_component.values())

    @property
    def total_power_w(self) -> float:
        """Total macro power in watts."""
        return sum(self.power_by_component.values())


def component_counts(architecture: str, size: int) -> SolverCosts:
    """Component counts for an architecture solving an ``n x n`` system."""
    if size < 2:
        raise CostModelError(f"size must be >= 2, got {size}")
    if architecture not in ARCHITECTURES:
        raise CostModelError(
            f"unknown architecture {architecture!r}; expected one of {ARCHITECTURES}"
        )
    half = (size + 1) // 2
    cells = 2 * size * size  # positive + negative arrays, same for all three
    if architecture == "original":
        opa, dac, adc = size, size, size
    elif architecture == "blockamc-1stage":
        opa, dac, adc = half, half, half
    else:  # blockamc-2stage: OPAs deployed separately for INV and MVM macros
        opa, dac, adc = 2 * half, half, half
    return SolverCosts(
        architecture=architecture,
        size=size,
        opa_count=opa,
        dac_count=dac,
        adc_count=adc,
        cell_count=cells,
    )


def solver_cost_breakdown(
    architecture: str,
    size: int,
    costs: ComponentCosts | None = None,
) -> CostBreakdown:
    """Area/power breakdown of one solver (one bar group of Fig. 10)."""
    costs = costs or ComponentCosts.paper_calibrated()
    counts = component_counts(architecture, size)
    area = {
        "OPA": counts.opa_count * costs.area_opa,
        "DAC": counts.dac_count * costs.area_dac,
        "ADC": counts.adc_count * costs.area_adc,
        "RRAM": counts.cell_count * costs.area_cell,
    }
    power = {
        "OPA": counts.opa_count * costs.power_opa,
        "DAC": counts.dac_count * costs.power_dac,
        "ADC": counts.adc_count * costs.power_adc,
        "RRAM": counts.cell_count * costs.power_cell,
    }
    return CostBreakdown(counts=counts, area_by_component=area, power_by_component=power)


def savings_vs_original(size: int, costs: ComponentCosts | None = None) -> dict[str, dict[str, float]]:
    """Fractional area/power savings of both BlockAMC solvers vs original.

    Returns ``{"blockamc-1stage": {"area": ..., "power": ...}, ...}`` —
    the paper's headline numbers (48.8% area, 40% power for one-stage).
    """
    costs = costs or ComponentCosts.paper_calibrated()
    base = solver_cost_breakdown("original", size, costs)
    out: dict[str, dict[str, float]] = {}
    for architecture in ("blockamc-1stage", "blockamc-2stage"):
        breakdown = solver_cost_breakdown(architecture, size, costs)
        out[architecture] = {
            "area": 1.0 - breakdown.total_area_mm2 / base.total_area_mm2,
            "power": 1.0 - breakdown.total_power_w / base.total_power_w,
        }
    return out
