"""CSV export of sweep results.

The repository has no plotting dependency; benches print ASCII tables
and this module writes the same series as CSV so any external tool can
regenerate the paper's figures graphically.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.accuracy import AccuracyRecord
from repro.errors import ValidationError


def records_to_csv(records: list[AccuracyRecord], path) -> Path:
    """Write raw Monte-Carlo records (one row per trial) to ``path``."""
    if not records:
        raise ValidationError("no records to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["solver", "size", "trial", "relative_error", "saturated", "analog_time_s"]
        )
        for record in records:
            writer.writerow(
                [
                    record.solver,
                    record.size,
                    record.trial,
                    f"{record.relative_error:.9g}",
                    int(record.saturated),
                    f"{record.analog_time_s:.9g}",
                ]
            )
    return path


def sweep_to_csv(table: dict[str, dict[int, tuple[float, float]]], path) -> Path:
    """Write an aggregated sweep (``accuracy_sweep`` output) to ``path``.

    One row per (solver, size) with mean and std — the series a figure
    plots directly.
    """
    if not table:
        raise ValidationError("no sweep data to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["solver", "size", "mean_relative_error", "std_relative_error"])
        for solver, by_size in sorted(table.items()):
            for size, (mean, std) in sorted(by_size.items()):
                writer.writerow([solver, size, f"{mean:.9g}", f"{std:.9g}"])
    return path
