"""Deprecated alias of :mod:`repro.analysis.reporting`.

The markdown report generator and the table formatters used to live in
two near-duplicate modules (``analysis.report`` and
``analysis.reporting``); they are now consolidated in
:mod:`repro.analysis.reporting`, which is the single reporting entry
point (campaign aggregation, benches, and the CLI all render through
it). This shim re-exports the public API for existing imports and will
be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.analysis.reporting import (  # noqa: F401  (re-exports)
    format_table,
    generate_report,
    markdown_table,
    write_report,
)

warnings.warn(
    "repro.analysis.report is deprecated; import from "
    "repro.analysis.reporting instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["format_table", "generate_report", "markdown_table", "write_report"]
