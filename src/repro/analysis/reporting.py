"""ASCII table formatting for benches and examples.

Keeps benchmark output in the same row/series shape as the paper's tables
and figure legends without pulling in plotting dependencies.
"""

from __future__ import annotations

from repro.errors import ValidationError


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row value lists; floats are formatted compactly.
    title:
        Optional title line above the table.
    """
    if not headers:
        raise ValidationError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row length {len(row)} does not match header count {len(headers)}"
            )
    rendered = [[_render_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
