"""Reporting: ASCII/markdown tables and the one-command experiment report.

This module is the single reporting entry point of the analysis layer
(the former ``repro.analysis.report`` is a deprecated alias):

- :func:`format_table` — fixed-width ASCII tables in the row/series
  shape of the paper's tables and figure legends (used by every bench);
- :func:`markdown_table` — the same rows as GitHub-flavoured markdown;
- :func:`generate_report` / :func:`write_report` — run every registered
  figure suite (quick or paper scale), the cost model, and the headline
  claims, and render a single markdown document. Exposed on the CLI as
  ``python -m repro report``; campaign aggregation
  (:mod:`repro.campaigns.aggregate`) renders through the same helpers.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ValidationError

__all__ = ["format_table", "markdown_table", "generate_report", "write_report"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row value lists; floats are formatted compactly.
    title:
        Optional title line above the table.
    """
    if not headers:
        raise ValidationError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row length {len(row)} does not match header count {len(headers)}"
            )
    rendered = [[_render_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """Render a GitHub-flavoured markdown table (same row shape as
    :func:`format_table`; floats pass through ``str`` unformatted so
    callers control precision)."""
    if not headers:
        raise ValidationError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row length {len(row)} does not match header count {len(headers)}"
            )
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _solver_factories(hardware_factory, include_two_stage: bool):
    from repro.core.blockamc import BlockAMCSolver
    from repro.core.multistage import MultiStageSolver
    from repro.core.original import OriginalAMCSolver

    factories = {
        "original-amc": lambda: OriginalAMCSolver(hardware_factory()),
        "blockamc-1stage": lambda: BlockAMCSolver(hardware_factory()),
    }
    if include_two_stage:
        factories["blockamc-2stage"] = lambda: MultiStageSolver(
            hardware_factory(), stages=2
        )
    return factories


def generate_report(
    *,
    quick: bool = True,
    seed: int = 0,
    suites: list[str] | None = None,
) -> str:
    """Run the experiment suites and render a markdown report.

    Parameters
    ----------
    quick:
        Use CI-size sweeps (True) or the paper's full sizes (False).
    seed:
        Root seed; the whole report is deterministic given it.
    suites:
        Subset of suite names (default: all registered).
    """
    # Imported here: the table formatters must stay importable without
    # pulling the whole solver stack (serve.metrics imports this module).
    from repro.analysis.accuracy import accuracy_quantiles, accuracy_sweep, run_trials
    from repro.analysis.costmodel import savings_vs_original, solver_cost_breakdown
    from repro.workloads.suites import get_suite, list_suites

    names = suites if suites is not None else list_suites(quick)
    sections = [
        "# BlockAMC reproduction report",
        "",
        f"Scale: {'quick' if quick else 'paper'} | seed: {seed}",
        "",
    ]

    for name in names:
        suite = get_suite(name, quick=quick)
        two_stage = "fig8" in name or "fig9" in name
        records = run_trials(
            _solver_factories(suite.hardware_factory, two_stage),
            suite.matrix_factory,
            suite.sizes,
            suite.trials,
            seed=seed,
        )
        means = accuracy_sweep(records)
        medians = accuracy_quantiles(records, (0.5,))
        solvers = sorted(means)
        headers = ["size"] + [f"{s} (mean/med)" for s in solvers]
        rows = []
        for size in suite.sizes:
            row = [str(size)]
            for solver in solvers:
                row.append(
                    f"{means[solver][size][0]:.4f}/{medians[solver][size][0]:.4f}"
                )
            rows.append(row)
        sections.append(f"## {suite.name} ({suite.figure})")
        sections.append("")
        sections.append(
            f"{suite.trials} trials per size; relative error (paper Eq. 6)."
        )
        sections.append("")
        sections.append(markdown_table(headers, rows))
        sections.append("")

    # Fig. 10 cost model.
    sections.append("## fig10-costs (Fig. 10)")
    sections.append("")
    rows = []
    for arch in ("original", "blockamc-1stage", "blockamc-2stage"):
        breakdown = solver_cost_breakdown(arch, 512)
        rows.append(
            [
                arch,
                f"{breakdown.total_area_mm2:.5f}",
                f"{breakdown.total_power_w * 1e3:.1f}",
            ]
        )
    sections.append(markdown_table(["solver", "area mm^2", "power mW"], rows))
    savings = savings_vs_original(512)
    sections.append("")
    sections.append(
        f"One-stage saves {savings['blockamc-1stage']['area']:.1%} area / "
        f"{savings['blockamc-1stage']['power']:.1%} power; two-stage "
        f"{savings['blockamc-2stage']['area']:.1%} / "
        f"{savings['blockamc-2stage']['power']:.1%} "
        "(paper: 48.83%/40% and 12.3%/37.4%)."
    )
    sections.append("")
    return "\n".join(sections)


def write_report(path, **kwargs) -> Path:
    """Render :func:`generate_report` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(**kwargs))
    return path
