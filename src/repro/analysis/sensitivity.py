"""First-order error sensitivity of AMC solutions to cell conductances.

Perturbation theory for the two primitives. For the INV circuit solving
``A x = b``, perturbing one normalized cell ``A_ij -> A_ij + d`` moves
the solution by

    dx = -A^-1 e_i x_j d        (first order)

so the sensitivity of the solution norm to cell (i, j) is

    S_ij = ||A^-1 e_i|| * |x_j|

— the product of how strongly row ``i`` couples into the solution and
how big the solution component that cell multiplies is. For MVM the
corresponding map is simply ``S_ij = |x_j|`` per output row.

These maps explain *which* cells dominate the variation-induced error
(Figs. 7-9) and provide the optional weighting for fault-aware
remapping: parking faults on low-sensitivity cells is strictly better
than minimizing raw |entry| mass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.utils.validation import check_square_matrix, check_vector


@dataclass(frozen=True)
class SensitivityMap:
    """Per-cell first-order sensitivities for one system.

    ``map[i, j]`` approximates ``||dx|| / d`` for a perturbation ``d``
    of normalized cell ``(i, j)``.
    """

    values: np.ndarray
    kind: str  # "inv" | "mvm"

    @property
    def total(self) -> float:
        """Aggregate sensitivity (Frobenius mass of the map)."""
        return float(np.linalg.norm(self.values))

    def top_cells(self, count: int = 10) -> list[tuple[int, int, float]]:
        """The ``count`` most sensitive cells as ``(row, col, value)``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        flat = np.argsort(self.values, axis=None)[::-1][:count]
        rows, cols = np.unravel_index(flat, self.values.shape)
        return [
            (int(r), int(c), float(self.values[r, c]))
            for r, c in zip(rows, cols)
        ]

    def normalized(self) -> np.ndarray:
        """Map scaled to a unit maximum (for display / weighting)."""
        peak = float(np.max(self.values))
        if peak == 0.0:
            return self.values.copy()
        return self.values / peak


def inv_sensitivity(matrix: np.ndarray, b: np.ndarray) -> SensitivityMap:
    """Sensitivity of the INV solution to each cell of ``matrix``.

    Parameters
    ----------
    matrix:
        The (normalized) system matrix.
    b:
        Right-hand side defining the operating point ``x = A^-1 b``.
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    try:
        inverse = np.linalg.inv(matrix)
        x = inverse @ b
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"matrix is singular: {exc}") from exc
    # ||A^-1 e_i|| is the norm of column i of A^-1.
    row_coupling = np.linalg.norm(inverse, axis=0)
    values = np.outer(row_coupling, np.abs(x))
    return SensitivityMap(values=values, kind="inv")


def mvm_sensitivity(matrix: np.ndarray, x: np.ndarray) -> SensitivityMap:
    """Sensitivity of the MVM output to each cell of ``matrix``.

    The output row ``i`` moves by exactly ``x_j d`` when cell (i, j)
    shifts by ``d``; the map is constant across rows.
    """
    matrix = check_square_matrix(matrix) if matrix.shape[0] == matrix.shape[1] else np.asarray(matrix, dtype=float)
    x = check_vector(x, "x", size=matrix.shape[1])
    values = np.tile(np.abs(x)[None, :], (matrix.shape[0], 1))
    return SensitivityMap(values=values, kind="mvm")


def predicted_variation_error(
    matrix: np.ndarray,
    b: np.ndarray,
    sigma_rel: float,
) -> float:
    """Predicted relative solution error under relative Gaussian variation.

    First-order propagation: each cell perturbs independently with
    standard deviation ``sigma_rel * |A_ij|``, so

        E[||dx||^2] = sigma^2 * sum_ij (A_ij * ||A^-1 e_i|| * x_j)^2

    and the prediction is the square root over ``||x||``. Validated in
    tests against the Monte-Carlo measurement — this closes the loop
    between the statistical experiments and the analytic model.
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    if sigma_rel <= 0.0:
        raise SolverError(f"sigma_rel must be > 0, got {sigma_rel}")
    inverse = np.linalg.inv(matrix)
    x = inverse @ b
    row_coupling = np.linalg.norm(inverse, axis=0)
    contributions = (np.abs(matrix) * np.outer(row_coupling, np.abs(x))) ** 2
    return float(sigma_rel * np.sqrt(np.sum(contributions)) / np.linalg.norm(x))
