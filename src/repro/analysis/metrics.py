"""Accuracy metrics.

The paper's relative error (Eq. 6) is

    eps_r = | sum_i sqrt((x_i - xhat_i)^2) / sum_i sqrt(x_i^2) |

i.e. the L1 norm of the element-wise error over the L1 norm of the ideal
solution (each square root collapses to an absolute value). We implement
it verbatim as :func:`paper_relative_error`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_vector


def paper_relative_error(ideal: np.ndarray, actual: np.ndarray) -> float:
    """Relative error of Eq. 6: ``sum|x - xhat| / sum|x|``.

    Parameters
    ----------
    ideal:
        The exact ("numerical") solution ``x``.
    actual:
        The solver output ``xhat``.
    """
    ideal = check_vector(ideal, "ideal")
    actual = check_vector(actual, "actual", size=ideal.size)
    denom = float(np.sum(np.abs(ideal)))
    if denom == 0.0:
        raise ValidationError("ideal solution must be non-zero")
    return float(np.sum(np.abs(actual - ideal)) / denom)


def max_abs_error(ideal: np.ndarray, actual: np.ndarray) -> float:
    """Worst-case element-wise deviation."""
    ideal = check_vector(ideal, "ideal")
    actual = check_vector(actual, "actual", size=ideal.size)
    return float(np.max(np.abs(actual - ideal)))


def scatter_points(ideal: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Column-stacked (ideal, actual) pairs for scatter plots (Figs. 6/8).

    Returns an ``(n, 2)`` array whose rows are ``(ideal_i, actual_i)``.
    """
    ideal = check_vector(ideal, "ideal")
    actual = check_vector(actual, "actual", size=ideal.size)
    return np.column_stack([ideal, actual])
