"""Solver result container shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amc.ops import OpResult
from repro.analysis.metrics import paper_relative_error


@dataclass(frozen=True)
class SolveResult:
    """Outcome of solving ``A x = b`` with one of the solvers.

    Attributes
    ----------
    x:
        The solver's solution.
    reference:
        Exact digital solution ``numpy.linalg.solve(A, b)``.
    solver:
        Human-readable solver name.
    operations:
        Telemetry of every analog operation executed (empty for digital
        solvers).
    metadata:
        Solver-specific extras (scales, per-step references, resource
        counts, conversion counts, ...).
    """

    x: np.ndarray
    reference: np.ndarray
    solver: str
    operations: tuple[OpResult, ...] = ()
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Dimension of the solved system."""
        return self.x.size

    @property
    def relative_error(self) -> float:
        """The paper's Eq. 6 relative error vs. the digital reference."""
        return paper_relative_error(self.reference, self.x)

    @property
    def analog_time_s(self) -> float:
        """Sum of analog settling times over all operations."""
        return float(sum(op.settling_time_s for op in self.operations))

    @property
    def operation_counts(self) -> dict[str, int]:
        """Number of analog ops by kind (``{"inv": ..., "mvm": ...}``)."""
        counts: dict[str, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    @property
    def saturated(self) -> bool:
        """True when any analog op clipped at the op-amp rails."""
        return any(op.saturated for op in self.operations)
