"""Solver result containers shared by all solvers.

:class:`SolveResult` is the full-telemetry container (per-operation
:class:`~repro.amc.ops.OpResult` tuples, step-output metadata).
:class:`LeanSolveResult` is the serving-mode container: the same
solution payload (``x``/``reference`` are bitwise identical to the full
result's) with per-step telemetry reduced to the scalars the serving
and campaign layers actually consume — constructing the five OpResults
and their step-output dicts dominates service-side time at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amc.ops import OpResult
from repro.analysis.metrics import paper_relative_error


@dataclass(frozen=True)
class SolveResult:
    """Outcome of solving ``A x = b`` with one of the solvers.

    Attributes
    ----------
    x:
        The solver's solution.
    reference:
        Exact digital solution ``numpy.linalg.solve(A, b)``.
    solver:
        Human-readable solver name.
    operations:
        Telemetry of every analog operation executed (empty for digital
        solvers).
    metadata:
        Solver-specific extras (scales, per-step references, resource
        counts, conversion counts, ...).
    """

    x: np.ndarray
    reference: np.ndarray
    solver: str
    operations: tuple[OpResult, ...] = ()
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Dimension of the solved system."""
        return self.x.size

    @property
    def relative_error(self) -> float:
        """The paper's Eq. 6 relative error vs. the digital reference."""
        return paper_relative_error(self.reference, self.x)

    @property
    def analog_time_s(self) -> float:
        """Sum of analog settling times over all operations."""
        return float(sum(op.settling_time_s for op in self.operations))

    @property
    def operation_counts(self) -> dict[str, int]:
        """Number of analog ops by kind (``{"inv": ..., "mvm": ...}``)."""
        counts: dict[str, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    @property
    def saturated(self) -> bool:
        """True when any analog op clipped at the op-amp rails."""
        return any(op.saturated for op in self.operations)


@dataclass(frozen=True)
class LeanSolveResult:
    """Serving-mode outcome of one solve: payload without step telemetry.

    Carries exactly what :class:`repro.serve` responses and campaign
    records read from a result — the solution, the digital reference,
    and the scalar telemetry aggregates — while skipping the per-step
    :class:`~repro.amc.ops.OpResult` construction. ``x``, ``reference``,
    ``relative_error``, ``saturated``, and ``analog_time_s`` are
    bit-identical to the corresponding full :class:`SolveResult` fields
    for the same solve.
    """

    x: np.ndarray
    reference: np.ndarray
    solver: str
    saturated: bool = False
    analog_time_s: float = 0.0
    metadata: dict = field(default_factory=dict)
    #: Lean results carry no per-operation telemetry by design.
    operations: tuple = ()

    @classmethod
    def from_result(cls, result: SolveResult) -> "LeanSolveResult":
        """Reduce a full result (fallback for non-lean solve paths).

        Only metadata keys the full result actually set are carried
        over — no key ever appears with a ``None`` the full path would
        never produce.
        """
        return cls(
            x=result.x,
            reference=result.reference,
            solver=result.solver,
            saturated=result.saturated,
            analog_time_s=result.analog_time_s,
            metadata={
                key: result.metadata[key]
                for key in ("input_scale",)
                if key in result.metadata
            },
        )

    @property
    def size(self) -> int:
        """Dimension of the solved system."""
        return self.x.size

    @property
    def relative_error(self) -> float:
        """The paper's Eq. 6 relative error vs. the digital reference."""
        return paper_relative_error(self.reference, self.x)
