"""Shared solver plumbing: voltage scaling of the known vector.

AMC circuits work on voltages. Solvers scale the digital right-hand side
``b`` so its largest element uses a configurable fraction of the DAC full
scale (headroom for the INV outputs, which can exceed the inputs), and
undo the scaling digitally on the way out:

    A x = b,  A = s_g * A_n,  v_b = k * b
    circuit solves A_n x_v = v_b  =>  x = x_v / (k * s_g)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_in_range, check_vector

#: Fraction of DAC full scale the largest |b| element is mapped to.
DEFAULT_INPUT_FRACTION = 0.5

#: Auto-ranging keeps analog peaks below this fraction of full scale.
RANGING_HEADROOM = 0.9

#: Maximum auto-ranging attempts (the circuit is linear in the input
#: scale, so the second attempt already lands on target; extra attempts
#: only absorb quantization nonlinearity).
MAX_RANGING_ATTEMPTS = 4


def auto_range(run, k0: float, v_fs: float):
    """Analog gain ranging: shrink the input scale until nothing clips.

    INV outputs exceed their inputs by up to the (unknown) inverse's
    norm, so a fixed input scale can push intermediate voltages beyond
    converter full scale. Real mixed-signal systems solve this with gain
    ranging — run, detect overrange, rescale, rerun — which is what this
    helper implements. Because every voltage in the system is linear in
    the input scale ``k``, one corrective rerun suffices.

    Parameters
    ----------
    run:
        ``run(k) -> (peak_voltage, payload)`` — executes the analog
        pipeline at input scale ``k`` and reports the largest absolute
        analog voltage it produced.
    k0:
        Initial scale (from :func:`input_voltage_scale`).
    v_fs:
        Converter full-scale voltage.

    Returns
    -------
    (payload, k):
        Payload of the accepted attempt and the scale that produced it.
    """
    k = k0
    for attempt in range(MAX_RANGING_ATTEMPTS):
        peak, payload = run(k)
        if peak <= RANGING_HEADROOM * v_fs or attempt == MAX_RANGING_ATTEMPTS - 1:
            return payload, k
        # Linear rescale straight to the headroom target (5% margin for
        # quantization effects).
        k = k * (RANGING_HEADROOM * v_fs / peak) * 0.95
    return payload, k  # pragma: no cover - loop always returns


def input_voltage_scale(b: np.ndarray, v_fs: float, fraction: float = DEFAULT_INPUT_FRACTION) -> float:
    """Scale factor ``k`` mapping ``b`` into the DAC range.

    ``max |k * b| == fraction * v_fs``. Raises for an all-zero ``b`` (the
    trivial system needs no solver and would break the scaling).
    """
    b = check_vector(b, "b")
    check_in_range(fraction, 0.0, 1.0, "fraction", inclusive=False)
    peak = float(np.max(np.abs(b)))
    if peak == 0.0:
        raise ValidationError("b must be non-zero (the all-zero system is trivial)")
    return fraction * v_fs / peak
