"""The analog solve kernel: one parameterized implementation, three shapes.

AMC circuits work on voltages. Every solver in this repository — the
scalar :class:`~repro.amc.ops.AMCOperations` primitives, the per-trial
Monte-Carlo engine in :mod:`repro.core.batched`, and the multi-RHS
pipeline in :meth:`repro.core.blockamc.PreparedBlockAMC.solve_many` —
executes the *same* analog physics:

1. scale the digital right-hand side ``b`` into the DAC range
   (:func:`input_voltage_scale`),
2. apply quasi-static op-amp offsets (:func:`draw_offsets`,
   :func:`inv_rhs`, :func:`mvm_raw`),
3. run the raw INV/MVM node equations with finite open-loop gain
   (:func:`inv_raw`, :func:`mvm_raw`),
4. account for output saturation (:func:`saturate`),
5. gain-range: rerun with a smaller input scale until nothing clips
   (:func:`auto_range` / :func:`auto_range_many`, both driven by the
   single :func:`ranging_rescale` policy step),
6. undo the scaling digitally on the way out::

       A x = b,  A = s_g * A_n,  v_b = k * b
       circuit solves A_n x_v = v_b  =>  x = x_v / (k * s_g)

Shape conventions (the "three shapes")
--------------------------------------
Each kernel function is shape-generic over the trailing axes:

- **scalar**: ``v_in (n,)``, ``effective (n, n)``, ``offsets (n,)``;
- **multi-RHS**: ``v_in (rhs, n)`` against one ``effective (n, n)``
  (one programmed macro, many right-hand sides);
- **trial-batched**: ``v_in (trials, n)`` against per-trial
  ``effective (trials, n, n)`` and ``offsets (trials, n)``.

Bitwise-equivalence contract (enforced by
``tests/test_kernel_equivalence.py``)
-------------------------------------
On any single platform the three shapes produce *bit-identical*
results, because the kernel only ever uses contractions and solves
whose per-column floating-point operation order is independent of the
batch shape:

- MVM contractions go through ``np.einsum`` (fixed summation order over
  the contracted axis, never a shape-dependent BLAS kernel);
- every dense solve goes through one primitive —
  :class:`FactoredSystem`: one ``getrf`` factorization, then ``getrs``
  with ``nrhs=1`` per logical column. The multi-RHS shape factors once
  for the whole batch (the performance win) yet produces the same bits
  as independent per-column solves; the trial-batched shape loops its
  slices through the identical calls. Two things must never be
  reintroduced here: a LAPACK call with ``nrhs > 1`` (column results
  depend on how many neighbours they were solved with), and a mix of
  ``np.linalg.solve`` with the SciPy LAPACK bindings (NumPy and SciPy
  link *different* OpenBLAS builds whose low bits can disagree).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backend import canonical_dtype, lapack_solvers
from repro.errors import SolverError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_vector

#: Fraction of DAC full scale the largest |b| element is mapped to.
DEFAULT_INPUT_FRACTION = 0.5

#: Auto-ranging keeps analog peaks below this fraction of full scale.
RANGING_HEADROOM = 0.9

#: Maximum auto-ranging attempts (the circuit is linear in the input
#: scale, so the second attempt already lands on target; extra attempts
#: only absorb quantization nonlinearity).
MAX_RANGING_ATTEMPTS = 4

#: Extra 5% shrink applied by every ranging rescale, absorbing converter
#: quantization effects that break exact linearity in the input scale.
#: This constant exists exactly once; every ranging loop (scalar and
#: batched) goes through :func:`ranging_rescale`.
QUANTIZATION_MARGIN = 0.95


# ----------------------------------------------------------------------
# input scaling
# ----------------------------------------------------------------------


def input_voltage_scale(b: np.ndarray, v_fs: float, fraction: float = DEFAULT_INPUT_FRACTION) -> float:
    """Scale factor ``k`` mapping ``b`` into the DAC range.

    ``max |k * b| == fraction * v_fs``. Raises for an all-zero ``b`` (the
    trivial system needs no solver and would break the scaling).
    """
    b = check_vector(b, "b")
    check_in_range(fraction, 0.0, 1.0, "fraction", inclusive=False)
    peak = float(np.max(np.abs(b)))
    if peak == 0.0:
        raise ValidationError("b must be non-zero (the all-zero system is trivial)")
    return fraction * v_fs / peak


def input_voltage_scale_many(
    bs: np.ndarray, v_fs: float, fraction: float = DEFAULT_INPUT_FRACTION
) -> np.ndarray:
    """Per-vector :func:`input_voltage_scale` over stacked ``(..., n)`` rows.

    Same peak arithmetic, evaluated element-wise over the stack, so each
    entry is bit-identical to the scalar call on the same row.
    """
    peak = np.max(np.abs(bs), axis=-1)
    if np.any(peak == 0.0):
        raise ValidationError("b must be non-zero (the all-zero system is trivial)")
    return fraction * v_fs / peak


# ----------------------------------------------------------------------
# op-amp offsets
# ----------------------------------------------------------------------


def draw_offsets(sigma: float, size: int, rng) -> np.ndarray | None:
    """One op-amp column's input-referred offsets (``None`` when ideal)."""
    if sigma == 0.0:
        return None
    return as_generator(rng).normal(0.0, sigma, size=size)


def draw_offsets_batch(sigma: float, sizes, rngs) -> dict[int, np.ndarray | None]:
    """Per-trial op-amp offset columns, drawn in schedule-first-use order.

    Mirrors the scalar path (one draw per distinct column size per
    trial, cached for the rest of that trial's schedule), consuming each
    trial's generator in exactly the scalar order so the samples are
    bit-identical.
    """
    if sigma == 0.0:
        return {size: None for size in sizes}
    distinct: list[int] = []
    for size in sizes:
        if size not in distinct:
            distinct.append(size)
    out: dict[int, np.ndarray] = {
        size: np.empty((len(rngs), size)) for size in distinct
    }
    for t, rng in enumerate(rngs):
        for size in distinct:
            out[size][t] = rng.normal(0.0, sigma, size=size)
    return out


# ----------------------------------------------------------------------
# shape-stable linear algebra primitives
# ----------------------------------------------------------------------


def contract(matrix: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Matrix-vector contraction ``(..., r, c) x (..., c) -> (..., r)``.

    Uses ``np.einsum`` (fixed summation order over ``c``) instead of
    ``@``: BLAS picks different kernels — and different accumulation
    orders — for ``gemv`` vs. ``gemm`` and for different column counts,
    so ``@`` would break the bitwise contract between the scalar,
    multi-RHS, and trial-batched shapes.
    """
    return np.einsum("...rc,...c->...r", matrix, v_in)


class FactoredSystem:
    """One LU factorization, solved column-by-column, bitwise-stable.

    ``np.linalg.solve(A, B)`` with ``nrhs > 1`` hands LAPACK the whole
    block and gets back columns whose low bits depend on how many
    neighbours they were solved with. This class keeps the multi-RHS
    performance shape — factor once, back-substitute cheaply per column
    — while calling ``getrs`` with one column at a time, so a column's
    bits never depend on the batch it arrived in. It is the *only*
    dense-solve primitive of the analog engine: the scalar and
    trial-batched paths use it too, because mixing it with
    ``np.linalg.solve`` would mix two differently-built OpenBLAS
    libraries (NumPy's and SciPy's) whose results differ in low bits.

    The primitive is dtype-generic over the backend seam
    (:mod:`repro.core.backend`): a float32 matrix factors and solves
    through ``sgetrf``/``sgetrs``, anything else through the float64
    pair the engine always used, and right-hand sides are coerced to
    the matrix dtype — so the float64 path is byte-identical to the
    pre-seam kernel.
    """

    def __init__(self, matrix: np.ndarray, what: str = "effective block matrix"):
        matrix = np.asarray(matrix, dtype=canonical_dtype(np.asarray(matrix).dtype))
        getrf, getrs = lapack_solvers(matrix.dtype)
        lu, piv, info = getrf(matrix)
        if info > 0:
            raise SolverError(f"{what} is singular: zero pivot at position {info - 1}")
        if info < 0:  # pragma: no cover - defensive (bad LAPACK argument)
            raise SolverError(f"{what} factorization failed (LAPACK info={info})")
        self.matrix = matrix
        self._getrs = getrs
        self._lu = lu
        self._piv = piv
        self._what = what

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for ``(n,)`` or row-stacked ``(rhs, n)`` right-hand sides."""
        getrs, lu, piv = self._getrs, self._lu, self._piv
        rhs = np.ascontiguousarray(rhs, dtype=self.matrix.dtype)
        if rhs.ndim == 1:
            x, info = getrs(lu, piv, rhs)
            if info != 0:  # pragma: no cover - defensive (bad LAPACK argument)
                raise SolverError(f"{self._what} solve failed (LAPACK info={info})")
            return x
        out = np.empty_like(rhs)
        for i in range(rhs.shape[0]):
            x, info = getrs(lu, piv, rhs[i])
            if info != 0:  # pragma: no cover - defensive (bad LAPACK argument)
                raise SolverError(f"{self._what} solve failed (LAPACK info={info})")
            out[i] = x
        return out


def solve_columns(matrix: np.ndarray, rhs: np.ndarray, what: str = "matrix") -> np.ndarray:
    """One-shot :class:`FactoredSystem` solve (``(n,)`` or ``(rhs, n)``)."""
    return FactoredSystem(matrix, what=what).solve(rhs)


def solve_slices(
    matrices: np.ndarray, rhs: np.ndarray, what: str = "effective block matrix"
) -> np.ndarray:
    """Per-slice solves for stacked ``(trials, n, n)`` x ``(trials, n)``.

    Each slice goes through the same :class:`FactoredSystem` calls the
    scalar shape makes, so trial ``t`` is bit-identical to a scalar
    solve of ``(matrices[t], rhs[t])``.
    """
    out = np.empty_like(rhs)
    for t in range(rhs.shape[0]):
        out[t] = FactoredSystem(matrices[t], what=what).solve(rhs[t])
    return out


def ideal_mvm(matrix: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Perfect-circuit MVM output (with the hardware minus sign)."""
    return -contract(matrix, v_in)


def ideal_inv(
    matrix: np.ndarray,
    v_in: np.ndarray,
    input_scale: float = 1.0,
    what: str = "ideal block matrix",
) -> np.ndarray:
    """Perfect-circuit INV output ``-matrix^-1 (input_scale * v_in)``."""
    return -solve_columns(matrix, input_scale * v_in, what=what)


# ----------------------------------------------------------------------
# raw INV / MVM node equations
# ----------------------------------------------------------------------


def mvm_raw(
    effective: np.ndarray,
    load_row_sums: np.ndarray,
    v_in: np.ndarray,
    offsets: np.ndarray | None,
    open_loop_gain: float,
) -> np.ndarray:
    """Raw (pre-saturation) MVM outputs: finite-gain KCL at the TIAs.

    ``v_out_i = (-(M v_in)_i + (1 + L_i) vos_i) / (1 + (1 + L_i) / A0)``
    — shape-generic over the three kernel shapes (see module docstring).
    """
    raw = -contract(effective, v_in)
    noise_gain = 1.0 + load_row_sums
    if offsets is not None:
        raw = raw + noise_gain * offsets
    if not math.isinf(open_loop_gain):
        raw = raw / (1.0 + noise_gain / open_loop_gain)
    return raw


def inv_loading(load_row_sums: np.ndarray, input_scale) -> np.ndarray:
    """Total conductance loading each INV summing node: ``s + L_i``.

    ``input_scale`` is a float (scalar / multi-RHS shapes) or a
    per-trial ``(trials,)`` array (trial-batched shape). Pinned to the
    loading dtype so a float32-tier loading stays float32 (a bare 0-d
    ``np.asarray`` is NEP-50 "strong" and would upcast); for float64
    loadings this is bit-identical to the unpinned arithmetic.
    """
    load_row_sums = np.asarray(load_row_sums)
    scale = np.asarray(input_scale, dtype=load_row_sums.dtype)
    return scale[..., None] + load_row_sums


def inv_system(
    effective: np.ndarray, loading: np.ndarray, open_loop_gain: float
) -> np.ndarray:
    """INV system matrix ``M + diag(s + L) / A0`` (finite-gain model)."""
    if math.isinf(open_loop_gain):
        return effective
    system = effective.copy()
    idx = np.arange(effective.shape[-1])
    system[..., idx, idx] += loading / open_loop_gain
    return system


def inv_rhs(
    v_in: np.ndarray,
    loading: np.ndarray,
    offsets: np.ndarray | None,
    input_scale,
) -> np.ndarray:
    """INV right-hand side ``-s * v_in + (s + L) * vos``.

    ``input_scale`` is pinned to the ``v_in`` dtype (same NEP-50
    rationale as :func:`inv_loading`; bit-identical for float64).
    """
    v_in = np.asarray(v_in)
    scale = np.asarray(input_scale, dtype=v_in.dtype)
    rhs = -scale[..., None] * v_in
    if offsets is not None:
        rhs = rhs + loading * offsets
    return rhs


def inv_solve(system: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the INV node equations, dispatching on the kernel shape.

    - ``system (n, n)``, ``rhs (n,)`` or ``(rhs, n)``: one factorization,
      one ``getrs`` column at a time (see :class:`FactoredSystem`);
    - ``system (trials, n, n)``, ``rhs (trials, n)``: the same calls,
      slice by slice.
    """
    if system.ndim == 2:
        return FactoredSystem(system).solve(rhs)
    return solve_slices(system, rhs)


def inv_raw(
    effective: np.ndarray,
    load_row_sums: np.ndarray,
    v_in: np.ndarray,
    offsets: np.ndarray | None,
    input_scale,
    open_loop_gain: float,
) -> np.ndarray:
    """Raw (pre-saturation) INV outputs: solve the finite-gain system.

    ``(M + D / A0) v_out = -s * v_in + (s + L) * vos, D = diag(s + L)``
    — shape-generic; ``input_scale`` may be a float or a ``(trials,)``
    per-trial array (the Schur block's private normalization).
    """
    loading = inv_loading(load_row_sums, input_scale)
    rhs = inv_rhs(v_in, loading, offsets, input_scale)
    return inv_solve(inv_system(effective, loading, open_loop_gain), rhs)


# ----------------------------------------------------------------------
# saturation accounting
# ----------------------------------------------------------------------


def saturate(raw: np.ndarray, v_sat: float) -> tuple[np.ndarray, np.ndarray]:
    """Clip outputs at the op-amp rails; flag which vectors clipped.

    Returns ``(clipped, saturated)`` where ``saturated`` reduces over the
    last axis (a 0-d bool for the scalar shape, per-row bools for the
    stacked shapes).
    """
    if math.isinf(v_sat):
        return raw, np.zeros(raw.shape[:-1], dtype=bool)
    clipped = np.clip(raw, -v_sat, v_sat)
    return clipped, np.any(clipped != raw, axis=-1)


# ----------------------------------------------------------------------
# sample-and-hold cascade
# ----------------------------------------------------------------------


def snh_cascade(voltages: np.ndarray, gain_error: float) -> np.ndarray:
    """Two back-to-back S&H transfers (output bank, then input bank).

    The macro conveys every intermediate through two buffers; each
    multiplies by ``1 + gain_error``. Applied as two successive products
    — not ``(1 + gain_error) ** 2`` — so batched paths stay bit-identical
    to the scalar :class:`~repro.amc.interfaces.SampleHold` chain.
    """
    gain = 1.0 + gain_error
    return (voltages * gain) * gain


# ----------------------------------------------------------------------
# analog gain ranging
# ----------------------------------------------------------------------


def ranging_rescale(k, peak, v_fs: float):
    """The single linear-rescale policy step of every ranging loop.

    Rescales straight to the headroom target (the circuit is linear in
    ``k``) with the :data:`QUANTIZATION_MARGIN` shrink. Element-wise, so
    the scalar and batched ranging loops share one implementation.
    """
    return k * (RANGING_HEADROOM * v_fs / peak) * QUANTIZATION_MARGIN


def auto_range(run, k0: float, v_fs: float):
    """Analog gain ranging: shrink the input scale until nothing clips.

    INV outputs exceed their inputs by up to the (unknown) inverse's
    norm, so a fixed input scale can push intermediate voltages beyond
    converter full scale. Real mixed-signal systems solve this with gain
    ranging — run, detect overrange, rescale, rerun — which is what this
    helper implements. Because every voltage in the system is linear in
    the input scale ``k``, one corrective rerun suffices.

    Parameters
    ----------
    run:
        ``run(k) -> (peak_voltage, payload)`` — executes the analog
        pipeline at input scale ``k`` and reports the largest absolute
        analog voltage it produced.
    k0:
        Initial scale (from :func:`input_voltage_scale`).
    v_fs:
        Converter full-scale voltage.

    Returns
    -------
    (payload, k):
        Payload of the accepted attempt and the scale that produced it.
        The last attempt is always accepted, clipping or not: the
        hardware has no better answer to give.
    """
    k = k0
    for attempt in range(MAX_RANGING_ATTEMPTS):
        peak, payload = run(k)
        if peak <= RANGING_HEADROOM * v_fs or attempt == MAX_RANGING_ATTEMPTS - 1:
            return payload, k
        k = ranging_rescale(k, peak, v_fs)
    raise AssertionError(  # pragma: no cover - loop returns on last attempt
        "unreachable: the final ranging attempt always returns"
    )


def auto_range_many(run, k0: np.ndarray, v_fs: float):
    """Vectorized :func:`auto_range` over independent per-vector scales.

    ``run(k, indices)`` executes the pipeline for the subset ``indices``
    at per-vector scales ``k`` and returns ``(peaks, payload)`` where
    payload is a dict of stacked per-vector output arrays (any dtype).
    Each vector rescales and reruns independently — the same decisions,
    in the same :func:`ranging_rescale` arithmetic, as a scalar
    :func:`auto_range` loop over the vectors.
    """
    count = k0.size
    k = k0.copy()
    active = np.arange(count)
    final: dict[str, np.ndarray] = {}
    final_k = k0.copy()
    for attempt in range(MAX_RANGING_ATTEMPTS):
        peaks, payload = run(k[active], active)
        # Rescale arithmetic always runs in float64, exactly like the
        # scalar loop whose ``peak`` is a Python float: a float32 tier's
        # peaks convert exactly, and the per-column scales stay full
        # precision. Same-object no-op for float64 peaks.
        peaks = np.asarray(peaks, dtype=np.float64)
        if attempt == MAX_RANGING_ATTEMPTS - 1:
            accept = np.ones_like(peaks, dtype=bool)
        else:
            accept = peaks <= RANGING_HEADROOM * v_fs
        accepted = active[accept]
        for key, values in payload.items():
            if key not in final:
                final[key] = np.zeros((count, *values.shape[1:]), dtype=values.dtype)
            final[key][accepted] = values[accept]
        final_k[accepted] = k[active][accept]
        if np.all(accept):
            return final, final_k
        rescale = ~accept
        k[active[rescale]] = ranging_rescale(k[active[rescale]], peaks[rescale], v_fs)
        active = active[rescale]
    raise AssertionError(  # pragma: no cover - loop returns on last attempt
        "unreachable: the final ranging attempt accepts everything"
    )
