"""One-stage BlockAMC solver (the paper's main design, Figs. 2-4).

:class:`BlockAMCSolver` normalizes the matrix, runs the digital Schur
preprocessing, programs the four arrays of a
:class:`~repro.amc.macro.BlockAMCMacro`, executes the five-step analog
schedule, and recovers the digital solution.

Typical use::

    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    result = solver.solve(matrix, b, rng=0)
    print(result.relative_error)

``prepare`` / ``PreparedBlockAMC.solve`` split programming from
execution for workloads that solve many right-hand sides against one
matrix (programming — and its variation draw — happens once).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.macro import BlockAMCMacro
from repro.amc.scheduler import ScheduleResult, simulate_schedule
from repro.core.common import DEFAULT_INPUT_FRACTION, auto_range, input_voltage_scale
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import SolveResult
from repro.crossbar.mapping import normalize_matrix
from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass(frozen=True)
class PreparedBlockAMC:
    """A programmed one-stage solver bound to one matrix."""

    matrix: np.ndarray
    scale: float
    macro: BlockAMCMacro
    split: int
    schur_scale: float
    input_fraction: float

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` for a new right-hand side on the programmed arrays.

        Uses analog gain ranging: if any step's output approaches the
        converter full scale, the input scale is reduced and the analog
        pipeline rerun (see :func:`repro.core.common.auto_range`).
        """
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)
        v_fs = self.macro.config.converters.v_fs

        def run(k):
            v_b = k * b
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(b, v_fs, self.input_fraction)
        macro_result, k = auto_range(run, k0, v_fs)
        x = macro_result.solution / (k * self.scale)

        reference = np.linalg.solve(self.matrix, b)
        return SolveResult(
            x=x,
            reference=reference,
            solver="blockamc-1stage",
            operations=macro_result.steps,
            metadata={
                "scale": self.scale,
                "input_scale": k,
                "split": self.split,
                "schur_scale": self.schur_scale,
                "opa_count": self.macro.opa_count,
                "dac_count": self.macro.dac_count,
                "adc_count": self.macro.adc_count,
                "device_count": self.macro.device_count,
                "dac_conversions": 2,
                "adc_conversions": 2,
                "reference_steps": macro_result.reference_steps,
                "step_outputs": {
                    step.label: step.output for step in macro_result.steps
                },
            },
        )

    def solve_batch(
        self,
        rhs_batch,
        rng=None,
        *,
        pipelined: bool = True,
        t_dac_s: float = 50e-9,
        t_adc_s: float = 100e-9,
        t_snh_s: float = 5e-9,
    ) -> "BatchResult":
        """Solve a batch of right-hand sides and model the macro timeline.

        The paper's double-buffered S&H banks let consecutive problems
        pipeline: while problem ``p`` converts its outputs, problem
        ``p+1`` already occupies the analog arrays. This method solves
        every system (exact results, fresh hardware noise per solve) and
        runs the discrete-event schedule for the whole batch, so both
        numerical quality and throughput come from one call.

        Parameters
        ----------
        rhs_batch:
            Iterable of right-hand-side vectors.
        rng:
            Seed or generator (shared stream across the batch).
        pipelined:
            Enable the double-buffered S&H overlap (False = single
            buffered, every stage serializes).
        t_dac_s, t_adc_s, t_snh_s:
            Converter and sample-and-hold timing assumptions.
        """
        rhs_batch = list(rhs_batch)
        if not rhs_batch:
            raise ValidationError("rhs_batch must contain at least one vector")
        rng = as_generator(rng)
        results = tuple(self.solve(b, rng) for b in rhs_batch)
        # All solves share the macro, so the op-time profile of the first
        # result describes every pipeline slot.
        op_times = [op.settling_time_s for op in results[0].operations]
        schedule = simulate_schedule(
            op_times,
            t_dac=t_dac_s,
            t_adc=t_adc_s,
            t_snh=t_snh_s,
            n_problems=len(rhs_batch),
            pipelined=pipelined,
        )
        return BatchResult(results=results, schedule=schedule)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a pipelined batch solve.

    ``results`` holds the per-system solutions; ``schedule`` the
    discrete-event timeline of the macro (op-amp bank, DAC, ADC) for the
    whole batch, from which latency and throughput derive.
    """

    results: tuple[SolveResult, ...]
    schedule: ScheduleResult

    @property
    def throughput_solves_per_s(self) -> float:
        """Steady-state solve rate over the batch."""
        return self.schedule.throughput

    @property
    def worst_relative_error(self) -> float:
        """Largest relative error across the batch."""
        return max(result.relative_error for result in self.results)


class BlockAMCSolver:
    """Solve linear systems with a one-stage BlockAMC macro."""

    name = "blockamc-1stage"

    def __init__(
        self,
        config: HardwareConfig | None = None,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        self.config = config or HardwareConfig.ideal()
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedBlockAMC:
        """Normalize, preprocess, and program the macro for ``matrix``.

        The variation draw (if any) happens here, once; call
        :meth:`PreparedBlockAMC.solve` repeatedly for multiple ``b``.
        """
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        normalized, scale = normalize_matrix(matrix)
        blocks = prepare_blocks(normalized, self.partition)
        arrays = build_macro_arrays(blocks, self.config, rng)
        macro = BlockAMCMacro(arrays, self.config)
        return PreparedBlockAMC(
            matrix=matrix,
            scale=scale,
            macro=macro,
            split=blocks.split,
            schur_scale=blocks.schur_scale,
            input_fraction=self.input_fraction,
        )

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the arrays and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
