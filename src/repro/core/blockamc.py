"""One-stage BlockAMC solver (the paper's main design, Figs. 2-4).

:class:`BlockAMCSolver` normalizes the matrix, runs the digital Schur
preprocessing, programs the four arrays of a
:class:`~repro.amc.macro.BlockAMCMacro`, executes the five-step analog
schedule, and recovers the digital solution.

Typical use::

    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    result = solver.solve(matrix, b, rng=0)
    print(result.relative_error)

``prepare`` / ``PreparedBlockAMC.solve`` split programming from
execution for workloads that solve many right-hand sides against one
matrix (programming — and its variation draw — happens once).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import quantize_voltages
from repro.amc.macro import BlockAMCMacro
from repro.amc.ops import OpResult
from repro.circuits.dynamics import mvm_settling_time
from repro.amc.scheduler import ScheduleResult, simulate_schedule
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    MAX_RANGING_ATTEMPTS,
    RANGING_HEADROOM,
    auto_range,
    input_voltage_scale,
)
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import SolveResult
from repro.crossbar.mapping import normalize_matrix
from repro.errors import SolverError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass(frozen=True)
class PreparedBlockAMC:
    """A programmed one-stage solver bound to one matrix."""

    matrix: np.ndarray
    scale: float
    macro: BlockAMCMacro
    split: int
    schur_scale: float
    input_fraction: float

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` for a new right-hand side on the programmed arrays.

        Uses analog gain ranging: if any step's output approaches the
        converter full scale, the input scale is reduced and the analog
        pipeline rerun (see :func:`repro.core.common.auto_range`).
        """
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)
        v_fs = self.macro.config.converters.v_fs

        def run(k):
            v_b = k * b
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(b, v_fs, self.input_fraction)
        macro_result, k = auto_range(run, k0, v_fs)
        x = macro_result.solution / (k * self.scale)

        reference = np.linalg.solve(self.matrix, b)
        return SolveResult(
            x=x,
            reference=reference,
            solver="blockamc-1stage",
            operations=macro_result.steps,
            metadata={
                "scale": self.scale,
                "input_scale": k,
                "split": self.split,
                "schur_scale": self.schur_scale,
                "opa_count": self.macro.opa_count,
                "dac_count": self.macro.dac_count,
                "adc_count": self.macro.adc_count,
                "device_count": self.macro.device_count,
                "dac_conversions": 2,
                "adc_conversions": 2,
                "reference_steps": macro_result.reference_steps,
                "step_outputs": {
                    step.label: step.output for step in macro_result.steps
                },
            },
        )

    def solve_many(self, rhs_batch, rng=None) -> tuple[SolveResult, ...]:
        """Solve many right-hand sides with shared per-step factorizations.

        The programmed arrays, their effective matrices, and the
        eigenvalue/settling analysis are fixed across right-hand sides,
        so the five-step schedule runs once with *matrix-valued*
        intermediates: each INV step is a single multi-RHS
        ``np.linalg.solve`` (one factorization for the whole batch) and
        each MVM step one matmul. Gain ranging still operates per
        right-hand side (columns rerun independently, exactly like
        sequential :meth:`solve` calls).

        Results match a sequential loop of :meth:`solve` calls to
        ~1e-12. Configurations whose per-operation randomness cannot be
        shared across a batch (MNA routing, output or sample-and-hold
        noise) transparently fall back to that loop.
        """
        rhs_list = [np.asarray(b, dtype=float) for b in rhs_batch]
        if not rhs_list:
            raise ValidationError("rhs_batch must contain at least one vector")
        n = self.matrix.shape[0]
        bs = np.stack([check_vector(b, "b", size=n) for b in rhs_list])
        rng = as_generator(rng)
        config = self.macro.config
        if (
            config.use_mna
            or config.opamp.output_noise_sigma_v > 0.0
            or config.sample_hold.noise_sigma_v > 0.0
        ):
            return tuple(self.solve(b, rng) for b in bs)

        macro = self.macro
        arrays = macro.arrays
        ops = macro.ops
        split = self.split
        par = config.parasitics
        a1, a2, a3, a4s = arrays.a1, arrays.a2, arrays.a3, arrays.a4s
        eff1 = a1.effective_matrix(par)
        eff2 = a2.effective_matrix(par)
        eff3 = a3.effective_matrix(par)
        eff4 = a4s.effective_matrix(par)
        load1, load2 = a1.load_row_sums(), a2.load_row_sums()
        load3, load4 = a3.load_row_sums(), a4s.load_row_sums()
        id1, id2 = ops._ideal_matrix(a1), ops._ideal_matrix(a2)
        id3, id4 = ops._ideal_matrix(a3), ops._ideal_matrix(a4s)
        k_sz, m_sz = arrays.upper_size, arrays.lower_size
        off_k = ops._draw_offsets(k_sz, rng)
        off_m = ops._draw_offsets(m_sz, rng)
        s_in = arrays.schur_input_scale
        a0 = config.opamp.open_loop_gain
        v_sat = config.opamp.v_sat
        conv = config.converters
        v_fs = conv.v_fs
        snh_gain = (1.0 + config.sample_hold.gain_error) ** 2
        gbwp = config.opamp.gbwp_hz

        settle = {
            1: ops._inv_settle(eff1),
            2: mvm_settling_time(
                np.asarray(a3.g_pos) + np.asarray(a3.g_neg), a3.g_unit, gbwp
            ),
            3: ops._inv_settle(eff4),
            4: mvm_settling_time(
                np.asarray(a2.g_pos) + np.asarray(a2.g_neg), a2.g_unit, gbwp
            ),
        }
        settle[5] = settle[1]

        def prep_inv(eff, load, input_scale):
            loading = input_scale + load
            system = eff.copy()
            if not math.isinf(a0):
                system[np.diag_indices_from(system)] += loading / a0
            return system, loading

        sys1, loading1 = prep_inv(eff1, load1, 1.0)
        sys4, loading4 = prep_inv(eff4, load4, s_in)

        def inv_multi(system, loading, off, v_in, input_scale):
            rhs = -input_scale * v_in
            if off is not None:
                rhs = rhs + loading * off
            try:
                return np.linalg.solve(system, rhs.T).T
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"effective block matrix is singular: {exc}"
                ) from exc

        def mvm_multi(eff, load, off, v_in):
            raw = -(v_in @ eff.T)
            noise_gain = 1.0 + load
            if off is not None:
                raw = raw + noise_gain * off
            if not math.isinf(a0):
                raw = raw / (1.0 + noise_gain / a0)
            return raw

        def saturate(raw):
            if math.isinf(v_sat):
                return raw, np.zeros(raw.shape[0], dtype=bool)
            clipped = np.clip(raw, -v_sat, v_sat)
            return clipped, np.any(clipped != raw, axis=1)

        def quantize(v, bits):
            # Shared shape-generic converter model (amc.interfaces).
            return quantize_voltages(v, bits, v_fs)

        batch = bs.shape[0]
        peaks_b = np.max(np.abs(bs), axis=1)
        if np.any(peaks_b == 0.0):
            raise ValidationError("b must be non-zero (the all-zero system is trivial)")
        k = self.input_fraction * v_fs / peaks_b
        final: dict[str, np.ndarray] = {}
        final_k = k.copy()
        final_sat = np.zeros((batch, 5), dtype=bool)
        active = np.arange(batch)
        for attempt in range(MAX_RANGING_ATTEMPTS):
            f = k[active, None] * bs[active, :split]
            g = k[active, None] * bs[active, split:]
            v_f = quantize(f, conv.dac_bits)
            v_g = quantize(g, conv.dac_bits)
            s1, sat1 = saturate(inv_multi(sys1, loading1, off_k, v_f, 1.0))
            h1 = s1 * snh_gain
            s2, sat2 = saturate(mvm_multi(eff3, load3, off_m, h1))
            h2 = s2 * snh_gain
            s3, sat3 = saturate(inv_multi(sys4, loading4, off_m, h2 - v_g, s_in))
            h3 = s3 * snh_gain
            s4, sat4 = saturate(mvm_multi(eff2, load2, off_k, h3))
            h4 = s4 * snh_gain
            s5, sat5 = saturate(inv_multi(sys1, loading1, off_k, v_f + h4, 1.0))
            outs = np.concatenate([s1, s2, s3, s4, s5], axis=1)
            peaks = np.max(np.abs(outs), axis=1)
            sat = np.stack([sat1, sat2, sat3, sat4, sat5], axis=1)
            if attempt == MAX_RANGING_ATTEMPTS - 1:
                accept = np.ones_like(peaks, dtype=bool)
            else:
                accept = peaks <= RANGING_HEADROOM * v_fs
            accepted = active[accept]
            payload = {
                "s1": s1, "s2": s2, "s3": s3, "s4": s4, "s5": s5,
                "in1": v_f, "in2": h1, "in3": h2 - v_g, "in4": h3,
                "in5": v_f + h4, "f": f, "g": g,
            }
            for key, values in payload.items():
                if key not in final:
                    final[key] = np.zeros((batch, values.shape[1]))
                final[key][accepted] = values[accept]
            final_k[accepted] = k[active][accept]
            final_sat[accepted] = sat[accept]
            if np.all(accept):
                break
            rescale = ~accept
            k[active[rescale]] = (
                k[active[rescale]] * (RANGING_HEADROOM * v_fs / peaks[rescale]) * 0.95
            )
            active = active[rescale]

        x_lower = quantize(final["s3"], conv.adc_bits)
        x_upper = -quantize(final["s5"], conv.adc_bits)
        x = np.concatenate([x_upper, x_lower], axis=1) / (final_k * self.scale)[:, None]
        references = np.linalg.solve(self.matrix, bs.T).T

        # Exact-arithmetic per-step references (Fig. 6a curves), batched.
        f, g = final["f"], final["g"]
        a4s_n = id4 / s_in
        y_t = np.linalg.solve(id1, f.T).T
        g_t = y_t @ id3.T
        z = np.linalg.solve(a4s_n, (g - g_t).T).T
        f_t = z @ id2.T
        y = np.linalg.solve(id1, (f - f_t).T).T

        # Ideal (perfect-circuit) outputs per executed step, batched.
        ideal1 = -np.linalg.solve(id1, final["in1"].T).T
        ideal2 = -(final["in2"] @ id3.T)
        ideal3 = -np.linalg.solve(id4, (s_in * final["in3"]).T).T
        ideal4 = -(final["in4"] @ id2.T)
        ideal5 = -np.linalg.solve(id1, final["in5"].T).T

        step_specs = [
            ("step1:INV(A1)", "inv", "s1", ideal1, a1),
            ("step2:MVM(A3)", "mvm", "s2", ideal2, a3),
            ("step3:INV(A4s)", "inv", "s3", ideal3, a4s),
            ("step4:MVM(A2)", "mvm", "s4", ideal4, a2),
            ("step5:INV(A1)", "inv", "s5", ideal5, a1),
        ]
        results = []
        for c in range(batch):
            steps = tuple(
                OpResult(
                    kind=kind,
                    label=label,
                    output=final[key][c],
                    ideal_output=ideal[c],
                    settling_time_s=settle[num],
                    saturated=bool(final_sat[c, num - 1]),
                    rows=array.shape[0],
                    cols=array.shape[1],
                    opa_count=array.shape[0],
                    device_count=array.device_count,
                )
                for num, (label, kind, key, ideal, array) in enumerate(step_specs, 1)
            )
            reference_steps = {
                "step1": -y_t[c],
                "step2": g_t[c],
                "step3": z[c],
                "step4": -f_t[c],
                "step5": -y[c],
            }
            results.append(
                SolveResult(
                    x=x[c],
                    reference=references[c],
                    solver="blockamc-1stage",
                    operations=steps,
                    metadata={
                        "scale": self.scale,
                        "input_scale": float(final_k[c]),
                        "split": self.split,
                        "schur_scale": self.schur_scale,
                        "opa_count": macro.opa_count,
                        "dac_count": macro.dac_count,
                        "adc_count": macro.adc_count,
                        "device_count": macro.device_count,
                        "dac_conversions": 2,
                        "adc_conversions": 2,
                        "reference_steps": reference_steps,
                        "step_outputs": {
                            step.label: step.output for step in steps
                        },
                    },
                )
            )
        return tuple(results)

    def solve_batch(
        self,
        rhs_batch,
        rng=None,
        *,
        pipelined: bool = True,
        t_dac_s: float = 50e-9,
        t_adc_s: float = 100e-9,
        t_snh_s: float = 5e-9,
    ) -> "BatchResult":
        """Solve a batch of right-hand sides and model the macro timeline.

        The paper's double-buffered S&H banks let consecutive problems
        pipeline: while problem ``p`` converts its outputs, problem
        ``p+1`` already occupies the analog arrays. This method solves
        every system (exact results, fresh hardware noise per solve) and
        runs the discrete-event schedule for the whole batch, so both
        numerical quality and throughput come from one call.

        Parameters
        ----------
        rhs_batch:
            Iterable of right-hand-side vectors.
        rng:
            Seed or generator (shared stream across the batch).
        pipelined:
            Enable the double-buffered S&H overlap (False = single
            buffered, every stage serializes).
        t_dac_s, t_adc_s, t_snh_s:
            Converter and sample-and-hold timing assumptions.
        """
        rhs_batch = list(rhs_batch)
        if not rhs_batch:
            raise ValidationError("rhs_batch must contain at least one vector")
        rng = as_generator(rng)
        results = self.solve_many(rhs_batch, rng)
        # All solves share the macro, so the op-time profile of the first
        # result describes every pipeline slot.
        op_times = [op.settling_time_s for op in results[0].operations]
        schedule = simulate_schedule(
            op_times,
            t_dac=t_dac_s,
            t_adc=t_adc_s,
            t_snh=t_snh_s,
            n_problems=len(rhs_batch),
            pipelined=pipelined,
        )
        return BatchResult(results=results, schedule=schedule)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a pipelined batch solve.

    ``results`` holds the per-system solutions; ``schedule`` the
    discrete-event timeline of the macro (op-amp bank, DAC, ADC) for the
    whole batch, from which latency and throughput derive.
    """

    results: tuple[SolveResult, ...]
    schedule: ScheduleResult

    @property
    def throughput_solves_per_s(self) -> float:
        """Steady-state solve rate over the batch."""
        return self.schedule.throughput

    @property
    def worst_relative_error(self) -> float:
        """Largest relative error across the batch."""
        return max(result.relative_error for result in self.results)


class BlockAMCSolver:
    """Solve linear systems with a one-stage BlockAMC macro."""

    name = "blockamc-1stage"

    def __init__(
        self,
        config: HardwareConfig | None = None,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        self.config = config or HardwareConfig.ideal()
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedBlockAMC:
        """Normalize, preprocess, and program the macro for ``matrix``.

        The variation draw (if any) happens here, once; call
        :meth:`PreparedBlockAMC.solve` repeatedly for multiple ``b``.
        """
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        normalized, scale = normalize_matrix(matrix)
        blocks = prepare_blocks(normalized, self.partition)
        arrays = build_macro_arrays(blocks, self.config, rng)
        macro = BlockAMCMacro(arrays, self.config)
        return PreparedBlockAMC(
            matrix=matrix,
            scale=scale,
            macro=macro,
            split=blocks.split,
            schur_scale=blocks.schur_scale,
            input_fraction=self.input_fraction,
        )

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the arrays and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
