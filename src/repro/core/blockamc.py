"""One-stage BlockAMC solver (the paper's main design, Figs. 2-4).

:class:`BlockAMCSolver` normalizes the matrix, runs the digital Schur
preprocessing, programs the four arrays of a
:class:`~repro.amc.macro.BlockAMCMacro`, executes the five-step analog
schedule, and recovers the digital solution.

Typical use::

    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    result = solver.solve(matrix, b, rng=0)
    print(result.relative_error)

``prepare`` / ``PreparedBlockAMC.solve`` split programming from
execution for workloads that solve many right-hand sides against one
matrix (programming — and its variation draw — happens once).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import quantize_voltages
from repro.amc.macro import BlockAMCMacro, reference_schedule
from repro.amc.ops import OpResult
from repro.circuits.dynamics import mvm_settling_time
from repro.amc.scheduler import ScheduleResult, simulate_schedule
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    FactoredSystem,
    auto_range,
    auto_range_many,
    ideal_inv,
    ideal_mvm,
    input_voltage_scale,
    input_voltage_scale_many,
    inv_loading,
    inv_rhs,
    inv_system,
    mvm_raw,
    saturate,
    snh_cascade,
    solve_columns,
)
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import LeanSolveResult, SolveResult
from repro.crossbar.mapping import normalize_matrix
from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


def has_per_operation_randomness(config: HardwareConfig) -> bool:
    """True when a configuration draws fresh randomness per analog op.

    MNA routing, op-amp output noise, and sample-and-hold noise all
    consume the generator once per operation (and per gain-ranging
    attempt), so a single batched pass cannot replay the sequential
    stream. This is the **single** predicate behind every multi-RHS
    batching decision: :meth:`PreparedBlockAMC.solve_many` and
    :meth:`~repro.core.multistage.PreparedMultiStage.solve_many` fall
    back to the sequential loop when it holds, and the serve layer
    (:mod:`repro.serve.cache`) refuses to coalesce such entries — keep
    the three sites in agreement by keeping them on this function.
    """
    return (
        config.use_mna
        or config.opamp.output_noise_sigma_v > 0.0
        or config.sample_hold.noise_sigma_v > 0.0
    )


@dataclass(frozen=True)
class BatchedOpSpec:
    """One analog operation's telemetry, stacked over a batch.

    The batched engines compute whole-batch outputs; result assembly
    slices per-column :class:`~repro.amc.ops.OpResult` objects out of
    these specs so a batched solve reports exactly the telemetry a
    scalar solve would.
    """

    label: str
    kind: str
    outputs: np.ndarray  # (batch, rows)
    ideal: np.ndarray  # (batch, rows)
    settling_time_s: float
    saturated: np.ndarray  # (batch,)
    rows: int
    cols: int
    device_count: int

    def op_result(self, c: int) -> OpResult:
        """The column-``c`` slice as a scalar-shaped :class:`OpResult`."""
        return OpResult(
            kind=self.kind,
            label=self.label,
            output=self.outputs[c],
            ideal_output=self.ideal[c],
            settling_time_s=self.settling_time_s,
            saturated=bool(self.saturated[c]),
            rows=self.rows,
            cols=self.cols,
            opa_count=self.rows,
            device_count=self.device_count,
        )


class BatchedFiveStep:
    """The five-step schedule with matrix-valued intermediates.

    Bound to one programmed :class:`~repro.amc.macro.BlockAMCMacro`,
    this engine holds everything batch-invariant about the schedule —
    effective matrices, the two INV-system factorizations (factor once,
    per-column ``getrs``), the settling analysis, and the quasi-static
    op-amp offsets (drawn through the macro's own offset cache in exact
    scalar stream order) — and executes a whole ``(batch, n)`` block of
    right-hand sides per :meth:`run` call, gain-ranging each column
    independently. Every step goes through the shared kernel of
    :mod:`repro.core.common`, so column ``c`` of a batch is bit-identical
    to a scalar :meth:`BlockAMCMacro.solve` of the same vector.

    Both multi-RHS consumers delegate here:
    :meth:`PreparedBlockAMC.solve_many` and the multi-stage solver's
    macro nodes (:mod:`repro.core.multistage`).
    """

    def __init__(self, macro: BlockAMCMacro, rng):
        self.macro = macro
        config = macro.config
        arrays = macro.arrays
        ops = macro.ops
        par = config.parasitics
        a1, a2, a3, a4s = arrays.a1, arrays.a2, arrays.a3, arrays.a4s
        self.eff1 = a1.effective_matrix(par)
        self.eff2 = a2.effective_matrix(par)
        self.eff3 = a3.effective_matrix(par)
        self.eff4 = a4s.effective_matrix(par)
        self.load2, self.load3 = a2.load_row_sums(), a3.load_row_sums()
        load1, load4 = a1.load_row_sums(), a4s.load_row_sums()
        self.id1, self.id2 = ops._ideal_matrix(a1), ops._ideal_matrix(a2)
        self.id3, self.id4 = ops._ideal_matrix(a3), ops._ideal_matrix(a4s)
        # Offsets draw per column size on first use, exactly like the
        # scalar schedule's step 1 (upper) then step 2 (lower).
        self.off_k = ops._draw_offsets(arrays.upper_size, rng)
        self.off_m = ops._draw_offsets(arrays.lower_size, rng)
        self.split = arrays.upper_size
        self.s_in = arrays.schur_input_scale
        self.a0 = config.opamp.open_loop_gain
        self.v_sat = config.opamp.v_sat
        self.conv = config.converters
        self.snh_error = config.sample_hold.gain_error
        gbwp = config.opamp.gbwp_hz
        self.settle = {
            1: ops._inv_settle(self.eff1),
            2: mvm_settling_time(
                np.asarray(a3.g_pos) + np.asarray(a3.g_neg), a3.g_unit, gbwp
            ),
            3: ops._inv_settle(self.eff4),
            4: mvm_settling_time(
                np.asarray(a2.g_pos) + np.asarray(a2.g_neg), a2.g_unit, gbwp
            ),
        }
        self.settle[5] = self.settle[1]
        # Cast the batch-invariant analog state to the backend tier —
        # a same-object pass-through on the default float64 backend.
        # The settling analysis above already ran on the float64
        # matrices, so timing metadata is tier-independent.
        bk = config.resolve_backend()
        self.backend = bk
        self.eff1, self.eff2 = bk.cast(self.eff1), bk.cast(self.eff2)
        self.eff3, self.eff4 = bk.cast(self.eff3), bk.cast(self.eff4)
        self.load2, self.load3 = bk.cast(self.load2), bk.cast(self.load3)
        load1, load4 = bk.cast(load1), bk.cast(load4)
        self.off_k, self.off_m = bk.cast(self.off_k), bk.cast(self.off_m)
        # One INV stage each for A1 (steps 1/5) and A4s (step 3): the
        # finite-gain system is assembled and LU-factored once for the
        # whole batch; back-substitution happens per column, so results
        # stay bit-identical to per-RHS scalar solves.
        self.loading1 = inv_loading(load1, 1.0)
        self.loading4 = inv_loading(load4, self.s_in)
        self.fact1 = FactoredSystem(inv_system(self.eff1, self.loading1, self.a0))
        self.fact4 = FactoredSystem(inv_system(self.eff4, self.loading4, self.a0))

    def digitize(self, voltages: np.ndarray) -> np.ndarray:
        """ADC model (the shared shape-generic converter)."""
        return quantize_voltages(voltages, self.conv.adc_bits, self.conv.v_fs)

    def run(self, bs: np.ndarray, input_fraction: float):
        """Execute the schedule for row-stacked ``bs``; gain-range per column.

        Returns ``(final, final_k)`` from
        :func:`repro.core.common.auto_range_many`: the accepted step
        outputs/inputs (``s1``..``s5``, ``in1``..``in5``, ``f``, ``g``,
        ``sat``) and the accepted per-column input scales.
        """
        v_fs = self.conv.v_fs
        split = self.split
        fact1, fact4 = self.fact1, self.fact4
        loading1, loading4 = self.loading1, self.loading4
        off_k, off_m = self.off_k, self.off_m
        v_sat, a0, snh_error = self.v_sat, self.a0, self.snh_error
        cast = self.backend.cast

        def inv_step(fact, loading, off, v_in, input_scale):
            return saturate(fact.solve(inv_rhs(v_in, loading, off, input_scale)), v_sat)

        def mvm_step(eff, load, off, v_in):
            return saturate(mvm_raw(eff, load, v_in, off, a0), v_sat)

        def quantize(v, bits):
            # Shared shape-generic converter model (amc.interfaces).
            return quantize_voltages(v, bits, v_fs)

        def run_subset(k, indices):
            f = k[:, None] * bs[indices, :split]
            g = k[:, None] * bs[indices, split:]
            # DAC outputs enter the analog tier: cast to backend dtype
            # (identity on float64). ``f``/``g`` stay float64 for the
            # exact per-step references.
            v_f = cast(quantize(f, self.conv.dac_bits))
            v_g = cast(quantize(g, self.conv.dac_bits))
            s1, sat1 = inv_step(fact1, loading1, off_k, v_f, 1.0)
            h1 = snh_cascade(s1, snh_error)
            s2, sat2 = mvm_step(self.eff3, self.load3, off_m, h1)
            h2 = snh_cascade(s2, snh_error)
            s3, sat3 = inv_step(fact4, loading4, off_m, h2 - v_g, self.s_in)
            h3 = snh_cascade(s3, snh_error)
            s4, sat4 = mvm_step(self.eff2, self.load2, off_k, h3)
            h4 = snh_cascade(s4, snh_error)
            s5, sat5 = inv_step(fact1, loading1, off_k, v_f + h4, 1.0)
            outs = np.concatenate([s1, s2, s3, s4, s5], axis=1)
            peaks = np.max(np.abs(outs), axis=1)
            payload = {
                "s1": s1, "s2": s2, "s3": s3, "s4": s4, "s5": s5,
                "in1": v_f, "in2": h1, "in3": h2 - v_g, "in4": h3,
                "in5": v_f + h4, "f": f, "g": g,
                "sat": np.stack([sat1, sat2, sat3, sat4, sat5], axis=1),
            }
            return peaks, payload

        k0 = input_voltage_scale_many(bs, v_fs, input_fraction)
        return auto_range_many(run_subset, k0, v_fs)

    def step_specs(self, final: dict) -> tuple[BatchedOpSpec, ...]:
        """Per-step batched telemetry for the accepted attempt.

        Ideal (perfect-circuit) outputs are computed from the accepted
        inputs, exactly as the scalar ops record them.
        """
        arrays = self.macro.arrays
        a1, a2, a3, a4s = arrays.a1, arrays.a2, arrays.a3, arrays.a4s
        sat = final["sat"]
        steps = (
            ("step1:INV(A1)", "inv", "s1", ideal_inv(self.id1, final["in1"]), 1, a1),
            ("step2:MVM(A3)", "mvm", "s2", ideal_mvm(self.id3, final["in2"]), 2, a3),
            ("step3:INV(A4s)", "inv", "s3",
             ideal_inv(self.id4, final["in3"], self.s_in), 3, a4s),
            ("step4:MVM(A2)", "mvm", "s4", ideal_mvm(self.id2, final["in4"]), 4, a2),
            ("step5:INV(A1)", "inv", "s5", ideal_inv(self.id1, final["in5"]), 5, a1),
        )
        return tuple(
            BatchedOpSpec(
                label=label,
                kind=kind,
                outputs=final[out_key],
                ideal=ideal,
                settling_time_s=self.settle[num],
                saturated=sat[:, num - 1],
                rows=array.shape[0],
                cols=array.shape[1],
                device_count=array.device_count,
            )
            for label, kind, out_key, ideal, num, array in steps
        )


@dataclass(frozen=True)
class PreparedBlockAMC:
    """A programmed one-stage solver bound to one matrix."""

    matrix: np.ndarray
    scale: float
    macro: BlockAMCMacro
    split: int
    schur_scale: float
    input_fraction: float

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` for a new right-hand side on the programmed arrays.

        Uses analog gain ranging: if any step's output approaches the
        converter full scale, the input scale is reduced and the analog
        pipeline rerun (see :func:`repro.core.common.auto_range`).
        """
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)
        v_fs = self.macro.config.converters.v_fs

        def run(k):
            v_b = k * b
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(b, v_fs, self.input_fraction)
        macro_result, k = auto_range(run, k0, v_fs)
        x = macro_result.solution / (k * self.scale)

        reference = solve_columns(self.matrix, b, what="system matrix")
        return SolveResult(
            x=x,
            reference=reference,
            solver="blockamc-1stage",
            operations=macro_result.steps,
            metadata={
                "scale": self.scale,
                "input_scale": k,
                "split": self.split,
                "schur_scale": self.schur_scale,
                "opa_count": self.macro.opa_count,
                "dac_count": self.macro.dac_count,
                "adc_count": self.macro.adc_count,
                "device_count": self.macro.device_count,
                "dac_conversions": 2,
                "adc_conversions": 2,
                "reference_steps": macro_result.reference_steps,
                "step_outputs": {
                    step.label: step.output for step in macro_result.steps
                },
            },
        )

    def solve_many(
        self, rhs_batch, rng=None, *, lean: bool = False
    ) -> tuple[SolveResult, ...]:
        """Solve many right-hand sides with shared per-step factorizations.

        The programmed arrays, their effective matrices, and the
        eigenvalue/settling analysis are fixed across right-hand sides,
        so the five-step schedule runs once with *matrix-valued*
        intermediates: each INV step is a single multi-RHS
        ``np.linalg.solve`` (one factorization for the whole batch) and
        each MVM step one matmul. Gain ranging still operates per
        right-hand side (columns rerun independently, exactly like
        sequential :meth:`solve` calls).

        Results are **bit-identical** to a sequential loop of
        :meth:`solve` calls: every step goes through the shared kernel
        of :mod:`repro.core.common`, whose multi-RHS solves factor once
        but back-substitute one column at a time (see
        :class:`repro.core.common.FactoredSystem`) and whose
        contractions are shape-stable. Configurations whose
        per-operation randomness cannot be shared across a batch (MNA
        routing, output or sample-and-hold noise) transparently fall
        back to that loop.

        With ``lean=True`` the per-result payload is a
        :class:`~repro.core.solution.LeanSolveResult`: the solution and
        reference are the same bits, but the five per-step
        :class:`~repro.amc.ops.OpResult` objects, their ideal outputs,
        and the step-output metadata dicts are never constructed —
        result assembly dominates service-side time at scale (see
        ``BENCH_serving.json``).
        """
        rhs_list = [np.asarray(b, dtype=float) for b in rhs_batch]
        if not rhs_list:
            raise ValidationError("rhs_batch must contain at least one vector")
        n = self.matrix.shape[0]
        bs = np.stack([check_vector(b, "b", size=n) for b in rhs_list])
        rng = as_generator(rng)
        config = self.macro.config
        if has_per_operation_randomness(config):
            results = tuple(self.solve(b, rng) for b in bs)
            if lean:
                return tuple(LeanSolveResult.from_result(r) for r in results)
            return results

        macro = self.macro
        batch = bs.shape[0]
        # The engine (effective matrices, INV factorizations, settling
        # analysis) is batch-invariant: built on first use, cached for
        # every later batch. Offsets come from the macro's quasi-static
        # cache, so the cache changes no rng semantics. Stored outside
        # the frozen dataclass's fields (pure derived state).
        engine = getattr(self, "_engine", None)
        if engine is None:
            engine = BatchedFiveStep(macro, rng)
            object.__setattr__(self, "_engine", engine)
        final, final_k = engine.run(bs, self.input_fraction)
        final_sat = final["sat"]
        settle = engine.settle

        x_lower = engine.digitize(final["s3"])
        x_upper = -engine.digitize(final["s5"])
        # Divisor cast keeps x at the backend dtype (identity on f64);
        # the digital reference always stays float64.
        divisor = engine.backend.cast(final_k * self.scale)[:, None]
        x = np.concatenate([x_upper, x_lower], axis=1) / divisor
        references = solve_columns(self.matrix, bs, what="system matrix")

        if lean:
            # Same summation order as SolveResult.analog_time_s (left
            # fold from 0 over steps 1..5) so the scalar is bit-identical.
            analog_total = sum(
                (settle[1], settle[2], settle[3], settle[4], settle[5])
            )
            return tuple(
                LeanSolveResult(
                    x=x[c],
                    reference=references[c],
                    solver="blockamc-1stage",
                    saturated=bool(final_sat[c].any()),
                    analog_time_s=float(analog_total),
                    metadata={"input_scale": float(final_k[c])},
                )
                for c in range(batch)
            )

        # Exact-arithmetic per-step references (Fig. 6a curves), batched.
        reference = reference_schedule(
            engine.id1, engine.id2, engine.id3, engine.id4 / engine.s_in,
            final["f"], final["g"],
        )

        # Per-step invariants resolve once inside the specs: OpResult
        # construction runs batch x 5 times and dominates assembly time
        # if the macro properties are recomputed per result.
        specs = engine.step_specs(final)
        metadata_common = {
            "scale": self.scale,
            "split": self.split,
            "schur_scale": self.schur_scale,
            "opa_count": macro.opa_count,
            "dac_count": macro.dac_count,
            "adc_count": macro.adc_count,
            "device_count": macro.device_count,
            "dac_conversions": 2,
            "adc_conversions": 2,
        }
        results = []
        for c in range(batch):
            steps = tuple(spec.op_result(c) for spec in specs)
            reference_steps = {name: rows[c] for name, rows in reference.items()}
            results.append(
                SolveResult(
                    x=x[c],
                    reference=references[c],
                    solver="blockamc-1stage",
                    operations=steps,
                    metadata={
                        **metadata_common,
                        "input_scale": float(final_k[c]),
                        "reference_steps": reference_steps,
                        "step_outputs": {
                            step.label: step.output for step in steps
                        },
                    },
                )
            )
        return tuple(results)

    def solve_batch(
        self,
        rhs_batch,
        rng=None,
        *,
        pipelined: bool = True,
        t_dac_s: float = 50e-9,
        t_adc_s: float = 100e-9,
        t_snh_s: float = 5e-9,
    ) -> "BatchResult":
        """Solve a batch of right-hand sides and model the macro timeline.

        The paper's double-buffered S&H banks let consecutive problems
        pipeline: while problem ``p`` converts its outputs, problem
        ``p+1`` already occupies the analog arrays. This method solves
        every system (exact results, fresh hardware noise per solve) and
        runs the discrete-event schedule for the whole batch, so both
        numerical quality and throughput come from one call.

        Parameters
        ----------
        rhs_batch:
            Iterable of right-hand-side vectors.
        rng:
            Seed or generator (shared stream across the batch).
        pipelined:
            Enable the double-buffered S&H overlap (False = single
            buffered, every stage serializes).
        t_dac_s, t_adc_s, t_snh_s:
            Converter and sample-and-hold timing assumptions.
        """
        rhs_batch = list(rhs_batch)
        if not rhs_batch:
            raise ValidationError("rhs_batch must contain at least one vector")
        rng = as_generator(rng)
        results = self.solve_many(rhs_batch, rng)
        # All solves share the macro, so the op-time profile of the first
        # result describes every pipeline slot.
        op_times = [op.settling_time_s for op in results[0].operations]
        schedule = simulate_schedule(
            op_times,
            t_dac=t_dac_s,
            t_adc=t_adc_s,
            t_snh=t_snh_s,
            n_problems=len(rhs_batch),
            pipelined=pipelined,
        )
        return BatchResult(results=results, schedule=schedule)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a pipelined batch solve.

    ``results`` holds the per-system solutions; ``schedule`` the
    discrete-event timeline of the macro (op-amp bank, DAC, ADC) for the
    whole batch, from which latency and throughput derive.
    """

    results: tuple[SolveResult, ...]
    schedule: ScheduleResult

    @property
    def throughput_solves_per_s(self) -> float:
        """Steady-state solve rate over the batch."""
        return self.schedule.throughput

    @property
    def worst_relative_error(self) -> float:
        """Largest relative error across the batch."""
        return max(result.relative_error for result in self.results)


class BlockAMCSolver:
    """Solve linear systems with a one-stage BlockAMC macro."""

    name = "blockamc-1stage"

    def __init__(
        self,
        config: HardwareConfig | None = None,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        self.config = config or HardwareConfig.ideal()
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedBlockAMC:
        """Normalize, preprocess, and program the macro for ``matrix``.

        The variation draw (if any) happens here, once; call
        :meth:`PreparedBlockAMC.solve` repeatedly for multiple ``b``.
        """
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        normalized, scale = normalize_matrix(matrix)
        blocks = prepare_blocks(normalized, self.partition)
        arrays = build_macro_arrays(blocks, self.config, rng)
        macro = BlockAMCMacro(arrays, self.config)
        return PreparedBlockAMC(
            matrix=matrix,
            scale=scale,
            macro=macro,
            split=blocks.split,
            schur_scale=blocks.schur_scale,
            input_fraction=self.input_fraction,
        )

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the arrays and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
