"""One-stage BlockAMC solver (the paper's main design, Figs. 2-4).

:class:`BlockAMCSolver` normalizes the matrix, runs the digital Schur
preprocessing, programs the four arrays of a
:class:`~repro.amc.macro.BlockAMCMacro`, executes the five-step analog
schedule, and recovers the digital solution.

Typical use::

    solver = BlockAMCSolver(HardwareConfig.paper_variation())
    result = solver.solve(matrix, b, rng=0)
    print(result.relative_error)

``prepare`` / ``PreparedBlockAMC.solve`` split programming from
execution for workloads that solve many right-hand sides against one
matrix (programming — and its variation draw — happens once).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import quantize_voltages
from repro.amc.macro import BlockAMCMacro, reference_schedule
from repro.amc.ops import OpResult
from repro.circuits.dynamics import mvm_settling_time
from repro.amc.scheduler import ScheduleResult, simulate_schedule
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    FactoredSystem,
    auto_range,
    auto_range_many,
    ideal_inv,
    ideal_mvm,
    input_voltage_scale,
    input_voltage_scale_many,
    inv_loading,
    inv_rhs,
    inv_system,
    mvm_raw,
    saturate,
    snh_cascade,
    solve_columns,
)
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import LeanSolveResult, SolveResult
from repro.crossbar.mapping import normalize_matrix
from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass(frozen=True)
class PreparedBlockAMC:
    """A programmed one-stage solver bound to one matrix."""

    matrix: np.ndarray
    scale: float
    macro: BlockAMCMacro
    split: int
    schur_scale: float
    input_fraction: float

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` for a new right-hand side on the programmed arrays.

        Uses analog gain ranging: if any step's output approaches the
        converter full scale, the input scale is reduced and the analog
        pipeline rerun (see :func:`repro.core.common.auto_range`).
        """
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)
        v_fs = self.macro.config.converters.v_fs

        def run(k):
            v_b = k * b
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(b, v_fs, self.input_fraction)
        macro_result, k = auto_range(run, k0, v_fs)
        x = macro_result.solution / (k * self.scale)

        reference = solve_columns(self.matrix, b, what="system matrix")
        return SolveResult(
            x=x,
            reference=reference,
            solver="blockamc-1stage",
            operations=macro_result.steps,
            metadata={
                "scale": self.scale,
                "input_scale": k,
                "split": self.split,
                "schur_scale": self.schur_scale,
                "opa_count": self.macro.opa_count,
                "dac_count": self.macro.dac_count,
                "adc_count": self.macro.adc_count,
                "device_count": self.macro.device_count,
                "dac_conversions": 2,
                "adc_conversions": 2,
                "reference_steps": macro_result.reference_steps,
                "step_outputs": {
                    step.label: step.output for step in macro_result.steps
                },
            },
        )

    def solve_many(
        self, rhs_batch, rng=None, *, lean: bool = False
    ) -> tuple[SolveResult, ...]:
        """Solve many right-hand sides with shared per-step factorizations.

        The programmed arrays, their effective matrices, and the
        eigenvalue/settling analysis are fixed across right-hand sides,
        so the five-step schedule runs once with *matrix-valued*
        intermediates: each INV step is a single multi-RHS
        ``np.linalg.solve`` (one factorization for the whole batch) and
        each MVM step one matmul. Gain ranging still operates per
        right-hand side (columns rerun independently, exactly like
        sequential :meth:`solve` calls).

        Results are **bit-identical** to a sequential loop of
        :meth:`solve` calls: every step goes through the shared kernel
        of :mod:`repro.core.common`, whose multi-RHS solves factor once
        but back-substitute one column at a time (see
        :class:`repro.core.common.FactoredSystem`) and whose
        contractions are shape-stable. Configurations whose
        per-operation randomness cannot be shared across a batch (MNA
        routing, output or sample-and-hold noise) transparently fall
        back to that loop.

        With ``lean=True`` the per-result payload is a
        :class:`~repro.core.solution.LeanSolveResult`: the solution and
        reference are the same bits, but the five per-step
        :class:`~repro.amc.ops.OpResult` objects, their ideal outputs,
        and the step-output metadata dicts are never constructed —
        result assembly dominates service-side time at scale (see
        ``BENCH_serving.json``).
        """
        rhs_list = [np.asarray(b, dtype=float) for b in rhs_batch]
        if not rhs_list:
            raise ValidationError("rhs_batch must contain at least one vector")
        n = self.matrix.shape[0]
        bs = np.stack([check_vector(b, "b", size=n) for b in rhs_list])
        rng = as_generator(rng)
        config = self.macro.config
        if (
            config.use_mna
            or config.opamp.output_noise_sigma_v > 0.0
            or config.sample_hold.noise_sigma_v > 0.0
        ):
            results = tuple(self.solve(b, rng) for b in bs)
            if lean:
                return tuple(LeanSolveResult.from_result(r) for r in results)
            return results

        macro = self.macro
        arrays = macro.arrays
        ops = macro.ops
        split = self.split
        par = config.parasitics
        a1, a2, a3, a4s = arrays.a1, arrays.a2, arrays.a3, arrays.a4s
        eff1 = a1.effective_matrix(par)
        eff2 = a2.effective_matrix(par)
        eff3 = a3.effective_matrix(par)
        eff4 = a4s.effective_matrix(par)
        load1, load2 = a1.load_row_sums(), a2.load_row_sums()
        load3, load4 = a3.load_row_sums(), a4s.load_row_sums()
        id1, id2 = ops._ideal_matrix(a1), ops._ideal_matrix(a2)
        id3, id4 = ops._ideal_matrix(a3), ops._ideal_matrix(a4s)
        k_sz, m_sz = arrays.upper_size, arrays.lower_size
        off_k = ops._draw_offsets(k_sz, rng)
        off_m = ops._draw_offsets(m_sz, rng)
        s_in = arrays.schur_input_scale
        a0 = config.opamp.open_loop_gain
        v_sat = config.opamp.v_sat
        conv = config.converters
        v_fs = conv.v_fs
        snh_error = config.sample_hold.gain_error
        gbwp = config.opamp.gbwp_hz

        settle = {
            1: ops._inv_settle(eff1),
            2: mvm_settling_time(
                np.asarray(a3.g_pos) + np.asarray(a3.g_neg), a3.g_unit, gbwp
            ),
            3: ops._inv_settle(eff4),
            4: mvm_settling_time(
                np.asarray(a2.g_pos) + np.asarray(a2.g_neg), a2.g_unit, gbwp
            ),
        }
        settle[5] = settle[1]

        # One INV stage each for A1 (steps 1/5) and A4s (step 3): the
        # finite-gain system is assembled and LU-factored once for the
        # whole batch; back-substitution happens per column, so results
        # stay bit-identical to per-RHS scalar solves.
        loading1 = inv_loading(load1, 1.0)
        loading4 = inv_loading(load4, s_in)
        fact1 = FactoredSystem(inv_system(eff1, loading1, a0))
        fact4 = FactoredSystem(inv_system(eff4, loading4, a0))

        def inv_step(fact, loading, off, v_in, input_scale):
            return saturate(fact.solve(inv_rhs(v_in, loading, off, input_scale)), v_sat)

        def mvm_step(eff, load, off, v_in):
            return saturate(mvm_raw(eff, load, v_in, off, a0), v_sat)

        def quantize(v, bits):
            # Shared shape-generic converter model (amc.interfaces).
            return quantize_voltages(v, bits, v_fs)

        batch = bs.shape[0]

        def run_subset(k, indices):
            f = k[:, None] * bs[indices, :split]
            g = k[:, None] * bs[indices, split:]
            v_f = quantize(f, conv.dac_bits)
            v_g = quantize(g, conv.dac_bits)
            s1, sat1 = inv_step(fact1, loading1, off_k, v_f, 1.0)
            h1 = snh_cascade(s1, snh_error)
            s2, sat2 = mvm_step(eff3, load3, off_m, h1)
            h2 = snh_cascade(s2, snh_error)
            s3, sat3 = inv_step(fact4, loading4, off_m, h2 - v_g, s_in)
            h3 = snh_cascade(s3, snh_error)
            s4, sat4 = mvm_step(eff2, load2, off_k, h3)
            h4 = snh_cascade(s4, snh_error)
            s5, sat5 = inv_step(fact1, loading1, off_k, v_f + h4, 1.0)
            outs = np.concatenate([s1, s2, s3, s4, s5], axis=1)
            peaks = np.max(np.abs(outs), axis=1)
            payload = {
                "s1": s1, "s2": s2, "s3": s3, "s4": s4, "s5": s5,
                "in1": v_f, "in2": h1, "in3": h2 - v_g, "in4": h3,
                "in5": v_f + h4, "f": f, "g": g,
                "sat": np.stack([sat1, sat2, sat3, sat4, sat5], axis=1),
            }
            return peaks, payload

        k0 = input_voltage_scale_many(bs, v_fs, self.input_fraction)
        final, final_k = auto_range_many(run_subset, k0, v_fs)
        final_sat = final["sat"]

        x_lower = quantize(final["s3"], conv.adc_bits)
        x_upper = -quantize(final["s5"], conv.adc_bits)
        x = np.concatenate([x_upper, x_lower], axis=1) / (final_k * self.scale)[:, None]
        references = solve_columns(self.matrix, bs, what="system matrix")

        if lean:
            # Same summation order as SolveResult.analog_time_s (left
            # fold from 0 over steps 1..5) so the scalar is bit-identical.
            analog_total = sum(
                (settle[1], settle[2], settle[3], settle[4], settle[5])
            )
            return tuple(
                LeanSolveResult(
                    x=x[c],
                    reference=references[c],
                    solver="blockamc-1stage",
                    saturated=bool(final_sat[c].any()),
                    analog_time_s=float(analog_total),
                    metadata={"input_scale": float(final_k[c])},
                )
                for c in range(batch)
            )

        # Exact-arithmetic per-step references (Fig. 6a curves), batched.
        reference = reference_schedule(
            id1, id2, id3, id4 / s_in, final["f"], final["g"]
        )

        # Ideal (perfect-circuit) outputs per executed step, batched.
        ideal1 = ideal_inv(id1, final["in1"])
        ideal2 = ideal_mvm(id3, final["in2"])
        ideal3 = ideal_inv(id4, final["in3"], s_in)
        ideal4 = ideal_mvm(id2, final["in4"])
        ideal5 = ideal_inv(id1, final["in5"])

        # Per-step invariants, resolved once: OpResult construction runs
        # batch x 5 times and dominates assembly time if the macro
        # properties are recomputed per result.
        step_specs = [
            ("step1:INV(A1)", "inv", final["s1"], ideal1, settle[1], a1.shape, a1.device_count),
            ("step2:MVM(A3)", "mvm", final["s2"], ideal2, settle[2], a3.shape, a3.device_count),
            ("step3:INV(A4s)", "inv", final["s3"], ideal3, settle[3], a4s.shape, a4s.device_count),
            ("step4:MVM(A2)", "mvm", final["s4"], ideal4, settle[4], a2.shape, a2.device_count),
            ("step5:INV(A1)", "inv", final["s5"], ideal5, settle[5], a1.shape, a1.device_count),
        ]
        sat_rows = final_sat.tolist()
        metadata_common = {
            "scale": self.scale,
            "split": self.split,
            "schur_scale": self.schur_scale,
            "opa_count": macro.opa_count,
            "dac_count": macro.dac_count,
            "adc_count": macro.adc_count,
            "device_count": macro.device_count,
            "dac_conversions": 2,
            "adc_conversions": 2,
        }
        results = []
        for c in range(batch):
            sat_row = sat_rows[c]
            steps = tuple(
                OpResult(
                    kind=kind,
                    label=label,
                    output=outputs[c],
                    ideal_output=ideal[c],
                    settling_time_s=settle_s,
                    saturated=sat_row[num],
                    rows=shape[0],
                    cols=shape[1],
                    opa_count=shape[0],
                    device_count=device_count,
                )
                for num, (label, kind, outputs, ideal, settle_s, shape, device_count)
                in enumerate(step_specs)
            )
            reference_steps = {name: rows[c] for name, rows in reference.items()}
            results.append(
                SolveResult(
                    x=x[c],
                    reference=references[c],
                    solver="blockamc-1stage",
                    operations=steps,
                    metadata={
                        **metadata_common,
                        "input_scale": float(final_k[c]),
                        "reference_steps": reference_steps,
                        "step_outputs": {
                            step.label: step.output for step in steps
                        },
                    },
                )
            )
        return tuple(results)

    def solve_batch(
        self,
        rhs_batch,
        rng=None,
        *,
        pipelined: bool = True,
        t_dac_s: float = 50e-9,
        t_adc_s: float = 100e-9,
        t_snh_s: float = 5e-9,
    ) -> "BatchResult":
        """Solve a batch of right-hand sides and model the macro timeline.

        The paper's double-buffered S&H banks let consecutive problems
        pipeline: while problem ``p`` converts its outputs, problem
        ``p+1`` already occupies the analog arrays. This method solves
        every system (exact results, fresh hardware noise per solve) and
        runs the discrete-event schedule for the whole batch, so both
        numerical quality and throughput come from one call.

        Parameters
        ----------
        rhs_batch:
            Iterable of right-hand-side vectors.
        rng:
            Seed or generator (shared stream across the batch).
        pipelined:
            Enable the double-buffered S&H overlap (False = single
            buffered, every stage serializes).
        t_dac_s, t_adc_s, t_snh_s:
            Converter and sample-and-hold timing assumptions.
        """
        rhs_batch = list(rhs_batch)
        if not rhs_batch:
            raise ValidationError("rhs_batch must contain at least one vector")
        rng = as_generator(rng)
        results = self.solve_many(rhs_batch, rng)
        # All solves share the macro, so the op-time profile of the first
        # result describes every pipeline slot.
        op_times = [op.settling_time_s for op in results[0].operations]
        schedule = simulate_schedule(
            op_times,
            t_dac=t_dac_s,
            t_adc=t_adc_s,
            t_snh=t_snh_s,
            n_problems=len(rhs_batch),
            pipelined=pipelined,
        )
        return BatchResult(results=results, schedule=schedule)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a pipelined batch solve.

    ``results`` holds the per-system solutions; ``schedule`` the
    discrete-event timeline of the macro (op-amp bank, DAC, ADC) for the
    whole batch, from which latency and throughput derive.
    """

    results: tuple[SolveResult, ...]
    schedule: ScheduleResult

    @property
    def throughput_solves_per_s(self) -> float:
        """Steady-state solve rate over the batch."""
        return self.schedule.throughput

    @property
    def worst_relative_error(self) -> float:
        """Largest relative error across the batch."""
        return max(result.relative_error for result in self.results)


class BlockAMCSolver:
    """Solve linear systems with a one-stage BlockAMC macro."""

    name = "blockamc-1stage"

    def __init__(
        self,
        config: HardwareConfig | None = None,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        self.config = config or HardwareConfig.ideal()
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedBlockAMC:
        """Normalize, preprocess, and program the macro for ``matrix``.

        The variation draw (if any) happens here, once; call
        :meth:`PreparedBlockAMC.solve` repeatedly for multiple ``b``.
        """
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        normalized, scale = normalize_matrix(matrix)
        blocks = prepare_blocks(normalized, self.partition)
        arrays = build_macro_arrays(blocks, self.config, rng)
        macro = BlockAMCMacro(arrays, self.config)
        return PreparedBlockAMC(
            matrix=matrix,
            scale=scale,
            macro=macro,
            split=blocks.split,
            schur_scale=blocks.schur_scale,
            input_fraction=self.input_fraction,
        )

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the arrays and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
