"""Block partitioning and Schur-complement preprocessing.

This is the digital setup phase of BlockAMC: given the (already
normalized) matrix, split it into the four blocks, compute the Schur
complement ``A4s = A4 - A3 A1^-1 A2`` in the digital domain ("it should
be calculated in advance", Sec. III-A), give ``A4s`` a private scale when
its entries exceed the conductance window, and program the four crossbar
array pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.macro import MacroArrays
from repro.crossbar.array import CrossbarArray
from repro.errors import PartitionError
from repro.utils.linalg import block_split, schur_complement
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix


@dataclass(frozen=True)
class PartitionSpec:
    """Where to split the matrix.

    ``split=None`` uses the paper's default: the leading block takes
    ``ceil(n / 2)`` rows (for even ``n`` this is the usual ``n/2``; for
    odd ``n`` the paper's ``(n+1)/2`` choice).
    """

    split: int | None = None

    def resolve(self, n: int) -> int:
        """Concrete split index for an ``n x n`` matrix."""
        if n < 2:
            raise PartitionError(f"matrix must be at least 2x2 to partition, got n={n}")
        if self.split is None:
            return (n + 1) // 2
        if not 0 < self.split < n:
            raise PartitionError(f"split must satisfy 0 < split < {n}, got {self.split}")
        return self.split


@dataclass(frozen=True)
class PreparedBlocks:
    """Digitally preprocessed blocks of one partition level.

    All blocks are in the *normalized* domain of the parent matrix;
    ``a4s`` additionally carries ``schur_scale >= 1`` such that the
    stored array holds ``a4s / schur_scale`` (entries within the
    conductance window). The matching INV input scale is
    ``1 / schur_scale``.
    """

    a1: np.ndarray
    a2: np.ndarray
    a3: np.ndarray
    a4s: np.ndarray
    split: int
    schur_scale: float

    @property
    def size(self) -> int:
        """Size of the partitioned matrix."""
        return self.a1.shape[0] + self.a4s.shape[0]


def prepare_blocks(matrix_normalized: np.ndarray, spec: PartitionSpec | None = None) -> PreparedBlocks:
    """Split a normalized matrix and compute the Schur complement.

    Parameters
    ----------
    matrix_normalized:
        Square matrix with ``max |a_ij| <= 1`` (the globally normalized
        matrix or a normalized recursive block).
    spec:
        Split selection; defaults to the half split.

    Raises
    ------
    PartitionError
        If the leading block is singular.
    """
    matrix_normalized = check_square_matrix(matrix_normalized)
    spec = spec or PartitionSpec()
    split = spec.resolve(matrix_normalized.shape[0])
    a1, a2, a3, a4 = block_split(matrix_normalized, split)
    a4s = schur_complement(a1, a2, a3, a4)
    peak = float(np.max(np.abs(a4s)))
    if peak == 0.0:
        raise PartitionError("Schur complement is identically zero; system is singular")
    schur_scale = max(1.0, peak)
    return PreparedBlocks(
        a1=a1,
        a2=a2,
        a3=a3,
        a4s=a4s,
        split=split,
        schur_scale=schur_scale,
    )


def build_macro_arrays(
    blocks: PreparedBlocks,
    config: HardwareConfig,
    rng=None,
) -> MacroArrays:
    """Program the four array pairs of one macro from prepared blocks.

    Each block receives an independent RNG child so programming errors
    are uncorrelated across arrays. Blocks are mapped pre-normalized
    (they inherit the parent matrix's normalization); ``a4s`` is stored
    divided by its private ``schur_scale`` and the macro compensates with
    the INV input conductance.
    """
    rng = as_generator(rng)

    def program(block: np.ndarray) -> CrossbarArray:
        return CrossbarArray.program(
            block,
            config.programming,
            rng,
            g_unit=config.g_unit,
            pre_normalized=True,
        )

    return MacroArrays(
        a1=program(blocks.a1),
        a2=program(blocks.a2),
        a3=program(blocks.a3),
        a4s=program(blocks.a4s / blocks.schur_scale),
        schur_input_scale=1.0 / blocks.schur_scale,
    )
