"""The paper's primary contribution: BlockAMC solvers and baselines.

- :mod:`repro.core.partition` — block partitioning and Schur-complement
  preprocessing (the digital setup phase of the algorithm);
- :mod:`repro.core.blockamc` — the one-stage BlockAMC solver (Fig. 2-4);
- :mod:`repro.core.multistage` — the two-stage (and deeper) solver
  (Fig. 5), with digital glue between macros;
- :mod:`repro.core.original` — the baseline: a single large INV circuit;
- :mod:`repro.core.batched` — trial-batched Monte-Carlo execution of the
  one-stage solvers (stacked linalg over all trials of a sweep);
- :mod:`repro.core.digital` — digital reference solvers (LU and classic
  iterative methods, used for the preconditioning experiments);
- :mod:`repro.core.refinement` — AMC-seeded iterative refinement, the
  deployment mode the paper positions AMC for;
- :mod:`repro.core.preconditioned` — flexible GMRES with a (noisy)
  analog preconditioner;
- :mod:`repro.core.precision` — compensated multi-array slicing for
  precision extension;
- :mod:`repro.core.feasibility` — the pre-flight advisor ("will this
  system solve well on AMC?").
"""

from repro.core.batched import is_batchable_config, make_batched_runner
from repro.core.blockamc import BatchResult, BlockAMCSolver
from repro.core.digital import (
    DigitalDirectSolver,
    conjugate_gradient,
    gauss_seidel,
    gmres,
    jacobi,
    richardson,
)
from repro.core.feasibility import (
    FeasibilityReport,
    Finding,
    assess_feasibility,
    recommended_stage_count,
)
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.precision import CompensatedMVM, compensated_refinement
from repro.core.preconditioned import amc_preconditioner, fgmres
from repro.core.refinement import RefinementResult, iterative_refinement
from repro.core.solution import SolveResult

__all__ = [
    "BatchResult",
    "BlockAMCSolver",
    "CompensatedMVM",
    "DigitalDirectSolver",
    "FeasibilityReport",
    "Finding",
    "MultiStageSolver",
    "OriginalAMCSolver",
    "PartitionSpec",
    "RefinementResult",
    "SolveResult",
    "amc_preconditioner",
    "assess_feasibility",
    "build_macro_arrays",
    "compensated_refinement",
    "conjugate_gradient",
    "fgmres",
    "gauss_seidel",
    "gmres",
    "is_batchable_config",
    "iterative_refinement",
    "jacobi",
    "make_batched_runner",
    "prepare_blocks",
    "recommended_stage_count",
    "richardson",
]
