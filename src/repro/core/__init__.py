"""The paper's primary contribution: BlockAMC solvers and baselines.

- :mod:`repro.core.common` — the shared analog solve kernel (input
  scaling, offsets, raw INV/MVM, saturation, gain ranging) behind every
  solver shape: scalar, multi-RHS, and trial-batched;
- :mod:`repro.core.partition` — block partitioning and Schur-complement
  preprocessing (the digital setup phase of the algorithm);
- :mod:`repro.core.blockamc` — the one-stage BlockAMC solver (Fig. 2-4);
- :mod:`repro.core.multistage` — the two-stage (and deeper) solver
  (Fig. 5), with digital glue between macros;
- :mod:`repro.core.original` — the baseline: a single large INV circuit;
- :mod:`repro.core.batched` — trial-batched Monte-Carlo execution of the
  one-stage solvers (stacked linalg over all trials of a sweep);
- :mod:`repro.core.digital` — digital reference solvers (LU and classic
  iterative methods, used for the preconditioning experiments);
- :mod:`repro.core.refinement` — AMC-seeded iterative refinement, the
  deployment mode the paper positions AMC for;
- :mod:`repro.core.preconditioned` — flexible GMRES with a (noisy)
  analog preconditioner;
- :mod:`repro.core.precision` — compensated multi-array slicing for
  precision extension;
- :mod:`repro.core.feasibility` — the pre-flight advisor ("will this
  system solve well on AMC?").

Submodules are imported lazily (PEP 562): the analog kernel in
:mod:`repro.core.common` sits *below* :mod:`repro.amc` in the layering
(``amc.ops`` delegates its physics to it), so this package ``__init__``
must not eagerly pull in the solver modules — they import ``repro.amc``
right back, which would make ``import repro.amc`` circular.
"""

from importlib import import_module

#: Public name -> defining submodule (resolved on first attribute access).
_EXPORTS = {
    "BatchResult": "repro.core.blockamc",
    "BlockAMCSolver": "repro.core.blockamc",
    "CompensatedMVM": "repro.core.precision",
    "DigitalDirectSolver": "repro.core.digital",
    "FeasibilityReport": "repro.core.feasibility",
    "Finding": "repro.core.feasibility",
    "MultiStageSolver": "repro.core.multistage",
    "OriginalAMCSolver": "repro.core.original",
    "PartitionSpec": "repro.core.partition",
    "RefinementResult": "repro.core.refinement",
    "SolveResult": "repro.core.solution",
    "amc_block_preconditioner": "repro.core.preconditioned",
    "amc_preconditioner": "repro.core.preconditioned",
    "assess_feasibility": "repro.core.feasibility",
    "build_macro_arrays": "repro.core.partition",
    "compensated_refinement": "repro.core.precision",
    "conjugate_gradient": "repro.core.digital",
    "conjugate_gradient_many": "repro.core.digital",
    "fgmres": "repro.core.preconditioned",
    "fgmres_many": "repro.core.preconditioned",
    "gauss_seidel": "repro.core.digital",
    "gauss_seidel_many": "repro.core.digital",
    "gmres": "repro.core.digital",
    "gmres_many": "repro.core.digital",
    "is_batchable_config": "repro.core.batched",
    "iterative_refinement": "repro.core.refinement",
    "jacobi": "repro.core.digital",
    "jacobi_many": "repro.core.digital",
    "make_batched_runner": "repro.core.batched",
    "prepare_blocks": "repro.core.partition",
    "recommended_stage_count": "repro.core.feasibility",
    "richardson": "repro.core.digital",
    "richardson_many": "repro.core.digital",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
