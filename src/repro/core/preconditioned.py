"""Flexible GMRES with an analog (AMC) preconditioner.

The paper frames AMC as "equivalently a preconditioner" for digital
iterative methods. A noisy, run-to-run-varying preconditioner breaks
standard preconditioned Krylov methods (they assume a *fixed* linear
operator), but **flexible GMRES** (Saad 1993 — the paper's own ref. [1]
author) tolerates a preconditioner that changes every application,
which is exactly what analog hardware with per-solve noise is.

``fgmres`` applies the user-supplied ``preconditioner(r) -> z`` (e.g. a
prepared BlockAMC solver) inside the Arnoldi loop, storing the
preconditioned vectors so the final update is exact regardless of the
preconditioner's variability.
"""

from __future__ import annotations

import numpy as np

from repro.core.digital import DEFAULT_TOL, IterativeResult
from repro.errors import SolverError
from repro.utils.validation import check_square_matrix, check_vector


def fgmres(
    matrix: np.ndarray,
    b: np.ndarray,
    preconditioner,
    x0: np.ndarray | None = None,
    tol: float = DEFAULT_TOL,
    max_iter: int | None = None,
    restart: int = 30,
) -> IterativeResult:
    """Flexible GMRES: right preconditioning with a varying operator.

    Parameters
    ----------
    matrix, b:
        The system ``A x = b``.
    preconditioner:
        Callable ``z = M(r)`` approximating ``A^-1 r``; may be noisy and
        different on every call (an analog solver qualifies).
    x0:
        Optional warm start.
    tol:
        Relative-residual target.
    max_iter:
        Total matrix-vector product budget (default ``10 n``).
    restart:
        Krylov subspace dimension between restarts.

    Returns
    -------
    IterativeResult
        With ``method="fgmres"``; ``iterations`` counts products with
        ``A`` (each also costs one preconditioner application).
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    n = b.size
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        raise SolverError("b must be non-zero")
    if restart < 1:
        raise SolverError(f"restart must be >= 1, got {restart}")
    if max_iter is None:
        max_iter = 10 * n

    x = np.zeros_like(b) if x0 is None else check_vector(x0, "x0", size=n).copy()
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "fgmres")

    total = 0
    while total < max_iter:
        r = b - matrix @ x
        beta = float(np.linalg.norm(r))
        if beta / b_norm <= tol:
            return IterativeResult(x, total, tuple(residuals), True, "fgmres")
        m = min(restart, max_iter - total)
        q = np.zeros((n, m + 1))
        z = np.zeros((n, m))  # preconditioned vectors (flexible part)
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[:, 0] = r / beta

        k_done = 0
        for k in range(m):
            z[:, k] = np.asarray(preconditioner(q[:, k]), dtype=float)
            w = matrix @ z[:, k]
            total += 1
            for i in range(k + 1):
                h[i, k] = float(q[:, i] @ w)
                w = w - h[i, k] * q[:, i]
            h[k + 1, k] = float(np.linalg.norm(w))
            if h[k + 1, k] > 1e-14:
                q[:, k + 1] = w / h[k + 1, k]
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            residuals.append(abs(float(g[k + 1])) / b_norm)
            if residuals[-1] <= tol:
                break

        # Least-squares guards against a breakdown column (e.g. a
        # degenerate preconditioner returning zero vectors).
        y, *_ = np.linalg.lstsq(h[:k_done, :k_done], g[:k_done], rcond=None)
        # Flexible update: combine the *preconditioned* basis vectors.
        x = x + z[:, :k_done] @ y
        true_res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals[-1] = true_res
        if true_res <= tol:
            return IterativeResult(x, total, tuple(residuals), True, "fgmres")

    return IterativeResult(x, total, tuple(residuals), False, "fgmres")


def amc_preconditioner(prepared, rng=None):
    """Wrap a prepared analog solver as an FGMRES preconditioner.

    Parameters
    ----------
    prepared:
        Object with ``solve(rhs, rng) -> SolveResult`` bound to the
        system matrix (``BlockAMCSolver.prepare(...)`` output).
    rng:
        Generator driving the per-application hardware noise.

    Returns
    -------
    callable
        ``z = M(r)`` suitable for :func:`fgmres`.
    """
    generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    def apply(r: np.ndarray) -> np.ndarray:
        return prepared.solve(r, rng=generator).x

    return apply
