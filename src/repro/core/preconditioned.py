"""Flexible GMRES with an analog (AMC) preconditioner.

The paper frames AMC as "equivalently a preconditioner" for digital
iterative methods. A noisy, run-to-run-varying preconditioner breaks
standard preconditioned Krylov methods (they assume a *fixed* linear
operator), but **flexible GMRES** (Saad 1993 — the paper's own ref. [1]
author) tolerates a preconditioner that changes every application,
which is exactly what analog hardware with per-solve noise is.

``fgmres`` applies the user-supplied ``preconditioner(r) -> z`` (e.g. a
prepared BlockAMC solver) inside the Arnoldi loop, storing the
preconditioned vectors so the final update is exact regardless of the
preconditioner's variability.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import get_backend
from repro.core.digital import (
    BREAKDOWN_TOL,
    DEFAULT_TOL,
    IterativeResult,
    setup_many,
)
from repro.errors import SolverError
from repro.utils.validation import check_square_matrix, check_vector


def fgmres(
    matrix: np.ndarray,
    b: np.ndarray,
    preconditioner,
    x0: np.ndarray | None = None,
    tol: float = DEFAULT_TOL,
    max_iter: int | None = None,
    restart: int = 30,
    backend=None,
) -> IterativeResult:
    """Flexible GMRES: right preconditioning with a varying operator.

    Parameters
    ----------
    matrix, b:
        The system ``A x = b``.
    preconditioner:
        Callable ``z = M(r)`` approximating ``A^-1 r``; may be noisy and
        different on every call (an analog solver qualifies).
    x0:
        Optional warm start.
    tol:
        Relative-residual target.
    max_iter:
        Total matrix-vector product budget (default ``10 n``).
    restart:
        Krylov subspace dimension between restarts.
    backend:
        Optional precision tier (a :mod:`repro.core.backend` name):
        ``matrix``/``b``/``x0`` are cast to the backend dtype on entry.
        ``None`` (default) leaves the float64 path untouched.

    Returns
    -------
    IterativeResult
        With ``method="fgmres"``; ``iterations`` counts products with
        ``A`` (each also costs one preconditioner application).
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    if backend is not None:
        bk = get_backend(backend)
        matrix, b = bk.cast(matrix), bk.cast(b)
    n = b.size
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        raise SolverError("b must be non-zero")
    if restart < 1:
        raise SolverError(f"restart must be >= 1, got {restart}")
    if max_iter is None:
        max_iter = 10 * n

    x = np.zeros_like(b) if x0 is None else check_vector(x0, "x0", size=n).copy()
    if backend is not None:
        x = get_backend(backend).cast(x)
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "fgmres")

    total = 0
    while total < max_iter:
        r = b - matrix @ x
        beta = float(np.linalg.norm(r))
        if beta / b_norm <= tol:
            return IterativeResult(x, total, tuple(residuals), True, "fgmres")
        m = min(restart, max_iter - total)
        q = np.zeros((n, m + 1))
        z = np.zeros((n, m))  # preconditioned vectors (flexible part)
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[:, 0] = r / beta

        k_done = 0
        for k in range(m):
            z[:, k] = np.asarray(preconditioner(q[:, k]), dtype=float)
            w = matrix @ z[:, k]
            total += 1
            for i in range(k + 1):
                h[i, k] = float(q[:, i] @ w)
                w = w - h[i, k] * q[:, i]
            h[k + 1, k] = float(np.linalg.norm(w))
            # Happy breakdown: the (preconditioned) Krylov space is
            # exhausted — terminate the cycle instead of iterating on a
            # zero basis vector (which would also hand the *next*
            # preconditioner application an all-zero input; an analog
            # preconditioner rejects that outright). Same rule as
            # :func:`repro.core.digital.gmres`.
            breakdown = h[k + 1, k] <= BREAKDOWN_TOL
            if not breakdown:
                q[:, k + 1] = w / h[k + 1, k]
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            residuals.append(abs(float(g[k + 1])) / b_norm)
            if residuals[-1] <= tol or breakdown:
                break

        # Least-squares guards against a breakdown column (e.g. a
        # degenerate preconditioner returning zero vectors).
        y, *_ = np.linalg.lstsq(h[:k_done, :k_done], g[:k_done], rcond=None)
        # Flexible update: combine the *preconditioned* basis vectors.
        x = x + z[:, :k_done] @ y
        true_res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals[-1] = true_res
        if true_res <= tol:
            return IterativeResult(x, total, tuple(residuals), True, "fgmres")

    return IterativeResult(x, total, tuple(residuals), False, "fgmres")


class _FgmresCycle:
    """One column's Krylov state for a single restart cycle.

    Arrays keep the exact scalar :func:`fgmres` layout — ``q``/``z`` are
    ``(n, m + 1)``/``(n, m)`` with *column* views feeding the dots — so
    every per-column operation reproduces the scalar call bit for bit
    (strided-vs-contiguous ``dot`` inputs differ in low bits; see
    :mod:`repro.core.digital`).
    """

    __slots__ = ("q", "z", "h", "cs", "sn", "g", "m", "k_done")

    def __init__(self, n: int, m: int):
        self.q = np.zeros((n, m + 1))
        self.z = np.zeros((n, m))
        self.h = np.zeros((m + 1, m))
        self.cs = np.zeros(m)
        self.sn = np.zeros(m)
        self.g = np.zeros(m + 1)
        self.m = m
        self.k_done = 0


def fgmres_many(
    matrix: np.ndarray,
    bs,
    preconditioner,
    x0=None,
    tol: float = DEFAULT_TOL,
    max_iter: int | None = None,
    restart: int = 30,
) -> tuple[IterativeResult, ...]:
    """Lockstep flexible GMRES over a row-stacked block of systems.

    Solves ``A x_j = bs[j]`` for every row, advancing all columns one
    Arnoldi step at a time. The point of the lockstep: each step's
    preconditioner applications — the expensive part when the
    preconditioner is an analog solver — are gathered into **one block
    call** ``Z = M(R)`` on a ``(rows, n)`` block (see
    :func:`amc_block_preconditioner`, which routes it through a prepared
    solver's multi-RHS ``solve_many``), instead of ``rows`` scalar
    applications per step.

    Per-column arithmetic is exactly :func:`fgmres`'s (scalar-layout
    Krylov bases, per-column Givens/residual bookkeeping, per-column
    restart budgets and convergence), so results are **bit-identical to
    a sequential loop of scalar** :func:`fgmres` **calls** whenever the
    block preconditioner is row-wise identical to the scalar one — the
    prepared solvers' batch-invariance contract. Preconditioners with
    per-application noise carry no such guarantee (their draw order
    depends on scheduling, exactly as in the serving layer).

    Parameters mirror :func:`fgmres`; ``bs`` is ``(batch, n)`` and
    ``x0`` may be ``None``, ``(n,)``, or ``(batch, n)``. Returns one
    :class:`~repro.core.digital.IterativeResult` per row.
    """
    matrix, bs, x_block, b_norms = setup_many(matrix, bs, x0)
    batch, n = bs.shape
    if restart < 1:
        raise SolverError(f"restart must be >= 1, got {restart}")
    if max_iter is None:
        max_iter = 10 * n

    hist = [
        [float(np.linalg.norm(bs[j] - matrix @ x_block[j])) / b_norms[j]]
        for j in range(batch)
    ]
    total = np.zeros(batch, dtype=int)
    conv = np.array([hist[j][0] <= tol for j in range(batch)])
    active = [j for j in range(batch) if not conv[j]]

    while active:
        # Open a restart cycle for every still-active column.
        states: dict[int, _FgmresCycle] = {}
        opened = []
        for j in active:
            r = bs[j] - matrix @ x_block[j]
            beta = float(np.linalg.norm(r))
            if beta / b_norms[j] <= tol:
                conv[j] = True
                continue
            cycle = _FgmresCycle(n, min(restart, max_iter - int(total[j])))
            cycle.g[0] = beta
            cycle.q[:, 0] = r / beta
            states[j] = cycle
            opened.append(j)
        active = opened

        # Advance all open cycles in lockstep; columns whose residual
        # estimate hits tol (or whose cycle fills) wait at the barrier.
        live = list(active)
        k = 0
        while live:
            block = np.stack([states[j].q[:, k] for j in live])
            z_rows = np.asarray(preconditioner(block), dtype=float)
            if z_rows.shape != (len(live), n):
                raise SolverError(
                    f"block preconditioner must return a ({len(live)}, {n}) "
                    f"block, got {z_rows.shape}"
                )
            finished = []
            for idx, j in enumerate(live):
                st = states[j]
                q, z, h = st.q, st.z, st.h
                cs, sn, g = st.cs, st.sn, st.g
                z[:, k] = z_rows[idx]
                w = matrix @ z[:, k]
                total[j] += 1
                for i in range(k + 1):
                    h[i, k] = float(q[:, i] @ w)
                    w = w - h[i, k] * q[:, i]
                h[k + 1, k] = float(np.linalg.norm(w))
                # Happy breakdown: finish this column's cycle (same rule
                # as the scalar path above) so the next lockstep tick
                # never stacks a zero Krylov row into the block handed
                # to the preconditioner.
                breakdown = h[k + 1, k] <= BREAKDOWN_TOL
                if not breakdown:
                    q[:, k + 1] = w / h[k + 1, k]
                for i in range(k):
                    temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                    h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                    h[i, k] = temp
                denom = float(np.hypot(h[k, k], h[k + 1, k]))
                if denom == 0.0:
                    cs[k], sn[k] = 1.0, 0.0
                else:
                    cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
                h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
                h[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]
                st.k_done = k + 1
                hist[j].append(abs(float(g[k + 1])) / b_norms[j])
                if hist[j][-1] <= tol or st.k_done == st.m or breakdown:
                    finished.append(j)
            for j in finished:
                live.remove(j)
            k += 1

        # Close the cycle per column: flexible update from the stored
        # preconditioned basis, then the true-residual check.
        next_active = []
        for j in active:
            st = states[j]
            kd = st.k_done
            y, *_ = np.linalg.lstsq(st.h[:kd, :kd], st.g[:kd], rcond=None)
            x_block[j] = x_block[j] + st.z[:, :kd] @ y
            true_res = float(np.linalg.norm(bs[j] - matrix @ x_block[j])) / b_norms[j]
            hist[j][-1] = true_res
            if true_res <= tol:
                conv[j] = True
            elif total[j] < max_iter:
                next_active.append(j)
        active = next_active

    return tuple(
        IterativeResult(
            x_block[j].copy(), int(total[j]), tuple(hist[j]), bool(conv[j]), "fgmres"
        )
        for j in range(batch)
    )


def amc_block_preconditioner(prepared, rng=None):
    """Wrap a prepared analog solver's multi-RHS path for :func:`fgmres_many`.

    Parameters
    ----------
    prepared:
        Object with ``solve_many(rhs_batch, rng, lean=True)`` bound to
        the system matrix (``BlockAMCSolver.prepare(...)`` or
        ``MultiStageSolver.prepare(...)`` output).
    rng:
        Generator driving per-application hardware noise (only consumed
        by configurations that draw fresh noise per operation).

    Returns
    -------
    callable
        ``Z = M(R)`` mapping a row-stacked ``(rows, n)`` block to the
        analog solutions, row-wise bit-identical to
        :func:`amc_preconditioner` applications for batch-invariant
        (coalescible) configurations.
    """
    generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    def apply(rows: np.ndarray) -> np.ndarray:
        results = prepared.solve_many(np.asarray(rows, dtype=float), generator, lean=True)
        return np.stack([result.x for result in results])

    return apply


def amc_preconditioner(prepared, rng=None):
    """Wrap a prepared analog solver as an FGMRES preconditioner.

    Parameters
    ----------
    prepared:
        Object with ``solve(rhs, rng) -> SolveResult`` bound to the
        system matrix (``BlockAMCSolver.prepare(...)`` output).
    rng:
        Generator driving the per-application hardware noise.

    Returns
    -------
    callable
        ``z = M(r)`` suitable for :func:`fgmres`.
    """
    generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    def apply(r: np.ndarray) -> np.ndarray:
        return prepared.solve(r, rng=generator).x

    return apply
