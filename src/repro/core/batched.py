"""Trial-batched Monte-Carlo execution of the AMC solvers.

The paper's headline results (Figs. 6-9) re-run the full analog pipeline
for every (size, trial, solver) triple. Per trial the pipeline is a
handful of small dense linear-algebra operations, so the sequential sweep
is dominated by Python and LAPACK call overhead, not arithmetic. This
module stacks all trials of one size into ``(trials, n, n)`` tensors and
runs the *entire* pipeline — normalization, Schur preprocessing,
programming variation, the five-step schedule with gain ranging,
converter quantization, settling-time eigenvalue analysis, and the
digital reference solve — through NumPy's batched linalg.

Equivalence contract (enforced by tests):

- every trial consumes its own ``default_rng(hardware_seed)`` in exactly
  the order the sequential path does (programming draws, then op-amp
  offset draws at each column size's first use, then per-operation
  output-noise and sample-and-hold noise draws in schedule order —
  fresh per gain-ranging attempt, exactly like the scalar reruns), so
  all random samples are **bit-identical** to
  :func:`repro.analysis.accuracy.run_trials`;
- the physics itself is the shared kernel of :mod:`repro.core.common`
  (the same functions the scalar path calls, evaluated per-slice through
  shape-stable contractions and stacked LAPACK), so results are
  **bit-identical** to the sequential path — not merely close
  (``tests/test_kernel_equivalence.py`` asserts exact equality).

All three parasitic fidelities are supported: ideal and first-order
models are shape-generic, and exact extraction routes through
:func:`repro.crossbar.parasitics.exact_effective_matrix_batch`, whose
per-trial results are bit-identical to the scalar Schur engine.
Configurations the batched engine cannot express (MNA routing,
write-and-verify programming, quantized targets, stuck-at faults) are
detected by :func:`make_batched_runner` returning ``None``; callers
fall back to the sequential path.
"""

from __future__ import annotations

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import quantize_voltages
from repro.circuits.dynamics import DEFAULT_EPSILON
from repro.core.blockamc import BlockAMCSolver
from repro.core.common import (
    auto_range_many,
    draw_offsets_batch,
    input_voltage_scale_many,
    inv_raw,
    mvm_raw,
    saturate,
    solve_slices,
)
from repro.core.original import OriginalAMCSolver
from repro.crossbar.parasitics import (
    exact_effective_matrix_batch,
    first_order_effective_matrix,
)
from repro.devices.variations import GaussianVariation, RelativeGaussianVariation
from repro.errors import PartitionError, ValidationError

__all__ = ["TrialOutcome", "make_batched_runner", "is_batchable_config"]


class TrialOutcome:
    """Per-trial scalar outcomes of one batched solve.

    Mirrors the fields :class:`repro.analysis.accuracy.AccuracyRecord`
    needs from a :class:`~repro.core.solution.SolveResult`.
    """

    __slots__ = ("relative_error", "saturated", "analog_time_s")

    def __init__(self, relative_error: float, saturated: bool, analog_time_s: float):
        self.relative_error = relative_error
        self.saturated = saturated
        self.analog_time_s = analog_time_s


def is_batchable_config(config: HardwareConfig) -> bool:
    """True when the batched engine reproduces this configuration exactly.

    Output-referred op-amp noise and sample-and-hold noise are covered:
    the batched path draws them per trial, per operation, per ranging
    attempt from each trial's own generator in schedule order — the
    exact stream the scalar path consumes (see ``_NoiseDraws``).
    """
    programming = config.programming
    return (
        not config.use_mna
        and not programming.use_write_verify
        and not programming.quantize
        and programming.faults.is_trivial
    )


def make_batched_runner(solver):
    """Return a batched runner for ``solver``, or ``None`` if unsupported.

    Supported solvers are :class:`~repro.core.original.OriginalAMCSolver`
    and one-stage :class:`~repro.core.blockamc.BlockAMCSolver` with a
    batchable :class:`~repro.amc.config.HardwareConfig`. The runner
    exposes ``run(matrices, bs, hardware_seeds) -> list[TrialOutcome]``.
    """
    if isinstance(solver, OriginalAMCSolver) and is_batchable_config(solver.config):
        return _BatchedOriginalAMC(solver)
    if isinstance(solver, BlockAMCSolver) and is_batchable_config(solver.config):
        return _BatchedBlockAMC(solver)
    return None


# ----------------------------------------------------------------------
# shared batched building blocks
# ----------------------------------------------------------------------


def _normalize_batch(matrices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`repro.crossbar.mapping.normalize_matrix`."""
    scale = np.max(np.abs(matrices), axis=(1, 2))
    if np.any(scale == 0.0):
        raise ValidationError("cannot normalize an all-zero matrix")
    return matrices / scale[:, None, None], scale


def _program_batch(blocks: np.ndarray, config: HardwareConfig, rngs) -> tuple:
    """Batched programming pipeline for one block position.

    ``blocks`` is ``(trials, r, c)`` of pre-normalized targets. Per trial
    the variation model draws from that trial's own generator, in the
    same (positive array, then negative array) order as
    :meth:`repro.crossbar.array.CrossbarArray.program`, so the samples
    are bit-identical to the sequential path. For the built-in Gaussian
    family only the *noise* is drawn per trial (one generator call per
    array, same stream consumption); the where/clip arithmetic runs once
    over the whole stack.
    """
    g_unit = config.g_unit
    device = config.programming.device
    variation = config.programming.variation
    target_pos = device.clip(np.clip(blocks, 0.0, None) * g_unit)
    target_neg = device.clip(np.clip(-blocks, 0.0, None) * g_unit)
    shape = blocks.shape[1:]

    if isinstance(variation, (GaussianVariation, RelativeGaussianVariation)):
        sigma = (
            variation.sigma
            if isinstance(variation, GaussianVariation)
            else variation.sigma_rel
        )
        noise_pos = np.empty_like(target_pos)
        noise_neg = np.empty_like(target_neg)
        for t, rng in enumerate(rngs):
            noise_pos[t] = rng.normal(0.0, sigma, size=shape)
            noise_neg[t] = rng.normal(0.0, sigma, size=shape)
        if isinstance(variation, GaussianVariation):
            g_pos = np.where(target_pos > 0.0, target_pos + noise_pos, target_pos)
            g_neg = np.where(target_neg > 0.0, target_neg + noise_neg, target_neg)
        else:
            g_pos = np.where(
                target_pos > 0.0, target_pos * (1.0 + noise_pos), target_pos
            )
            g_neg = np.where(
                target_neg > 0.0, target_neg * (1.0 + noise_neg), target_neg
            )
        return np.clip(g_pos, 0.0, None), np.clip(g_neg, 0.0, None)

    g_pos = np.empty_like(target_pos)
    g_neg = np.empty_like(target_neg)
    for t, rng in enumerate(rngs):
        g_pos[t] = variation.apply(target_pos[t], rng)
        g_neg[t] = variation.apply(target_neg[t], rng)
    return g_pos, g_neg


class _ArrayBatch:
    """The batched analog of one :class:`CrossbarArray` across trials."""

    def __init__(self, blocks: np.ndarray, config: HardwareConfig, rngs):
        self.config = config
        g_pos, g_neg = _program_batch(blocks, config, rngs)
        g_unit = config.g_unit
        parasitics = config.parasitics
        if parasitics.is_ideal:
            eff_pos, eff_neg = g_pos, g_neg
        elif parasitics.fidelity == "first_order":
            # The scalar model is shape-generic over a leading trials axis.
            eff_pos = first_order_effective_matrix(
                g_pos, parasitics.r_wire, parasitics.alpha
            )
            eff_neg = first_order_effective_matrix(
                g_neg, parasitics.r_wire, parasitics.alpha
            )
        else:  # exact: batched Schur, bit-identical per trial to the
            # scalar engine (positive array first, like CrossbarArray).
            eff_pos = exact_effective_matrix_batch(g_pos, parasitics.r_wire)
            eff_neg = exact_effective_matrix_batch(g_neg, parasitics.r_wire)
        # Backend cast (identity on the default float64 tier): the
        # programming/parasitics pipeline above always computes float64;
        # only the assembled analog operands drop to the tier dtype.
        bk = config.resolve_backend()
        # Settling analysis stays on the float64 effectives (like the
        # scalar ops, which analyze before casting) so timing metadata
        # is tier-independent.
        self._settle_effective = (eff_pos - eff_neg) / g_unit  # (T, r, c)
        self.effective = bk.cast(self._settle_effective)
        g_total = g_pos + g_neg
        self.load_row_sums = bk.cast(g_total.sum(axis=2) / g_unit)  # (T, r)
        self.max_row_total = g_total.sum(axis=2).max(axis=1)  # (T,)
        self.rows = blocks.shape[1]
        self.cols = blocks.shape[2]

    def mvm_settle(self) -> np.ndarray:
        """Batched :func:`repro.circuits.dynamics.mvm_settling_time`."""
        g_fb = self.config.g_unit
        gbwp = self.config.opamp.gbwp_hz
        noise_gain = 1.0 + (g_fb + self.max_row_total) / g_fb
        tau = noise_gain / (2.0 * np.pi * gbwp)
        return np.log(1.0 / DEFAULT_EPSILON) * tau

    def inv_settle(self) -> np.ndarray:
        """Batched INV settling times (one stacked ``eigvals`` call)."""
        gbwp = self.config.opamp.gbwp_hz
        margins = np.min(np.linalg.eigvals(self._settle_effective).real, axis=1)
        with np.errstate(divide="ignore"):
            tau = (1.0 + 1.0 / margins) / (2.0 * np.pi * gbwp)
        return np.where(margins <= 0.0, np.inf, np.log(1.0 / DEFAULT_EPSILON) * tau)


#: The converter model is shape-generic; reuse the single implementation
#: from amc.interfaces so the quantizer has exactly one definition.
_quantize_batch = quantize_voltages


class _NoiseDraws:
    """Per-trial fresh-noise draws in exact scalar stream order.

    The scalar path draws output-referred op-amp noise after every
    operation and sample-and-hold noise after every buffer transfer —
    fresh on each gain-ranging attempt, from the trial's own generator.
    These helpers replay that consumption for the *active* trial subset
    only (rescaled trials redraw, settled trials' generators stay
    untouched), which is what keeps the batched engine bit-identical to
    per-trial scalar ranging loops.
    """

    def __init__(self, rngs, config: HardwareConfig):
        self.rngs = rngs
        self.output_sigma = config.opamp.output_noise_sigma_v
        self.snh_sigma = config.sample_hold.noise_sigma_v
        self.snh_gain = 1.0 + config.sample_hold.gain_error

    def _rows(self, indices, sigma: float, size: int) -> np.ndarray:
        out = np.empty((len(indices), size))
        for j, t in enumerate(indices):
            out[j] = self.rngs[t].normal(0.0, sigma, size=size)
        return out

    def output(self, indices, raw: np.ndarray) -> np.ndarray:
        """Add per-operation output noise (scalar ``_add_output_noise``).

        Draws stay float64 (identical streams across precision tiers);
        the sum is cast back to the operating dtype (no-op on float64).
        """
        if self.output_sigma == 0.0:
            return raw
        noisy = raw + self._rows(indices, self.output_sigma, raw.shape[1])
        return noisy.astype(raw.dtype, copy=False)

    def snh_pair(self, indices, voltages: np.ndarray) -> np.ndarray:
        """Two S&H transfers (output bank then input bank), with noise.

        Noise-free this is exactly :func:`repro.core.common.snh_cascade`
        (two successive gain products); with noise each transfer adds
        its own fresh draw, like the two scalar ``SampleHold`` stages.
        """
        held = voltages * self.snh_gain
        if self.snh_sigma > 0.0:
            held = held + self._rows(indices, self.snh_sigma, held.shape[1])
        held = held * self.snh_gain
        if self.snh_sigma > 0.0:
            held = held + self._rows(indices, self.snh_sigma, held.shape[1])
        return held.astype(voltages.dtype, copy=False)


class _LazyOffsets:
    """Offset columns drawn at first use, like the scalar schedule.

    The scalar ``AMCOperations`` draws one offset column per distinct
    size at that size's *first operation* and caches it for the rest of
    the trial — and with per-operation noise enabled, noise draws from
    the same generator interleave between those first uses. Drawing
    lazily (size ``k`` at step 1, size ``m`` at step 2) therefore keeps
    every trial's stream in scalar order whether or not noise is on.
    The first ranging attempt covers all trials, so each size's draw
    happens exactly once per trial.
    """

    def __init__(self, sigma: float, rngs):
        self.sigma = sigma
        self.rngs = rngs
        self._by_size: dict[int, np.ndarray | None] = {}

    def take(self, size: int, indices) -> np.ndarray | None:
        if size not in self._by_size:
            self._by_size[size] = draw_offsets_batch(self.sigma, [size], self.rngs)[
                size
            ]
        return _take(self._by_size[size], indices)


class _OpAccumulator:
    """Per-trial step telemetry (peaks, saturation flags, settle sums).

    Gain-ranging reruns re-execute individual trials, and only the
    accepted attempt's telemetry survives in the sequential path, so
    :meth:`begin` resets the rerun trials before their steps re-register
    through :meth:`add_for`.
    """

    def __init__(self, trials: int, v_sat: float):
        self.saturated = np.zeros(trials, dtype=bool)
        self.settle = np.zeros(trials)
        self.v_sat = v_sat

    def begin(self, indices: np.ndarray) -> None:
        """Start a (re)run attempt for the trial subset ``indices``."""
        self.saturated[indices] = False
        self.settle[indices] = 0.0

    def add_for(self, indices: np.ndarray, raw: np.ndarray, settle) -> np.ndarray:
        """Register one step's raw outputs; returns the (clipped) outputs."""
        out, clipped = saturate(raw, self.v_sat)
        self.saturated[indices] |= clipped
        self.settle[indices] = self.settle[indices] + settle
        return out


def _relative_errors(
    matrices: np.ndarray, bs: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    """Batched paper Eq. 6 error against the digital reference solve.

    References go through the kernel's per-slice solve so each trial's
    reference is bit-identical to the scalar path's.
    """
    reference = solve_slices(matrices, bs, what="system matrix")
    return np.sum(np.abs(xs - reference), axis=1) / np.sum(np.abs(reference), axis=1)


# ----------------------------------------------------------------------
# solver-specific runners
# ----------------------------------------------------------------------


class _BatchedOriginalAMC:
    """All trials of the monolithic INV solver in stacked linalg."""

    def __init__(self, solver: OriginalAMCSolver):
        self.config = solver.config
        self.input_fraction = solver.input_fraction

    def run(self, matrices: np.ndarray, bs: np.ndarray, hardware_seeds) -> list:
        config = self.config
        rngs = [np.random.default_rng(seed) for seed in hardware_seeds]
        trials, n = bs.shape
        normalized, scale = _normalize_batch(matrices)
        array = _ArrayBatch(normalized, config, rngs)
        offsets = _LazyOffsets(config.opamp.input_offset_sigma_v, rngs)
        noise = _NoiseDraws(rngs, config)
        inv_settle = array.inv_settle()

        conv = config.converters
        v_fs = conv.v_fs
        v_sat = config.opamp.v_sat
        acc = _OpAccumulator(trials, v_sat)
        a0 = config.opamp.open_loop_gain
        cast = config.resolve_backend().cast

        def run_subset(k, indices):
            acc.begin(indices)
            sub = _ArrayView(array, indices)
            v_in = cast(_quantize_batch(k[:, None] * bs[indices], conv.dac_bits, v_fs))
            raw = noise.output(
                indices,
                inv_raw(
                    sub.effective,
                    sub.load_row_sums,
                    v_in,
                    cast(offsets.take(n, indices)),
                    1.0,
                    a0,
                ),
            )
            out = acc.add_for(indices, raw, inv_settle[indices])
            peaks = np.max(np.abs(out), axis=1)
            return peaks, {"out": out}

        k0 = input_voltage_scale_many(bs, v_fs, self.input_fraction)
        final, k = auto_range_many(run_subset, k0, v_fs)

        x = -_quantize_batch(final["out"], conv.adc_bits, v_fs) / cast(k * scale)[:, None]
        errors = _relative_errors(matrices, bs, x)
        return [
            TrialOutcome(float(errors[t]), bool(acc.saturated[t]), float(acc.settle[t]))
            for t in range(trials)
        ]


class _BatchedBlockAMC:
    """All trials of the one-stage BlockAMC schedule in stacked linalg."""

    def __init__(self, solver: BlockAMCSolver):
        self.config = solver.config
        self.partition = solver.partition
        self.input_fraction = solver.input_fraction

    def run(self, matrices: np.ndarray, bs: np.ndarray, hardware_seeds) -> list:
        config = self.config
        rngs = [np.random.default_rng(seed) for seed in hardware_seeds]
        trials, n = bs.shape
        normalized, scale = _normalize_batch(matrices)

        # Digital Schur preprocessing (prepare_blocks, batched).
        split = self.partition.resolve(n)
        a1 = normalized[:, :split, :split]
        a2 = normalized[:, :split, split:]
        a3 = normalized[:, split:, :split]
        a4 = normalized[:, split:, split:]
        try:
            a4s = a4 - a3 @ np.linalg.solve(a1, a2)
        except np.linalg.LinAlgError as exc:
            raise PartitionError(f"leading block A1 is singular: {exc}") from exc
        peak_a4s = np.max(np.abs(a4s), axis=(1, 2))
        if np.any(peak_a4s == 0.0):
            raise PartitionError("Schur complement is identically zero")
        schur_scale = np.maximum(1.0, peak_a4s)
        schur_input_scale = 1.0 / schur_scale

        # Programming order matches build_macro_arrays: a1, a2, a3, a4s.
        arr1 = _ArrayBatch(a1, config, rngs)
        arr2 = _ArrayBatch(a2, config, rngs)
        arr3 = _ArrayBatch(a3, config, rngs)
        arr4s = _ArrayBatch(a4s / schur_scale[:, None, None], config, rngs)

        k_size, m_size = split, n - split
        # Offsets draw lazily in first-use order — step 1 (size k),
        # step 2 (size m) — so per-operation noise draws interleave at
        # the same stream positions as the scalar schedule.
        offsets = _LazyOffsets(config.opamp.input_offset_sigma_v, rngs)
        noise = _NoiseDraws(rngs, config)

        settle1 = arr1.inv_settle()
        settle2 = arr3.mvm_settle()
        settle3 = arr4s.inv_settle()
        settle4 = arr2.mvm_settle()

        conv = config.converters
        v_fs = conv.v_fs
        v_sat = config.opamp.v_sat
        acc = _OpAccumulator(trials, v_sat)
        a0 = config.opamp.open_loop_gain
        cast = config.resolve_backend().cast

        def run_subset(k, indices):
            acc.begin(indices)
            f = k[:, None] * bs[indices, :split]
            g = k[:, None] * bs[indices, split:]
            v_f = cast(_quantize_batch(f, conv.dac_bits, v_fs))
            v_g = cast(_quantize_batch(g, conv.dac_bits, v_fs))

            def view(arr):
                return _ArrayView(arr, indices)

            a1, a2, a3, a4s = view(arr1), view(arr2), view(arr3), view(arr4s)
            # Stream order per trial matches the scalar schedule exactly:
            # offsets(k), noise1, S&H x2, offsets(m), noise2, S&H x2, ...
            off_k = cast(offsets.take(k_size, indices))
            s1 = acc.add_for(
                indices,
                noise.output(
                    indices,
                    inv_raw(a1.effective, a1.load_row_sums, v_f, off_k, 1.0, a0),
                ),
                settle1[indices],
            )
            h1 = noise.snh_pair(indices, s1)
            off_m = cast(offsets.take(m_size, indices))
            s2 = acc.add_for(
                indices,
                noise.output(
                    indices,
                    mvm_raw(a3.effective, a3.load_row_sums, h1, off_m, a0),
                ),
                settle2[indices],
            )
            h2 = noise.snh_pair(indices, s2)
            s3 = acc.add_for(
                indices,
                noise.output(
                    indices,
                    inv_raw(
                        a4s.effective,
                        a4s.load_row_sums,
                        h2 - v_g,
                        off_m,
                        schur_input_scale[indices],
                        a0,
                    ),
                ),
                settle3[indices],
            )
            h3 = noise.snh_pair(indices, s3)
            s4 = acc.add_for(
                indices,
                noise.output(
                    indices,
                    mvm_raw(a2.effective, a2.load_row_sums, h3, off_k, a0),
                ),
                settle4[indices],
            )
            h4 = noise.snh_pair(indices, s4)
            s5 = acc.add_for(
                indices,
                noise.output(
                    indices,
                    inv_raw(a1.effective, a1.load_row_sums, v_f + h4, off_k, 1.0, a0),
                ),
                settle1[indices],
            )
            peaks = np.max(
                np.abs(np.concatenate([s1, s2, s3, s4, s5], axis=1)), axis=1
            )
            x_lower = _quantize_batch(s3, conv.adc_bits, v_fs)
            x_upper = -_quantize_batch(s5, conv.adc_bits, v_fs)
            return peaks, {"x": np.concatenate([x_upper, x_lower], axis=1)}

        k0 = input_voltage_scale_many(bs, v_fs, self.input_fraction)
        final, k = auto_range_many(run_subset, k0, v_fs)

        x = final["x"] / cast(k * scale)[:, None]
        errors = _relative_errors(matrices, bs, x)
        return [
            TrialOutcome(float(errors[t]), bool(acc.saturated[t]), float(acc.settle[t]))
            for t in range(trials)
        ]


# ----------------------------------------------------------------------
# subset plumbing for gain-ranging reruns
# ----------------------------------------------------------------------


class _ArrayView:
    """Trial-subset view of an :class:`_ArrayBatch` (no copies of math)."""

    def __init__(self, array: _ArrayBatch, indices: np.ndarray):
        self.effective = array.effective[indices]
        self.load_row_sums = array.load_row_sums[indices]


def _take(values: np.ndarray | None, indices: np.ndarray) -> np.ndarray | None:
    return None if values is None else values[indices]
