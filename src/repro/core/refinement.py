"""AMC-seeded iterative refinement.

The paper argues AMC's role is to provide "a seed solution (or
equivalently as a preconditioner) for digital computers" (Sec. IV). This
module implements the standard mixed-precision refinement loop with the
analog solver as the inner (approximate) solver:

    x_0 = 0
    repeat: r_k = b - A x_k         (digital, exact)
            d_k = AMC_solve(r_k)     (analog, approximate)
            x_{k+1} = x_k + d_k

The loop contracts whenever the analog solver's relative error is below
one, so even a ~10% accurate analog solution reaches float precision in a
handful of iterations — each costing one O(n^2) digital residual instead
of the O(n^3) direct solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_square_matrix, check_vector

DEFAULT_REFINEMENT_TOL = 1e-8


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of the analog-seeded refinement loop.

    ``residuals[k]`` is the relative residual before iteration ``k``
    (``residuals[0]`` is 1 for the zero initial guess).
    """

    x: np.ndarray
    iterations: int
    residuals: tuple[float, ...]
    converged: bool

    @property
    def final_residual(self) -> float:
        """Relative residual of the returned solution."""
        return self.residuals[-1]

    @property
    def contraction_rate(self) -> float:
        """Geometric-mean residual reduction per iteration."""
        if self.iterations == 0 or self.residuals[0] == 0.0:
            return 0.0
        ratio = self.residuals[-1] / self.residuals[0]
        return float(ratio ** (1.0 / self.iterations))


def iterative_refinement(
    inner_solve,
    matrix: np.ndarray,
    b: np.ndarray,
    *,
    tol: float = DEFAULT_REFINEMENT_TOL,
    max_iterations: int = 50,
) -> RefinementResult:
    """Refine an approximate solver to digital precision.

    Parameters
    ----------
    inner_solve:
        Callable ``inner_solve(rhs) -> x_approx`` — typically
        ``lambda r: prepared.solve(r, rng).x`` for a prepared AMC solver
        (so programming happens once, as in hardware).
    matrix, b:
        The system to solve.
    tol:
        Relative-residual convergence target.
    max_iterations:
        Refinement iteration budget.

    Returns
    -------
    RefinementResult
        With ``converged=False`` if the analog solver is too inaccurate
        to contract (residual stagnates or grows until the budget ends).
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        raise ValueError("b must be non-zero")

    x = np.zeros_like(b)
    residuals = [1.0]
    for iteration in range(1, max_iterations + 1):
        r = b - matrix @ x
        res = float(np.linalg.norm(r)) / b_norm
        if res <= tol:
            return RefinementResult(x, iteration - 1, tuple(residuals), True)
        d = np.asarray(inner_solve(r), dtype=float)
        x = x + d
        res_after = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res_after)
        if not np.isfinite(res_after):
            return RefinementResult(x, iteration, tuple(residuals), False)
    converged = residuals[-1] <= tol
    return RefinementResult(x, max_iterations, tuple(residuals), converged)
