"""AMC feasibility advisor.

"Will this system solve well on analog hardware?" is the first question
a BlockAMC user asks. This module answers it *before* any programming,
combining the checks scattered through the stack:

- **stability** — the INV feedback loop settles only if every
  eigenvalue of the normalized matrix has positive real part (the
  paper's [23] criterion);
- **conditioning / predicted accuracy** — first-order propagation of
  the configured variation through the inverse (``repro.analysis
  .sensitivity``);
- **dynamic range** — how much of the conductance window the mapped
  entries actually use (entries far below ``g_min`` are lost);
- **partitioning plan** — the stage count needed to fit a given maximum
  array size, and whether every leading block along the recursion is
  invertible.

The result is an actionable report, not a boolean: each finding carries
a severity and a suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amc.config import HardwareConfig
from repro.analysis.sensitivity import predicted_variation_error
from repro.circuits.dynamics import inv_eigenvalue_margin
from repro.crossbar.mapping import normalize_matrix
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    RelativeGaussianVariation,
)
from repro.errors import PartitionError
from repro.utils.linalg import condition_number, schur_complement
from repro.utils.validation import check_square_matrix, check_vector

#: Severity levels, ordered.
SEVERITIES = ("info", "warning", "blocker")


@dataclass(frozen=True)
class Finding:
    """One feasibility observation."""

    severity: str
    topic: str
    message: str

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity}")


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of :func:`assess_feasibility`."""

    findings: tuple[Finding, ...]
    stability_margin: float
    condition: float
    predicted_error: float | None
    recommended_stages: int
    metrics: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True when no blocker-level finding exists."""
        return all(f.severity != "blocker" for f in self.findings)

    @property
    def worst_severity(self) -> str:
        """Highest severity present."""
        worst = "info"
        for finding in self.findings:
            if SEVERITIES.index(finding.severity) > SEVERITIES.index(worst):
                worst = finding.severity
        return worst

    def by_topic(self, topic: str) -> list[Finding]:
        """Findings about one topic."""
        return [f for f in self.findings if f.topic == topic]


def _variation_sigma(config: HardwareConfig) -> float | None:
    """Relative variation magnitude of the configured model, if any."""
    model = config.programming.variation
    if isinstance(model, RelativeGaussianVariation):
        return model.sigma_rel
    if isinstance(model, LognormalVariation):
        return model.sigma_rel
    if isinstance(model, GaussianVariation):
        return model.sigma / config.g_unit
    return None


def recommended_stage_count(n: int, max_array_size: int) -> int:
    """Partition stages needed so every block fits ``max_array_size``.

    Stage ``k`` produces blocks of roughly ``n / 2^k``; the paper's
    manufacturability bound is ~256.
    """
    if max_array_size < 1:
        raise PartitionError(f"max_array_size must be >= 1, got {max_array_size}")
    stages = 0
    block = n
    while block > max_array_size and stages < 32:
        block = (block + 1) // 2
        stages += 1
    return max(stages, 1)


def assess_feasibility(
    matrix: np.ndarray,
    b: np.ndarray | None = None,
    config: HardwareConfig | None = None,
    *,
    max_array_size: int = 256,
    error_budget: float = 0.2,
) -> FeasibilityReport:
    """Assess whether ``A x = b`` is a good fit for (Block)AMC hardware.

    Parameters
    ----------
    matrix:
        The system matrix.
    b:
        Optional right-hand side (enables the operating-point-dependent
        accuracy prediction; a random probe is used otherwise).
    config:
        Hardware assumptions (default: the paper's variation setup).
    max_array_size:
        Largest manufacturable array per side (paper: ~256).
    error_budget:
        Relative-error level above which accuracy findings escalate to
        warnings.
    """
    matrix = check_square_matrix(matrix)
    n = matrix.shape[0]
    config = config or HardwareConfig.paper_variation()
    if b is None:
        rng = np.random.default_rng(0)
        b = rng.uniform(-1.0, 1.0, n)
    else:
        b = check_vector(b, "b", size=n)

    findings: list[Finding] = []
    normalized, scale = normalize_matrix(matrix)

    # ------------------------------------------------------------------
    # stability of the INV feedback loop
    # ------------------------------------------------------------------
    margin = inv_eigenvalue_margin(normalized)
    if margin <= 0.0:
        findings.append(
            Finding(
                "blocker",
                "stability",
                f"smallest eigenvalue real part is {margin:.3g} <= 0: the INV "
                "circuit will not settle. Precondition or re-order the system "
                "(e.g. solve A^T A x = A^T b) before mapping.",
            )
        )
    elif margin < 0.01:
        findings.append(
            Finding(
                "warning",
                "stability",
                f"stability margin {margin:.3g} is thin; settling will be slow "
                "and variation may destabilize some trials.",
            )
        )
    else:
        findings.append(
            Finding("info", "stability", f"stability margin {margin:.3g} (healthy).")
        )

    # ------------------------------------------------------------------
    # conditioning and predicted accuracy
    # ------------------------------------------------------------------
    cond = condition_number(normalized)
    predicted = None
    sigma = _variation_sigma(config)
    if margin > 0.0 and sigma is not None:
        predicted = predicted_variation_error(normalized, b / scale, sigma)
        if predicted > 1.0:
            findings.append(
                Finding(
                    "blocker",
                    "accuracy",
                    f"predicted relative error {predicted:.2f} >= 1 under the "
                    f"configured {sigma:.0%} variation: the analog solution "
                    "would carry no information. Use more slices "
                    "(repro.core.precision) or a digital solver.",
                )
            )
        elif predicted > error_budget:
            findings.append(
                Finding(
                    "warning",
                    "accuracy",
                    f"predicted relative error {predicted:.2f} exceeds the "
                    f"{error_budget:.0%} budget; plan on iterative refinement "
                    "(repro.core.refinement) to recover precision.",
                )
            )
        else:
            findings.append(
                Finding(
                    "info",
                    "accuracy",
                    f"predicted relative error {predicted:.3f} within budget.",
                )
            )
    if cond > 1e4:
        findings.append(
            Finding(
                "warning",
                "conditioning",
                f"condition number {cond:.1e}; even digital solvers lose "
                f"{np.log10(cond):.0f} digits here.",
            )
        )

    # ------------------------------------------------------------------
    # conductance dynamic range utilization
    # ------------------------------------------------------------------
    device = config.programming.device
    magnitudes = np.abs(normalized[normalized != 0.0])
    if magnitudes.size:
        lost = float(np.mean(magnitudes * config.g_unit < device.g_min))
        if lost > 0.05:
            findings.append(
                Finding(
                    "warning",
                    "dynamic-range",
                    f"{lost:.0%} of non-zero entries fall below the device's "
                    "g_min and will be dropped to OFF; consider per-block "
                    "scaling (deeper partitioning renormalizes blocks).",
                )
            )
        else:
            findings.append(
                Finding(
                    "info",
                    "dynamic-range",
                    f"{1.0 - lost:.0%} of non-zero entries representable.",
                )
            )

    # ------------------------------------------------------------------
    # partitioning plan
    # ------------------------------------------------------------------
    stages = recommended_stage_count(n, max_array_size)
    if n > max_array_size:
        findings.append(
            Finding(
                "info",
                "partitioning",
                f"n = {n} exceeds the {max_array_size}-wide array limit: use "
                f"MultiStageSolver(stages={stages}).",
            )
        )
    # Leading-block invertibility along the default recursion.
    block = normalized
    for depth in range(stages):
        k = (block.shape[0] + 1) // 2
        if k == block.shape[0]:
            break
        a1 = block[:k, :k]
        if abs(np.linalg.det(a1)) < 1e-300 or condition_number(a1) > 1e12:
            findings.append(
                Finding(
                    "blocker",
                    "partitioning",
                    f"leading block at stage {depth + 1} is singular; pick an "
                    "asymmetric split (PartitionSpec) or permute the system.",
                )
            )
            break
        try:
            block = schur_complement(
                a1, block[:k, k:], block[k:, :k], block[k:, k:]
            )
        except PartitionError:
            findings.append(
                Finding(
                    "blocker",
                    "partitioning",
                    f"Schur complement at stage {depth + 1} failed; the "
                    "default split chain is not usable for this matrix.",
                )
            )
            break

    return FeasibilityReport(
        findings=tuple(findings),
        stability_margin=margin,
        condition=cond,
        predicted_error=predicted,
        recommended_stages=stages,
        metrics={
            "n": n,
            "scale": scale,
            "max_array_size": max_array_size,
            "variation_sigma": sigma,
        },
    )
