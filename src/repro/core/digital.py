"""Digital reference solvers.

The paper positions AMC as "a seed solution (or equivalently as a
preconditioner) for digital computers, to speed up the convergence of
iterative algorithms" (Sec. IV). These are the digital algorithms that
consume such seeds: a direct LU solver (the accuracy reference used by
every experiment) and the classic stationary/Krylov iterative methods,
all accepting a warm-start ``x0``.

All iterative routines are implemented directly (no scipy black boxes) so
iteration counts are well-defined and comparable across methods.

Multi-RHS variants (the ``*_many`` functions)
---------------------------------------------
Every iterative method also has a block entry point taking a row-stacked
``(batch, n)`` block of right-hand sides (and optionally a matching
warm-start block) and returning one :class:`IterativeResult` per row.
Column ``j`` of a block solve is **bit-identical** to the scalar call on
``bs[j]`` — the same contract the analog kernel keeps in
:mod:`repro.core.common` — and therefore invariant to batch composition.
Two implementation rules make that hold:

- **reductions stay per column**: BLAS picks different accumulation
  orders for ``gemv`` vs ``gemm``, for batched row dots vs single dots,
  and even for *strided vs contiguous* inputs to ``dot`` (measured on
  this stack: ``q[:, i] @ w`` and ``q[:, i].copy() @ w`` differ in low
  bits), so every matrix-vector product, dot, and norm runs the exact
  scalar call on a contiguous row — C-speed per column, never a block
  BLAS call;
- **element-wise block updates vectorize freely**: axpy-style updates,
  scalings, and convergence masks are per-element IEEE operations whose
  bits cannot depend on the batch shape, so they run once over the
  whole ``(active, n)`` block.

That split is where the speedup lives for the stationary methods and CG
(one shared Python iteration loop, vectorized element-wise traffic,
converged columns masked out and dropped). Gauss-Seidel's forward sweep
is an order-sequential recurrence (each dot runs against a half-updated
solution) and GMRES's Arnoldi state lives in strided column views whose
dot bits are layout-dependent, so their block variants execute columns
one at a time — same API, shared validation, block warm starts, and
per-column early exit, with no pretence of cross-column BLAS sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backend import get_backend
from repro.core.solution import SolveResult
from repro.errors import ConvergenceError, SolverError, ValidationError
from repro.utils.validation import check_square_matrix, check_vector

DEFAULT_TOL = 1e-10

#: Arnoldi happy-breakdown threshold: a new Krylov vector with norm at or
#: below this is treated as zero — the Krylov space is exhausted and the
#: current least-squares solution is exact (up to rounding), so the cycle
#: terminates instead of iterating on a zero basis vector.
BREAKDOWN_TOL = 1e-14


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of an iterative solve.

    ``iterations`` counts matrix-vector products with ``A`` (the standard
    cost unit); ``residuals`` holds the relative residual after each
    iteration, starting with the initial guess's residual.
    """

    x: np.ndarray
    iterations: int
    residuals: tuple[float, ...]
    converged: bool
    method: str

    @property
    def final_residual(self) -> float:
        """Relative residual of the returned solution."""
        return self.residuals[-1]


class DigitalDirectSolver:
    """LU-based exact solver with the common :class:`SolveResult` shape."""

    name = "digital-lu"

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` with ``numpy.linalg.solve``."""
        matrix = check_square_matrix(matrix)
        b = check_vector(b, "b", size=matrix.shape[0])
        try:
            x = np.linalg.solve(matrix, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"matrix is singular: {exc}") from exc
        return SolveResult(x=x, reference=x.copy(), solver=self.name)


def _setup(matrix, b, x0, backend=None):
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    if x0 is None:
        x = np.zeros_like(b)
    else:
        x = check_vector(x0, "x0", size=b.size).copy()
    if backend is not None:
        # Opt-in precision tier: iterate at the backend dtype. The
        # default (backend=None) path is untouched — no cast, float64.
        bk = get_backend(backend)
        matrix, b, x = bk.cast(matrix), bk.cast(b), bk.cast(x)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        raise SolverError("b must be non-zero")
    return matrix, b, x, b_norm


def jacobi(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=10_000, backend=None) -> IterativeResult:
    """Jacobi iteration ``x <- D^-1 (b - (A - D) x)``.

    Converges for strictly diagonally dominant matrices; may diverge
    otherwise (reported via ``converged=False`` once the budget runs out,
    or :class:`ConvergenceError` on numerical blow-up).
    """
    matrix, b, x, b_norm = _setup(matrix, b, x0, backend)
    diag = np.diag(matrix)
    if np.any(diag == 0.0):
        raise SolverError("Jacobi requires a zero-free diagonal")
    off = matrix - np.diag(diag)
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        x = (b - off @ x) / diag
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Jacobi diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "jacobi")
    return IterativeResult(x, max_iter, tuple(residuals), False, "jacobi")


def gauss_seidel(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=10_000, backend=None) -> IterativeResult:
    """Gauss-Seidel iteration (forward sweep)."""
    matrix, b, x, b_norm = _setup(matrix, b, x0, backend)
    n = b.size
    diag = np.diag(matrix)
    if np.any(diag == 0.0):
        raise SolverError("Gauss-Seidel requires a zero-free diagonal")
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        for i in range(n):
            sigma = matrix[i, :] @ x - matrix[i, i] * x[i]
            x[i] = (b[i] - sigma) / matrix[i, i]
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Gauss-Seidel diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "gauss-seidel")
    return IterativeResult(x, max_iter, tuple(residuals), False, "gauss-seidel")


def richardson(matrix, b, x0=None, omega=None, tol=DEFAULT_TOL, max_iter=10_000, backend=None) -> IterativeResult:
    """Richardson iteration ``x <- x + omega (b - A x)``.

    ``omega=None`` picks the optimal step ``2 / (lambda_min + lambda_max)``
    for symmetric positive definite matrices.
    """
    matrix, b, x, b_norm = _setup(matrix, b, x0, backend)
    if omega is None:
        eigenvalues = np.linalg.eigvalsh((matrix + matrix.T) / 2.0)
        lo, hi = float(eigenvalues[0]), float(eigenvalues[-1])
        if lo <= 0.0:
            raise SolverError("automatic omega requires a positive definite symmetric part")
        omega = 2.0 / (lo + hi)
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        r = b - matrix @ x
        x = x + omega * r
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Richardson diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "richardson")
    return IterativeResult(x, max_iter, tuple(residuals), False, "richardson")


def conjugate_gradient(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=None, backend=None) -> IterativeResult:
    """Conjugate gradients for symmetric positive definite systems."""
    matrix, b, x, b_norm = _setup(matrix, b, x0, backend)
    n = b.size
    if max_iter is None:
        max_iter = 10 * n
    r = b - matrix @ x
    p = r.copy()
    rs = float(r @ r)
    residuals = [float(np.sqrt(rs)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "cg")
    for iteration in range(1, max_iter + 1):
        ap = matrix @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise ConvergenceError("CG breakdown: matrix is not positive definite")
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        res = float(np.sqrt(rs_new)) / b_norm
        residuals.append(res)
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "cg")
        p = r + (rs_new / rs) * p
        rs = rs_new
    return IterativeResult(x, max_iter, tuple(residuals), False, "cg")


def gmres(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=None, restart=None, backend=None) -> IterativeResult:
    """GMRES with optional restarts (plain Arnoldi + Givens rotations)."""
    matrix, b, x, b_norm = _setup(matrix, b, x0, backend)
    n = b.size
    if max_iter is None:
        max_iter = 10 * n
    if restart is None:
        restart = min(n, 50)

    total_iters = 0
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "gmres")

    while total_iters < max_iter:
        r = b - matrix @ x
        beta = float(np.linalg.norm(r))
        if beta / b_norm <= tol:
            return IterativeResult(x, total_iters, tuple(residuals), True, "gmres")
        m = min(restart, max_iter - total_iters)
        q = np.zeros((n, m + 1))
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[:, 0] = r / beta

        k_done = 0
        for k in range(m):
            w = matrix @ q[:, k]
            total_iters += 1
            for i in range(k + 1):
                h[i, k] = float(q[:, i] @ w)
                w = w - h[i, k] * q[:, i]
            h[k + 1, k] = float(np.linalg.norm(w))
            # Happy breakdown: the Krylov space is exhausted, so the
            # least-squares solution over the current basis is already
            # exact (up to rounding). The cycle must terminate here —
            # iterating on would orthogonalize against a zero basis
            # vector, stalling the residual and eventually handing the
            # triangular solve a singular (zero) column.
            breakdown = h[k + 1, k] <= BREAKDOWN_TOL
            if not breakdown:
                q[:, k + 1] = w / h[k + 1, k]
            # Apply previous Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            residuals.append(abs(float(g[k + 1])) / b_norm)
            if residuals[-1] <= tol or breakdown:
                break

        y = np.linalg.solve(h[:k_done, :k_done], g[:k_done])
        x = x + q[:, :k_done] @ y
        true_res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals[-1] = true_res
        if true_res <= tol:
            return IterativeResult(x, total_iters, tuple(residuals), True, "gmres")

    return IterativeResult(x, total_iters, tuple(residuals), False, "gmres")


# ----------------------------------------------------------------------
# multi-RHS block variants
# ----------------------------------------------------------------------


def setup_many(matrix, bs, x0):
    """Validate a block solve: ``(matrix, bs, X, b_norms)``.

    ``bs`` is a row-stacked ``(batch, n)`` block (or any sequence of
    right-hand-side vectors); ``x0`` may be ``None`` (cold start), one
    ``(n,)`` warm start shared by every column, or a ``(batch, n)``
    block of per-column warm starts. Row norms go through the exact
    scalar call so downstream residuals match scalar solves bitwise.
    """
    matrix = check_square_matrix(matrix)
    bs = np.asarray(bs, dtype=float)
    if bs.ndim != 2:
        raise ValidationError(
            f"bs must be a (batch, n) block of right-hand sides, got ndim={bs.ndim}"
        )
    if bs.shape[0] == 0:
        raise ValidationError("bs must contain at least one right-hand side")
    n = matrix.shape[0]
    if bs.shape[1] != n:
        raise ValidationError(f"bs rows must have length {n}, got {bs.shape[1]}")
    if not np.all(np.isfinite(bs)):
        raise ValidationError("bs contains non-finite entries")
    bs = np.ascontiguousarray(bs)
    batch = bs.shape[0]
    b_norms = np.array([float(np.linalg.norm(bs[j])) for j in range(batch)])
    if np.any(b_norms == 0.0):
        raise SolverError("b must be non-zero")
    if x0 is None:
        x_block = np.zeros_like(bs)
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.ndim == 1:
            x0 = check_vector(x0, "x0", size=n)
            x_block = np.tile(x0, (batch, 1))
        elif x0.shape == bs.shape:
            if not np.all(np.isfinite(x0)):
                raise ValidationError("x0 contains non-finite entries")
            x_block = np.array(x0, dtype=float, order="C")
        else:
            raise ValidationError(
                f"x0 must be (n,) or match bs {bs.shape}, got {x0.shape}"
            )
    return matrix, bs, x_block, b_norms


def matvec_rows(matrix, rows: np.ndarray) -> np.ndarray:
    """Per-row ``matrix @ row`` — one contiguous ``gemv`` per row.

    A single ``(n, n) @ (n, batch)`` matmul would hand BLAS a ``gemm``
    whose per-column accumulation order differs from the scalar
    solvers' ``gemv``, breaking the bitwise contract; each row runs the
    exact scalar call instead.
    """
    out = np.empty_like(rows)
    for j in range(rows.shape[0]):
        out[j] = matrix @ rows[j]
    return out


def _norms_rows(rows: np.ndarray) -> np.ndarray:
    """Per-row ``np.linalg.norm`` (axis-norms differ bitwise at scale)."""
    return np.array([float(np.linalg.norm(rows[j])) for j in range(rows.shape[0])])


def _dots_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row contiguous dot products (``a[j] @ b[j]``)."""
    return np.array([float(a[j] @ b[j]) for j in range(a.shape[0])])


def _results_many(x_block, iters, hist, conv, method) -> tuple[IterativeResult, ...]:
    return tuple(
        IterativeResult(
            x_block[j].copy(), int(iters[j]), tuple(hist[j]), bool(conv[j]), method
        )
        for j in range(x_block.shape[0])
    )


def jacobi_many(matrix, bs, x0=None, tol=DEFAULT_TOL, max_iter=10_000):
    """Block Jacobi: per-column bit-identical to :func:`jacobi`.

    Carries the whole ``(batch, n)`` block through one vectorized
    iteration loop (element-wise update, per-row residual reductions),
    masking converged columns out. A diverging column raises
    :class:`ConvergenceError` exactly as a sequential loop over the
    batch would (the reported column may differ: lockstep iterations
    meet failures in iteration order, a loop in column order).
    """
    matrix, bs, x_block, b_norms = setup_many(matrix, bs, x0)
    diag = np.diag(matrix)
    if np.any(diag == 0.0):
        raise SolverError("Jacobi requires a zero-free diagonal")
    off = matrix - np.diag(diag)
    batch = bs.shape[0]
    hist = [
        [float(np.linalg.norm(bs[j] - matrix @ x_block[j])) / b_norms[j]]
        for j in range(batch)
    ]
    iters = np.full(batch, max_iter)
    conv = np.zeros(batch, dtype=bool)
    active = np.arange(batch)
    for iteration in range(1, max_iter + 1):
        if active.size == 0:
            break
        updated = (bs[active] - matvec_rows(off, x_block[active])) / diag
        x_block[active] = updated
        res = _norms_rows(bs[active] - matvec_rows(matrix, updated)) / b_norms[active]
        for idx, j in enumerate(active):
            hist[j].append(float(res[idx]))
        bad = ~np.isfinite(res)
        if np.any(bad):
            column = int(active[np.argmax(bad)])
            raise ConvergenceError(
                f"Jacobi diverged at iteration {iteration} (batch column {column})"
            )
        done = res <= tol
        iters[active[done]] = iteration
        conv[active[done]] = True
        active = active[~done]
    return _results_many(x_block, iters, hist, conv, "jacobi")


def gauss_seidel_many(matrix, bs, x0=None, tol=DEFAULT_TOL, max_iter=10_000):
    """Block Gauss-Seidel: per-column bit-identical to :func:`gauss_seidel`.

    The forward sweep is an order-sequential recurrence — every row's
    dot product runs against a half-updated solution — so there is no
    cross-column BLAS sharing that preserves the bitwise contract (see
    module docstring). Columns execute the scalar iteration one at a
    time; the block entry point contributes shared validation, block
    warm starts, and per-column results/early exit.
    """
    matrix, bs, x_block, _ = setup_many(matrix, bs, x0)
    return tuple(
        gauss_seidel(matrix, bs[j], x0=x_block[j], tol=tol, max_iter=max_iter)
        for j in range(bs.shape[0])
    )


def richardson_many(matrix, bs, x0=None, omega=None, tol=DEFAULT_TOL, max_iter=10_000):
    """Block Richardson: per-column bit-identical to :func:`richardson`.

    ``omega=None`` runs the symmetric-part eigenvalue analysis once for
    the whole block (the scalar path recomputes it per call — same
    matrix, same bits).
    """
    matrix, bs, x_block, b_norms = setup_many(matrix, bs, x0)
    if omega is None:
        eigenvalues = np.linalg.eigvalsh((matrix + matrix.T) / 2.0)
        lo, hi = float(eigenvalues[0]), float(eigenvalues[-1])
        if lo <= 0.0:
            raise SolverError("automatic omega requires a positive definite symmetric part")
        omega = 2.0 / (lo + hi)
    batch = bs.shape[0]
    hist = [
        [float(np.linalg.norm(bs[j] - matrix @ x_block[j])) / b_norms[j]]
        for j in range(batch)
    ]
    iters = np.full(batch, max_iter)
    conv = np.zeros(batch, dtype=bool)
    active = np.arange(batch)
    for iteration in range(1, max_iter + 1):
        if active.size == 0:
            break
        residual_rows = bs[active] - matvec_rows(matrix, x_block[active])
        updated = x_block[active] + omega * residual_rows
        x_block[active] = updated
        res = _norms_rows(bs[active] - matvec_rows(matrix, updated)) / b_norms[active]
        for idx, j in enumerate(active):
            hist[j].append(float(res[idx]))
        bad = ~np.isfinite(res)
        if np.any(bad):
            column = int(active[np.argmax(bad)])
            raise ConvergenceError(
                f"Richardson diverged at iteration {iteration} (batch column {column})"
            )
        done = res <= tol
        iters[active[done]] = iteration
        conv[active[done]] = True
        active = active[~done]
    return _results_many(x_block, iters, hist, conv, "richardson")


def conjugate_gradient_many(matrix, bs, x0=None, tol=DEFAULT_TOL, max_iter=None):
    """Block CG: per-column bit-identical to :func:`conjugate_gradient`.

    Search directions, step lengths, and residual energies are tracked
    per column; the axpy updates run element-wise over the active block
    while every dot product stays a contiguous per-row scalar call.
    """
    matrix, bs, x_block, b_norms = setup_many(matrix, bs, x0)
    batch, n = bs.shape
    if max_iter is None:
        max_iter = 10 * n
    residual_block = bs - matvec_rows(matrix, x_block)
    direction_block = residual_block.copy()
    rs = _dots_rows(residual_block, residual_block)
    hist = [[float(np.sqrt(rs[j])) / b_norms[j]] for j in range(batch)]
    iters = np.full(batch, max_iter)
    conv = np.zeros(batch, dtype=bool)
    converged_now = np.array([hist[j][0] <= tol for j in range(batch)])
    iters[converged_now] = 0
    conv[converged_now] = True
    active = np.flatnonzero(~converged_now)
    for iteration in range(1, max_iter + 1):
        if active.size == 0:
            break
        directions = direction_block[active]
        ap = matvec_rows(matrix, directions)
        denom = _dots_rows(directions, ap)
        if np.any(denom <= 0.0):
            raise ConvergenceError("CG breakdown: matrix is not positive definite")
        alpha = rs[active] / denom
        x_block[active] += alpha[:, None] * directions
        residual_block[active] -= alpha[:, None] * ap
        rs_new = _dots_rows(residual_block[active], residual_block[active])
        res = np.sqrt(rs_new) / b_norms[active]
        for idx, j in enumerate(active):
            hist[j].append(float(res[idx]))
        done = res <= tol
        iters[active[done]] = iteration
        conv[active[done]] = True
        keep = ~done
        still = active[keep]
        direction_block[still] = (
            residual_block[still] + (rs_new[keep] / rs[still])[:, None] * direction_block[still]
        )
        rs[still] = rs_new[keep]
        active = still
    return _results_many(x_block, iters, hist, conv, "cg")


def gmres_many(matrix, bs, x0=None, tol=DEFAULT_TOL, max_iter=None, restart=None):
    """Block GMRES: per-column bit-identical to :func:`gmres`.

    Arnoldi state lives in strided column views whose dot-product bits
    are layout-dependent (measured on this stack — see the module
    docstring), so sharing a basis block across columns would break the
    bitwise contract. Columns execute the scalar iteration one at a
    time; the block entry point contributes shared validation, block
    warm starts, and per-column results/early exit. For the batched
    *flexible* variant — where the expensive per-iteration step is a
    preconditioner application that genuinely batches — see
    :func:`repro.core.preconditioned.fgmres_many`.
    """
    matrix, bs, x_block, _ = setup_many(matrix, bs, x0)
    return tuple(
        gmres(
            matrix, bs[j], x0=x_block[j], tol=tol, max_iter=max_iter, restart=restart
        )
        for j in range(bs.shape[0])
    )
