"""Digital reference solvers.

The paper positions AMC as "a seed solution (or equivalently as a
preconditioner) for digital computers, to speed up the convergence of
iterative algorithms" (Sec. IV). These are the digital algorithms that
consume such seeds: a direct LU solver (the accuracy reference used by
every experiment) and the classic stationary/Krylov iterative methods,
all accepting a warm-start ``x0``.

All iterative routines are implemented directly (no scipy black boxes) so
iteration counts are well-defined and comparable across methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solution import SolveResult
from repro.errors import ConvergenceError, SolverError
from repro.utils.validation import check_square_matrix, check_vector

DEFAULT_TOL = 1e-10


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of an iterative solve.

    ``iterations`` counts matrix-vector products with ``A`` (the standard
    cost unit); ``residuals`` holds the relative residual after each
    iteration, starting with the initial guess's residual.
    """

    x: np.ndarray
    iterations: int
    residuals: tuple[float, ...]
    converged: bool
    method: str

    @property
    def final_residual(self) -> float:
        """Relative residual of the returned solution."""
        return self.residuals[-1]


class DigitalDirectSolver:
    """LU-based exact solver with the common :class:`SolveResult` shape."""

    name = "digital-lu"

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` with ``numpy.linalg.solve``."""
        matrix = check_square_matrix(matrix)
        b = check_vector(b, "b", size=matrix.shape[0])
        try:
            x = np.linalg.solve(matrix, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"matrix is singular: {exc}") from exc
        return SolveResult(x=x, reference=x.copy(), solver=self.name)


def _setup(matrix, b, x0):
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    if x0 is None:
        x = np.zeros_like(b)
    else:
        x = check_vector(x0, "x0", size=b.size).copy()
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        raise SolverError("b must be non-zero")
    return matrix, b, x, b_norm


def jacobi(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=10_000) -> IterativeResult:
    """Jacobi iteration ``x <- D^-1 (b - (A - D) x)``.

    Converges for strictly diagonally dominant matrices; may diverge
    otherwise (reported via ``converged=False`` once the budget runs out,
    or :class:`ConvergenceError` on numerical blow-up).
    """
    matrix, b, x, b_norm = _setup(matrix, b, x0)
    diag = np.diag(matrix)
    if np.any(diag == 0.0):
        raise SolverError("Jacobi requires a zero-free diagonal")
    off = matrix - np.diag(diag)
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        x = (b - off @ x) / diag
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Jacobi diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "jacobi")
    return IterativeResult(x, max_iter, tuple(residuals), False, "jacobi")


def gauss_seidel(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=10_000) -> IterativeResult:
    """Gauss-Seidel iteration (forward sweep)."""
    matrix, b, x, b_norm = _setup(matrix, b, x0)
    n = b.size
    diag = np.diag(matrix)
    if np.any(diag == 0.0):
        raise SolverError("Gauss-Seidel requires a zero-free diagonal")
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        for i in range(n):
            sigma = matrix[i, :] @ x - matrix[i, i] * x[i]
            x[i] = (b[i] - sigma) / matrix[i, i]
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Gauss-Seidel diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "gauss-seidel")
    return IterativeResult(x, max_iter, tuple(residuals), False, "gauss-seidel")


def richardson(matrix, b, x0=None, omega=None, tol=DEFAULT_TOL, max_iter=10_000) -> IterativeResult:
    """Richardson iteration ``x <- x + omega (b - A x)``.

    ``omega=None`` picks the optimal step ``2 / (lambda_min + lambda_max)``
    for symmetric positive definite matrices.
    """
    matrix, b, x, b_norm = _setup(matrix, b, x0)
    if omega is None:
        eigenvalues = np.linalg.eigvalsh((matrix + matrix.T) / 2.0)
        lo, hi = float(eigenvalues[0]), float(eigenvalues[-1])
        if lo <= 0.0:
            raise SolverError("automatic omega requires a positive definite symmetric part")
        omega = 2.0 / (lo + hi)
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    for iteration in range(1, max_iter + 1):
        r = b - matrix @ x
        x = x + omega * r
        res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res)
        if not np.isfinite(res):
            raise ConvergenceError(f"Richardson diverged at iteration {iteration}")
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "richardson")
    return IterativeResult(x, max_iter, tuple(residuals), False, "richardson")


def conjugate_gradient(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=None) -> IterativeResult:
    """Conjugate gradients for symmetric positive definite systems."""
    matrix, b, x, b_norm = _setup(matrix, b, x0)
    n = b.size
    if max_iter is None:
        max_iter = 10 * n
    r = b - matrix @ x
    p = r.copy()
    rs = float(r @ r)
    residuals = [float(np.sqrt(rs)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "cg")
    for iteration in range(1, max_iter + 1):
        ap = matrix @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise ConvergenceError("CG breakdown: matrix is not positive definite")
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        res = float(np.sqrt(rs_new)) / b_norm
        residuals.append(res)
        if res <= tol:
            return IterativeResult(x, iteration, tuple(residuals), True, "cg")
        p = r + (rs_new / rs) * p
        rs = rs_new
    return IterativeResult(x, max_iter, tuple(residuals), False, "cg")


def gmres(matrix, b, x0=None, tol=DEFAULT_TOL, max_iter=None, restart=None) -> IterativeResult:
    """GMRES with optional restarts (plain Arnoldi + Givens rotations)."""
    matrix, b, x, b_norm = _setup(matrix, b, x0)
    n = b.size
    if max_iter is None:
        max_iter = 10 * n
    if restart is None:
        restart = min(n, 50)

    total_iters = 0
    residuals = [float(np.linalg.norm(b - matrix @ x)) / b_norm]
    if residuals[0] <= tol:
        return IterativeResult(x, 0, tuple(residuals), True, "gmres")

    while total_iters < max_iter:
        r = b - matrix @ x
        beta = float(np.linalg.norm(r))
        if beta / b_norm <= tol:
            return IterativeResult(x, total_iters, tuple(residuals), True, "gmres")
        m = min(restart, max_iter - total_iters)
        q = np.zeros((n, m + 1))
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[:, 0] = r / beta

        k_done = 0
        for k in range(m):
            w = matrix @ q[:, k]
            total_iters += 1
            for i in range(k + 1):
                h[i, k] = float(q[:, i] @ w)
                w = w - h[i, k] * q[:, i]
            h[k + 1, k] = float(np.linalg.norm(w))
            if h[k + 1, k] > 1e-14:
                q[:, k + 1] = w / h[k + 1, k]
            # Apply previous Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            residuals.append(abs(float(g[k + 1])) / b_norm)
            if residuals[-1] <= tol:
                break

        y = np.linalg.solve(h[:k_done, :k_done], g[:k_done])
        x = x + q[:, :k_done] @ y
        true_res = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals[-1] = true_res
        if true_res <= tol:
            return IterativeResult(x, total_iters, tuple(residuals), True, "gmres")

    return IterativeResult(x, total_iters, tuple(residuals), False, "gmres")
