"""Multi-array precision extension (compensated slicing).

A single analog array cannot beat its programming error: with 5%
relative variation every MVM is ~5% accurate, which caps how fast
AMC-seeded refinement converges. The classic fix (Feinberg et al., the
paper's ref. [15]) is to spread the matrix across multiple arrays so
errors cancel. We implement the *closed-loop* variant, which matches
how labs actually program crossbars:

1. program array 0 with the normalized matrix ``A``;
2. **read back** the actually-programmed values ``M0`` (a read-verify
   pass — cheap, and the write-verify controller does it anyway);
3. compute the residual ``R1 = A - M0`` digitally, rescale it to full
   range (scale ``s1 = max|R1|``), and program array 1 with ``R1/s1``;
4. repeat for as many slices as wanted.

An MVM then evaluates ``A v ~ M0 v + s1 M1 v + s2 M2 v + ...`` with one
analog operation per slice, summed digitally. Each slice's *relative*
error applies to an ``s_k``-times smaller residual, so the matrix error
shrinks geometrically: measured on a 12x12 Wishart with 5% variation,
the uncompensated residual norm drops 0.13 -> 0.010 -> 0.0004 over
three slices (tests pin these ratios).

:func:`compensated_refinement` plugs this high-precision MVM into the
iterative-refinement loop as the residual evaluator (corrections still
come from the plain INV array), giving an *analog-dominant* solver
whose accuracy is converter-limited instead of variation-limited.

Caveat: slicing compensates *programming* error only. Per-operation
error sources — op-amp offsets (times noise gain) and output noise —
hit every slice alike and set the real floor (~0.5% with the default
0.25 mV offsets). Hardware nulls them with chopper stabilization /
auto-zeroing, modelled here as ``input_offset_sigma_v = 0``; the tests
and the precision bench show both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import ADC, DAC
from repro.amc.ops import AMCOperations, OpResult
from repro.core.common import DEFAULT_INPUT_FRACTION, auto_range, input_voltage_scale
from repro.core.refinement import RefinementResult
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import SolverError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


class CompensatedMVM:
    """A matrix spread over ``slices`` arrays with residual compensation.

    Build once (programs and read-verifies all slices), then call
    :meth:`apply` for high-precision digital-in/digital-out products.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        config: HardwareConfig | None = None,
        rng=None,
        *,
        slices: int = 2,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        if slices < 1:
            raise SolverError(f"slices must be >= 1, got {slices}")
        matrix = check_square_matrix(matrix)
        self.config = config or HardwareConfig.ideal()
        self.ops = AMCOperations(self.config)
        self.input_fraction = input_fraction
        rng = as_generator(rng)

        normalized, self.scale = normalize_matrix(matrix)
        self._normalized = normalized
        self.slices: list[tuple[CrossbarArray, float]] = []
        # Telescoping construction: each slice stores (and its scale
        # undoes) the read-verified residual of everything before it, so
        # sum_k s_k M_k == normalized - final_residual.
        residual = normalized
        for _ in range(slices):
            peak = float(np.max(np.abs(residual)))
            if peak == 0.0:
                break  # programmed exactly; no further slices needed
            array = CrossbarArray.program(
                residual / peak,
                self.config.programming,
                rng,
                g_unit=self.config.g_unit,
                pre_normalized=True,
            )
            self.slices.append((array, peak))
            # Read-verify: the measured conductances of this slice.
            measured = array.effective_matrix(self.config.parasitics)
            residual = residual - peak * measured
        self._final_residual = residual

    @property
    def slice_count(self) -> int:
        """Number of programmed slice arrays."""
        return len(self.slices)

    @property
    def residual_norm(self) -> float:
        """Frobenius norm of the uncompensated matrix error (normalized).

        This is the precision floor of :meth:`apply` before converter
        effects; it shrinks geometrically with each slice.
        """
        return float(np.linalg.norm(self._final_residual))

    def apply(self, v: np.ndarray, rng=None) -> tuple[np.ndarray, list[OpResult]]:
        """High-precision product ``matrix @ v`` (original units).

        One analog MVM per slice; partials are digitized and summed with
        their slice scales. Returns the product and per-op telemetry.
        """
        n = self.slices[0][0].shape[1]
        v = check_vector(v, "v", size=n)
        rng = as_generator(rng)
        dac = DAC(self.config.converters)
        adc = ADC(self.config.converters)
        v_fs = self.config.converters.v_fs

        def run(k):
            v_in = dac.convert(k * v)
            total = np.zeros(n)
            ops: list[OpResult] = []
            peak = 0.0
            for array, scale in self.slices:
                op = self.ops.mvm(array, v_in, label=f"slice-mvm(s={scale:.3g})", rng=rng)
                ops.append(op)
                peak = max(peak, float(np.max(np.abs(op.output))))
                total = total - adc.convert(op.output) * scale
            return peak, (total, ops)

        k0 = input_voltage_scale(v, v_fs, self.input_fraction)
        (total, ops), k = auto_range(run, k0, v_fs)
        return total * self.scale / k, ops


@dataclass(frozen=True)
class CompensatedRefinementResult:
    """Refinement outcome plus the analog telemetry it consumed."""

    refinement: RefinementResult
    mvm_operations: int
    inv_operations: int

    @property
    def x(self) -> np.ndarray:
        """The refined solution."""
        return self.refinement.x

    @property
    def converged(self) -> bool:
        """Whether the target residual was reached."""
        return self.refinement.converged


def compensated_refinement(
    matrix: np.ndarray,
    b: np.ndarray,
    config: HardwareConfig | None = None,
    rng=None,
    *,
    slices: int = 2,
    tol: float = 1e-6,
    max_iterations: int = 50,
    input_fraction: float = DEFAULT_INPUT_FRACTION,
) -> CompensatedRefinementResult:
    """Analog-dominant iterative refinement with compensated residuals.

    The INV array provides O(sigma)-accurate corrections; the
    ``slices``-deep compensated MVM provides O(sigma^slices)-accurate
    residuals, so the loop contracts to a much deeper floor than plain
    analog refinement with digital residuals would suggest is analog-
    feasible. The digital host only subtracts vectors and tracks norms.
    """
    matrix = check_square_matrix(matrix)
    b = check_vector(b, "b", size=matrix.shape[0])
    config = config or HardwareConfig.ideal()
    rng = as_generator(rng)

    # Corrections come from the plain one-stage INV (programming once).
    from repro.core.blockamc import BlockAMCSolver

    prepared = BlockAMCSolver(config, input_fraction=input_fraction).prepare(matrix, rng)
    mvm = CompensatedMVM(
        matrix, config, rng, slices=slices, input_fraction=input_fraction
    )

    b_norm = float(np.linalg.norm(b))
    x = np.zeros_like(b)
    residuals = [1.0]
    mvm_ops = 0
    inv_ops = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if np.any(x):
            ax, ops = mvm.apply(x, rng)
            mvm_ops += len(ops)
        else:
            ax = np.zeros_like(b)  # first pass: residual is b itself
        r = b - ax
        res = float(np.linalg.norm(r)) / b_norm
        if res <= tol:
            converged = True
            iterations -= 1
            break
        correction = prepared.solve(r, rng)
        inv_ops += len(correction.operations)
        x = x + correction.x
        res_after = float(np.linalg.norm(b - matrix @ x)) / b_norm
        residuals.append(res_after)
        if not np.isfinite(res_after):
            break
    else:
        converged = residuals[-1] <= tol

    refinement = RefinementResult(
        x=x, iterations=iterations, residuals=tuple(residuals), converged=converged
    )
    return CompensatedRefinementResult(
        refinement=refinement, mvm_operations=mvm_ops, inv_operations=inv_ops
    )
