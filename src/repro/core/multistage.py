"""Multi-stage BlockAMC solver (the paper's two-stage design, Fig. 5).

For matrices whose half-size blocks still exceed the feasible array size,
the partition is applied recursively. Following the paper's architecture:

- every *first-stage* INV operation (on ``A1`` and ``A4s``) is executed
  by its own one-stage BlockAMC macro (analog inside);
- every *first-stage* MVM operation (on ``A2`` and ``A3``) is tiled over
  terminal-size arrays, with partial products digitized and summed;
- intermediates between macros round-trip through ADC -> main memory ->
  DAC ("The output results in every one-stage BlockAMC macro are
  converted and stored in the main memory", Sec. III-C), so each glue
  level adds converter quantization — an effect the ablation benches
  quantify.

``stages=2`` reproduces the paper's two-stage solver (a 256x256 system
becomes 16 arrays of 64x64); larger depths extend the same recursion, the
paper's "partitioned stage by stage" scaling argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import ADC, DAC, quantize_voltages
from repro.amc.macro import BlockAMCMacro
from repro.amc.ops import AMCOperations, OpResult
from repro.circuits.dynamics import mvm_settling_time
from repro.core.blockamc import (
    BatchedFiveStep,
    BatchedOpSpec,
    has_per_operation_randomness,
)
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    FactoredSystem,
    auto_range,
    auto_range_many,
    ideal_inv,
    ideal_mvm,
    input_voltage_scale,
    input_voltage_scale_many,
    inv_loading,
    inv_rhs,
    inv_system,
    mvm_raw,
    saturate,
)
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import LeanSolveResult, SolveResult
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import SolverError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass
class _Tally:
    """Mutable accumulator of telemetry across the solver tree."""

    operations: list[OpResult] = field(default_factory=list)
    dac_conversions: int = 0
    adc_conversions: int = 0
    macro_count: int = 0
    array_count: int = 0
    device_count: int = 0


@dataclass
class _BatchTally:
    """Batched counterpart of :class:`_Tally`.

    Collects whole-batch :class:`~repro.core.blockamc.BatchedOpSpec`
    telemetry in tree-execution order — the same order a scalar solve
    appends its :class:`OpResult` objects — plus the per-solve
    conversion counts (batch-invariant by construction).
    """

    specs: list[BatchedOpSpec] = field(default_factory=list)
    dac_conversions: int = 0
    adc_conversions: int = 0


class _TiledMVM:
    """A (possibly rectangular) block tiled over terminal-size arrays.

    ``apply`` computes ``block @ v`` by running one analog MVM per tile,
    digitizing each partial product, and summing digitally.
    """

    def __init__(self, block: np.ndarray, tile: int, config: HardwareConfig, rng):
        if tile < 1:
            raise SolverError(f"tile size must be >= 1, got {tile}")
        self.config = config
        self.ops = AMCOperations(config)
        self.rows, self.cols = block.shape
        self.row_starts = list(range(0, self.rows, tile))
        self.col_starts = list(range(0, self.cols, tile))
        self.arrays: dict[tuple[int, int], CrossbarArray] = {}
        self.skipped_tiles = 0
        self._batch_tiles: list | None = None
        for ri, r0 in enumerate(self.row_starts):
            for ci, c0 in enumerate(self.col_starts):
                sub = block[r0 : r0 + tile, c0 : c0 + tile]
                if not np.any(sub):
                    # An all-zero tile needs no array at all (e.g. the
                    # off-diagonal blocks of triangular or banded
                    # systems) — the partial product is exactly zero.
                    self.skipped_tiles += 1
                    continue
                self.arrays[(ri, ci)] = CrossbarArray.program(
                    sub,
                    config.programming,
                    rng,
                    g_unit=config.g_unit,
                    pre_normalized=True,
                )

    @property
    def array_count(self) -> int:
        """Number of tile array pairs."""
        return len(self.arrays)

    @property
    def device_count(self) -> int:
        """Total RRAM cells across all tiles."""
        return sum(a.device_count for a in self.arrays.values())

    def apply(self, v: np.ndarray, fraction: float, tally: _Tally, rng) -> np.ndarray:
        """Return ``block @ v`` (digital in, digital out), with gain ranging."""
        v = check_vector(v, "v", size=self.cols)
        dac = DAC(self.config.converters)
        adc = ADC(self.config.converters)
        v_fs = self.config.converters.v_fs

        def run(k):
            tile_cols = len(self.col_starts)
            v_chunks = []
            for ci in range(tile_cols):
                c0 = self.col_starts[ci]
                c1 = self.col_starts[ci + 1] if ci + 1 < tile_cols else self.cols
                v_chunks.append(dac.convert(k * v[c0:c1]))

            out = np.zeros(self.rows)
            ops: list[OpResult] = []
            peak = 0.0
            for ri, r0 in enumerate(self.row_starts):
                r1 = self.row_starts[ri + 1] if ri + 1 < len(self.row_starts) else self.rows
                acc = np.zeros(r1 - r0)
                for ci in range(tile_cols):
                    if (ri, ci) not in self.arrays:
                        continue  # all-zero tile: partial product is zero
                    op = self.ops.mvm(
                        self.arrays[(ri, ci)],
                        v_chunks[ci],
                        label=f"tile-mvm[{ri},{ci}]",
                        rng=rng,
                    )
                    ops.append(op)
                    peak = max(peak, float(np.max(np.abs(op.output))))
                    # Each partial product is digitized before the digital
                    # sum (circuit sign removed digitally).
                    acc = acc - adc.convert(op.output)
                out[r0:r1] = acc
            return peak, (out, ops)

        k0 = input_voltage_scale(v, v_fs, fraction)
        (out, ops), k = auto_range(run, k0, v_fs)
        tally.operations.extend(ops)
        tally.dac_conversions += len(self.col_starts)
        tally.adc_conversions += len(ops)
        return out / k

    def apply_many(
        self, v_rows: np.ndarray, fraction: float, tally: _BatchTally, rng
    ) -> np.ndarray:
        """Row-stacked :meth:`apply`: ``block @ v`` per row, ranged per row.

        Each tile's MVM runs once for the whole batch through the
        shared multi-RHS kernel (offsets drawn through the node's own
        op-amp cache in scalar tile order), so row ``c`` is
        bit-identical to a scalar :meth:`apply` of ``v_rows[c]``.
        """
        config = self.config
        conv = config.converters
        v_fs = conv.v_fs
        a0 = config.opamp.open_loop_gain
        v_sat = config.opamp.v_sat
        gbwp = config.opamp.gbwp_hz
        tile_cols = len(self.col_starts)
        col_bounds = list(
            zip(self.col_starts, self.col_starts[1:] + [self.cols])
        )

        if self._batch_tiles is None:
            # Batch-invariant per-tile data (effective matrices, load
            # sums, settling analysis), built once per node and reused
            # by every batch — visited in the scalar loop's (ri, ci)
            # order so first-use offset draws replay the scalar rng
            # stream exactly (offsets come from the node's own
            # quasi-static cache, shared with the scalar path).
            row_bounds = list(
                zip(self.row_starts, self.row_starts[1:] + [self.rows])
            )
            bk = config.resolve_backend()
            self._batch_tiles = [
                (
                    ri,
                    ci,
                    r0,
                    r1,
                    array,
                    # Analog operands at the backend tier (identity on
                    # float64); ideal matrix and settle stay float64.
                    bk.cast(array.effective_matrix(config.parasitics)),
                    bk.cast(array.load_row_sums()),
                    bk.cast(self.ops._draw_offsets(array.shape[0], rng)),
                    self.ops._ideal_matrix(array),
                    mvm_settling_time(
                        np.asarray(array.g_pos) + np.asarray(array.g_neg),
                        array.g_unit,
                        gbwp,
                    ),
                )
                for ri, (r0, r1) in enumerate(row_bounds)
                for ci in range(tile_cols)
                # all-zero tiles have no array: partial product is zero
                if (array := self.arrays.get((ri, ci))) is not None
            ]
        tiles = self._batch_tiles
        cast = config.resolve_backend().cast

        def run_subset(k, indices):
            chunks = [
                cast(
                    quantize_voltages(
                        k[:, None] * v_rows[indices, c0:c1], conv.dac_bits, v_fs
                    )
                )
                for c0, c1 in col_bounds
            ]
            out = np.zeros((indices.size, self.rows))
            payload = {}
            peaks = np.zeros(indices.size)
            for ti, (ri, ci, r0, r1, array, eff, loads, offsets, _, _) in enumerate(
                tiles
            ):
                raw = mvm_raw(eff, loads, chunks[ci], offsets, a0)
                clipped, sat = saturate(raw, v_sat)
                payload[f"tile{ti}"] = clipped
                payload[f"tsat{ti}"] = sat
                peaks = np.maximum(peaks, np.max(np.abs(clipped), axis=1))
                # Each partial product is digitized before the digital
                # sum (circuit sign removed digitally).
                out[:, r0:r1] -= quantize_voltages(clipped, conv.adc_bits, v_fs)
            for ci, chunk in enumerate(chunks):
                payload[f"chunk{ci}"] = chunk
            payload["out"] = out
            return peaks, payload

        k0 = input_voltage_scale_many(v_rows, v_fs, fraction)
        final, final_k = auto_range_many(run_subset, k0, v_fs)
        for ti, (ri, ci, r0, r1, array, eff, loads, offsets, ideal_m, settle) in (
            enumerate(tiles)
        ):
            tally.specs.append(
                BatchedOpSpec(
                    label=f"tile-mvm[{ri},{ci}]",
                    kind="mvm",
                    outputs=final[f"tile{ti}"],
                    ideal=ideal_mvm(ideal_m, final[f"chunk{ci}"]),
                    settling_time_s=settle,
                    saturated=final[f"tsat{ti}"],
                    rows=array.shape[0],
                    cols=array.shape[1],
                    device_count=array.device_count,
                )
            )
        tally.dac_conversions += tile_cols
        tally.adc_conversions += len(tiles)
        return final["out"] / final_k[:, None]


class _MacroNode:
    """Terminal solver node: a one-stage BlockAMC macro for one block."""

    def __init__(
        self,
        block: np.ndarray,
        config: HardwareConfig,
        partition: PartitionSpec,
        fraction: float,
        rng,
    ):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        blocks = prepare_blocks(normalized, partition)
        self.split = blocks.split
        arrays = build_macro_arrays(blocks, config, rng)
        self.macro = BlockAMCMacro(arrays, config)
        self._engine: BatchedFiveStep | None = None

    @property
    def device_count(self) -> int:
        return self.macro.device_count

    def count_resources(self, tally: _Tally) -> None:
        tally.macro_count += 1
        tally.array_count += 4
        tally.device_count += self.macro.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        """Solve ``block @ x = rhs`` (digital in, digital out), with ranging."""
        v_fs = self.config.converters.v_fs

        def run(k):
            v_b = k * rhs
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(rhs, v_fs, self.fraction)
        result, k = auto_range(run, k0, v_fs)
        tally.operations.extend(result.steps)
        tally.dac_conversions += 2
        tally.adc_conversions += 2
        return result.solution / (k * self.scale)

    def solve_many(
        self, rhs_rows: np.ndarray, tally: _BatchTally, rng
    ) -> np.ndarray:
        """Row-stacked :meth:`solve` through the shared five-step engine.

        One :class:`~repro.core.blockamc.BatchedFiveStep` is built per
        node (offsets drawn through the macro's own cache in scalar
        step order, factorizations and settling analysis shared), then
        reused by every batch — including the two visits the glue
        recursion pays this node per solve.
        """
        if self._engine is None:
            self._engine = BatchedFiveStep(self.macro, rng)
        engine = self._engine
        final, final_k = engine.run(rhs_rows, self.fraction)
        tally.specs.extend(engine.step_specs(final))
        tally.dac_conversions += 2
        tally.adc_conversions += 2
        x_upper = -engine.digitize(final["s5"])
        x_lower = engine.digitize(final["s3"])
        solution = np.concatenate([x_upper, x_lower], axis=1)
        return solution / engine.backend.cast(final_k * self.scale)[:, None]


class _DirectInvNode:
    """Fallback terminal node for blocks too small to partition (n < 2)."""

    def __init__(self, block: np.ndarray, config: HardwareConfig, fraction: float, rng):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        self.array = CrossbarArray.program(
            normalized, config.programming, rng, g_unit=config.g_unit, pre_normalized=True
        )
        self.ops = AMCOperations(config)
        self._batch_state: tuple | None = None

    def count_resources(self, tally: _Tally) -> None:
        tally.array_count += 1
        tally.device_count += self.array.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        dac = DAC(self.config.converters)
        adc = ADC(self.config.converters)
        v_fs = self.config.converters.v_fs

        def run(k):
            op = self.ops.inv(self.array, dac.convert(k * rhs), label="direct-inv", rng=rng)
            return float(np.max(np.abs(op.output))), op

        k0 = input_voltage_scale(rhs, v_fs, self.fraction)
        op, k = auto_range(run, k0, v_fs)
        tally.operations.append(op)
        tally.dac_conversions += 1
        tally.adc_conversions += 1
        return -adc.convert(op.output) / (k * self.scale)

    def solve_many(
        self, rhs_rows: np.ndarray, tally: _BatchTally, rng
    ) -> np.ndarray:
        """Row-stacked :meth:`solve`: one INV factorization, many columns.

        The factored finite-gain system, ideal matrix, and settling
        estimate are batch-invariant — built on first use, reused by
        every later batch (offsets come from the node's quasi-static
        cache, shared with the scalar path).
        """
        config = self.config
        conv = config.converters
        v_fs = conv.v_fs
        rows, cols = self.array.shape
        bk = config.resolve_backend()
        if self._batch_state is None:
            effective = self.array.effective_matrix(config.parasitics)
            # Settling analysis runs on the float64 matrix; the solve
            # state drops to the backend tier (identity on float64).
            loading = inv_loading(bk.cast(self.array.load_row_sums()), 1.0)
            self._batch_state = (
                bk.cast(self.ops._draw_offsets(rows, rng)),
                loading,
                FactoredSystem(
                    inv_system(bk.cast(effective), loading, config.opamp.open_loop_gain)
                ),
                self.ops._ideal_matrix(self.array),
                self.ops._inv_settle(effective),
            )
        offsets, loading, fact, ideal_matrix, settle = self._batch_state

        def run_subset(k, indices):
            v_in = bk.cast(
                quantize_voltages(k[:, None] * rhs_rows[indices], conv.dac_bits, v_fs)
            )
            raw = fact.solve(inv_rhs(v_in, loading, offsets, 1.0))
            clipped, sat = saturate(raw, config.opamp.v_sat)
            peaks = np.max(np.abs(clipped), axis=1)
            return peaks, {"out": clipped, "v_in": v_in, "sat": sat}

        k0 = input_voltage_scale_many(rhs_rows, v_fs, self.fraction)
        final, final_k = auto_range_many(run_subset, k0, v_fs)
        tally.specs.append(
            BatchedOpSpec(
                label="direct-inv",
                kind="inv",
                outputs=final["out"],
                ideal=ideal_inv(ideal_matrix, final["v_in"]),
                settling_time_s=settle,
                saturated=final["sat"],
                rows=rows,
                cols=cols,
                device_count=self.array.device_count,
            )
        )
        tally.dac_conversions += 1
        tally.adc_conversions += 1
        digitized = quantize_voltages(final["out"], conv.adc_bits, v_fs)
        return -digitized / bk.cast(final_k * self.scale)[:, None]


class _DigitalGlueNode:
    """Non-terminal node: the five-step algorithm with digital glue."""

    def __init__(
        self,
        block: np.ndarray,
        depth_remaining: int,
        config: HardwareConfig,
        partition: PartitionSpec,
        fraction: float,
        rng,
    ):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        blocks = prepare_blocks(normalized, partition)
        self.split = blocks.split
        self.blocks = blocks
        n = normalized.shape[0]
        # Terminal arrays are the size the deepest partition produces.
        tile = max(1, (n + (1 << depth_remaining) - 1) >> depth_remaining)
        self.upper = _build_node(
            blocks.a1, depth_remaining - 1, config, partition, fraction, rng
        )
        self.lower = _build_node(
            blocks.a4s, depth_remaining - 1, config, partition, fraction, rng
        )
        self.tiles_a2 = _TiledMVM(blocks.a2, tile, config, rng)
        self.tiles_a3 = _TiledMVM(blocks.a3, tile, config, rng)

    def count_resources(self, tally: _Tally) -> None:
        self.upper.count_resources(tally)
        self.lower.count_resources(tally)
        tally.array_count += self.tiles_a2.array_count + self.tiles_a3.array_count
        tally.device_count += self.tiles_a2.device_count + self.tiles_a3.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        """Solve ``block @ x = rhs`` (digital in, digital out)."""
        rhs_n = np.asarray(rhs, dtype=float) / self.scale
        f = rhs_n[: self.split]
        g = rhs_n[self.split :]

        y_t = self.upper.solve(f, tally, rng)
        g_t = self.tiles_a3.apply(y_t, self.fraction, tally, rng)
        z = self.lower.solve(g - g_t, tally, rng)
        f_t = self.tiles_a2.apply(z, self.fraction, tally, rng)
        y = self.upper.solve(f - f_t, tally, rng)
        return np.concatenate([y, z])

    def solve_many(
        self, rhs_rows: np.ndarray, tally: _BatchTally, rng
    ) -> np.ndarray:
        """Row-stacked :meth:`solve`: the recursion stays matrix-valued.

        The five-step glue schedule runs once with ``(batch, n)``
        blocks flowing between child nodes — every digital combination
        is element-wise (bitwise batch-stable) and every analog stage
        delegates to the shared multi-RHS kernel, so row ``c`` is
        bit-identical to a scalar :meth:`solve` of ``rhs_rows[c]``.
        """
        rhs_n = np.asarray(rhs_rows, dtype=float) / self.scale
        f = rhs_n[:, : self.split]
        g = rhs_n[:, self.split :]

        y_t = self.upper.solve_many(f, tally, rng)
        g_t = self.tiles_a3.apply_many(y_t, self.fraction, tally, rng)
        z = self.lower.solve_many(g - g_t, tally, rng)
        f_t = self.tiles_a2.apply_many(z, self.fraction, tally, rng)
        y = self.upper.solve_many(f - f_t, tally, rng)
        return np.concatenate([y, z], axis=1)


def _build_node(block, depth_remaining, config, partition, fraction, rng):
    block = np.asarray(block, dtype=float)
    if block.shape[0] < 2:
        return _DirectInvNode(block, config, fraction, rng)
    if depth_remaining <= 1:
        return _MacroNode(block, config, partition, fraction, rng)
    return _DigitalGlueNode(block, depth_remaining, config, partition, fraction, rng)


@dataclass(frozen=True)
class PreparedMultiStage:
    """A programmed multi-stage solver bound to one matrix."""

    matrix: np.ndarray
    root: object
    stages: int

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` on the programmed solver tree."""
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)

        tally = _Tally()
        x = self.root.solve(b, tally, rng)
        self.root.count_resources(tally)

        reference = np.linalg.solve(self.matrix, b)
        return SolveResult(
            x=x,
            reference=reference,
            solver=f"blockamc-{self.stages}stage",
            operations=tuple(tally.operations),
            metadata={
                "stages": self.stages,
                "macro_count": tally.macro_count,
                "array_count": tally.array_count,
                "device_count": tally.device_count,
                "dac_conversions": tally.dac_conversions,
                "adc_conversions": tally.adc_conversions,
            },
        )

    def solve_many(
        self, rhs_batch, rng=None, *, lean: bool = False
    ) -> tuple[SolveResult, ...]:
        """Solve a batch of right-hand sides on the programmed tree.

        Programming the whole solver tree — including every tile array's
        variation draw and parasitic extraction — happened once in
        :meth:`MultiStageSolver.prepare`; this method amortizes that
        setup across the batch *and* runs the recursion matrix-valued:
        ``(batch, n)`` blocks flow through the digital glue, every
        macro node executes the five-step schedule once per batch
        through :class:`~repro.core.blockamc.BatchedFiveStep` (factor
        once, per-column ``getrs``), and tile MVMs run the shared
        multi-RHS kernel. Results are **bit-identical** to a sequential
        loop of :meth:`solve` calls — the same contract (and the same
        transparent fallback rules) as
        :meth:`~repro.core.blockamc.PreparedBlockAMC.solve_many`:
        configurations whose per-operation randomness cannot be shared
        across a batch (MNA routing, output or sample-and-hold noise)
        fall back to that loop.

        With ``lean=True`` the per-result payload is a
        :class:`~repro.core.solution.LeanSolveResult` (same solution
        bits, no per-operation OpResult construction).
        """
        rhs_list = [np.asarray(b, dtype=float) for b in rhs_batch]
        if not rhs_list:
            raise ValidationError("rhs_batch must contain at least one vector")
        n = self.matrix.shape[0]
        bs = np.stack([check_vector(b, "b", size=n) for b in rhs_list])
        rng = as_generator(rng)
        if has_per_operation_randomness(self.root.config):
            results = tuple(self.solve(b, rng) for b in bs)
            if lean:
                return tuple(LeanSolveResult.from_result(r) for r in results)
            return results

        batch = bs.shape[0]
        tally = _BatchTally()
        x = self.root.solve_many(bs, tally, rng)
        counts = _Tally()
        self.root.count_resources(counts)
        counts.dac_conversions = tally.dac_conversions
        counts.adc_conversions = tally.adc_conversions
        # Per-column exact references through the scalar path's call
        # (np.linalg.solve) so reference bits match :meth:`solve`.
        references = np.stack(
            [np.linalg.solve(self.matrix, bs[c]) for c in range(batch)]
        )
        solver = f"blockamc-{self.stages}stage"
        metadata_common = {
            "stages": self.stages,
            "macro_count": counts.macro_count,
            "array_count": counts.array_count,
            "device_count": counts.device_count,
            "dac_conversions": counts.dac_conversions,
            "adc_conversions": counts.adc_conversions,
        }

        if lean:
            # Same left-fold summation order as SolveResult.analog_time_s.
            analog_total = float(
                sum(spec.settling_time_s for spec in tally.specs)
            )
            saturated = np.zeros(batch, dtype=bool)
            for spec in tally.specs:
                saturated |= spec.saturated
            return tuple(
                LeanSolveResult(
                    x=x[c],
                    reference=references[c],
                    solver=solver,
                    saturated=bool(saturated[c]),
                    analog_time_s=analog_total,
                    metadata={},
                )
                for c in range(batch)
            )

        return tuple(
            SolveResult(
                x=x[c],
                reference=references[c],
                solver=solver,
                operations=tuple(spec.op_result(c) for spec in tally.specs),
                metadata=dict(metadata_common),
            )
            for c in range(batch)
        )


class MultiStageSolver:
    """Recursive BlockAMC: ``stages`` levels of divide-and-conquer.

    ``stages=1`` is the one-stage solver (a single macro); ``stages=2``
    reproduces the paper's two-stage architecture.
    """

    def __init__(
        self,
        config: HardwareConfig | None = None,
        stages: int = 2,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        if stages < 1:
            raise SolverError(f"stages must be >= 1, got {stages}")
        self.config = config or HardwareConfig.ideal()
        self.stages = stages
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    @property
    def name(self) -> str:
        """Solver identifier used in reports."""
        return f"blockamc-{self.stages}stage"

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedMultiStage:
        """Preprocess and program the whole solver tree for ``matrix``."""
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        root = _build_node(
            matrix, self.stages, self.config, self.partition, self.input_fraction, rng
        )
        return PreparedMultiStage(matrix=matrix, root=root, stages=self.stages)

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the solver tree and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
