"""Multi-stage BlockAMC solver (the paper's two-stage design, Fig. 5).

For matrices whose half-size blocks still exceed the feasible array size,
the partition is applied recursively. Following the paper's architecture:

- every *first-stage* INV operation (on ``A1`` and ``A4s``) is executed
  by its own one-stage BlockAMC macro (analog inside);
- every *first-stage* MVM operation (on ``A2`` and ``A3``) is tiled over
  terminal-size arrays, with partial products digitized and summed;
- intermediates between macros round-trip through ADC -> main memory ->
  DAC ("The output results in every one-stage BlockAMC macro are
  converted and stored in the main memory", Sec. III-C), so each glue
  level adds converter quantization — an effect the ablation benches
  quantify.

``stages=2`` reproduces the paper's two-stage solver (a 256x256 system
becomes 16 arrays of 64x64); larger depths extend the same recursion, the
paper's "partitioned stage by stage" scaling argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import ADC, DAC
from repro.amc.macro import BlockAMCMacro
from repro.amc.ops import AMCOperations, OpResult
from repro.core.common import DEFAULT_INPUT_FRACTION, auto_range, input_voltage_scale
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.core.solution import SolveResult
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import SolverError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass
class _Tally:
    """Mutable accumulator of telemetry across the solver tree."""

    operations: list[OpResult] = field(default_factory=list)
    dac_conversions: int = 0
    adc_conversions: int = 0
    macro_count: int = 0
    array_count: int = 0
    device_count: int = 0


class _TiledMVM:
    """A (possibly rectangular) block tiled over terminal-size arrays.

    ``apply`` computes ``block @ v`` by running one analog MVM per tile,
    digitizing each partial product, and summing digitally.
    """

    def __init__(self, block: np.ndarray, tile: int, config: HardwareConfig, rng):
        if tile < 1:
            raise SolverError(f"tile size must be >= 1, got {tile}")
        self.config = config
        self.ops = AMCOperations(config)
        self.rows, self.cols = block.shape
        self.row_starts = list(range(0, self.rows, tile))
        self.col_starts = list(range(0, self.cols, tile))
        self.arrays: dict[tuple[int, int], CrossbarArray] = {}
        self.skipped_tiles = 0
        for ri, r0 in enumerate(self.row_starts):
            for ci, c0 in enumerate(self.col_starts):
                sub = block[r0 : r0 + tile, c0 : c0 + tile]
                if not np.any(sub):
                    # An all-zero tile needs no array at all (e.g. the
                    # off-diagonal blocks of triangular or banded
                    # systems) — the partial product is exactly zero.
                    self.skipped_tiles += 1
                    continue
                self.arrays[(ri, ci)] = CrossbarArray.program(
                    sub,
                    config.programming,
                    rng,
                    g_unit=config.g_unit,
                    pre_normalized=True,
                )

    @property
    def array_count(self) -> int:
        """Number of tile array pairs."""
        return len(self.arrays)

    @property
    def device_count(self) -> int:
        """Total RRAM cells across all tiles."""
        return sum(a.device_count for a in self.arrays.values())

    def apply(self, v: np.ndarray, fraction: float, tally: _Tally, rng) -> np.ndarray:
        """Return ``block @ v`` (digital in, digital out), with gain ranging."""
        v = check_vector(v, "v", size=self.cols)
        dac = DAC(self.config.converters)
        adc = ADC(self.config.converters)
        v_fs = self.config.converters.v_fs

        def run(k):
            tile_cols = len(self.col_starts)
            v_chunks = []
            for ci in range(tile_cols):
                c0 = self.col_starts[ci]
                c1 = self.col_starts[ci + 1] if ci + 1 < tile_cols else self.cols
                v_chunks.append(dac.convert(k * v[c0:c1]))

            out = np.zeros(self.rows)
            ops: list[OpResult] = []
            peak = 0.0
            for ri, r0 in enumerate(self.row_starts):
                r1 = self.row_starts[ri + 1] if ri + 1 < len(self.row_starts) else self.rows
                acc = np.zeros(r1 - r0)
                for ci in range(tile_cols):
                    if (ri, ci) not in self.arrays:
                        continue  # all-zero tile: partial product is zero
                    op = self.ops.mvm(
                        self.arrays[(ri, ci)],
                        v_chunks[ci],
                        label=f"tile-mvm[{ri},{ci}]",
                        rng=rng,
                    )
                    ops.append(op)
                    peak = max(peak, float(np.max(np.abs(op.output))))
                    # Each partial product is digitized before the digital
                    # sum (circuit sign removed digitally).
                    acc = acc - adc.convert(op.output)
                out[r0:r1] = acc
            return peak, (out, ops)

        k0 = input_voltage_scale(v, v_fs, fraction)
        (out, ops), k = auto_range(run, k0, v_fs)
        tally.operations.extend(ops)
        tally.dac_conversions += len(self.col_starts)
        tally.adc_conversions += len(ops)
        return out / k


class _MacroNode:
    """Terminal solver node: a one-stage BlockAMC macro for one block."""

    def __init__(
        self,
        block: np.ndarray,
        config: HardwareConfig,
        partition: PartitionSpec,
        fraction: float,
        rng,
    ):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        blocks = prepare_blocks(normalized, partition)
        self.split = blocks.split
        arrays = build_macro_arrays(blocks, config, rng)
        self.macro = BlockAMCMacro(arrays, config)

    @property
    def device_count(self) -> int:
        return self.macro.device_count

    def count_resources(self, tally: _Tally) -> None:
        tally.macro_count += 1
        tally.array_count += 4
        tally.device_count += self.macro.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        """Solve ``block @ x = rhs`` (digital in, digital out), with ranging."""
        v_fs = self.config.converters.v_fs

        def run(k):
            v_b = k * rhs
            result = self.macro.solve(v_b[: self.split], v_b[self.split :], rng)
            peak = max(float(np.max(np.abs(step.output))) for step in result.steps)
            return peak, result

        k0 = input_voltage_scale(rhs, v_fs, self.fraction)
        result, k = auto_range(run, k0, v_fs)
        tally.operations.extend(result.steps)
        tally.dac_conversions += 2
        tally.adc_conversions += 2
        return result.solution / (k * self.scale)


class _DirectInvNode:
    """Fallback terminal node for blocks too small to partition (n < 2)."""

    def __init__(self, block: np.ndarray, config: HardwareConfig, fraction: float, rng):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        self.array = CrossbarArray.program(
            normalized, config.programming, rng, g_unit=config.g_unit, pre_normalized=True
        )
        self.ops = AMCOperations(config)

    def count_resources(self, tally: _Tally) -> None:
        tally.array_count += 1
        tally.device_count += self.array.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        dac = DAC(self.config.converters)
        adc = ADC(self.config.converters)
        v_fs = self.config.converters.v_fs

        def run(k):
            op = self.ops.inv(self.array, dac.convert(k * rhs), label="direct-inv", rng=rng)
            return float(np.max(np.abs(op.output))), op

        k0 = input_voltage_scale(rhs, v_fs, self.fraction)
        op, k = auto_range(run, k0, v_fs)
        tally.operations.append(op)
        tally.dac_conversions += 1
        tally.adc_conversions += 1
        return -adc.convert(op.output) / (k * self.scale)


class _DigitalGlueNode:
    """Non-terminal node: the five-step algorithm with digital glue."""

    def __init__(
        self,
        block: np.ndarray,
        depth_remaining: int,
        config: HardwareConfig,
        partition: PartitionSpec,
        fraction: float,
        rng,
    ):
        self.config = config
        self.fraction = fraction
        normalized, self.scale = normalize_matrix(block)
        blocks = prepare_blocks(normalized, partition)
        self.split = blocks.split
        self.blocks = blocks
        n = normalized.shape[0]
        # Terminal arrays are the size the deepest partition produces.
        tile = max(1, (n + (1 << depth_remaining) - 1) >> depth_remaining)
        self.upper = _build_node(
            blocks.a1, depth_remaining - 1, config, partition, fraction, rng
        )
        self.lower = _build_node(
            blocks.a4s, depth_remaining - 1, config, partition, fraction, rng
        )
        self.tiles_a2 = _TiledMVM(blocks.a2, tile, config, rng)
        self.tiles_a3 = _TiledMVM(blocks.a3, tile, config, rng)

    def count_resources(self, tally: _Tally) -> None:
        self.upper.count_resources(tally)
        self.lower.count_resources(tally)
        tally.array_count += self.tiles_a2.array_count + self.tiles_a3.array_count
        tally.device_count += self.tiles_a2.device_count + self.tiles_a3.device_count

    def solve(self, rhs: np.ndarray, tally: _Tally, rng) -> np.ndarray:
        """Solve ``block @ x = rhs`` (digital in, digital out)."""
        rhs_n = np.asarray(rhs, dtype=float) / self.scale
        f = rhs_n[: self.split]
        g = rhs_n[self.split :]

        y_t = self.upper.solve(f, tally, rng)
        g_t = self.tiles_a3.apply(y_t, self.fraction, tally, rng)
        z = self.lower.solve(g - g_t, tally, rng)
        f_t = self.tiles_a2.apply(z, self.fraction, tally, rng)
        y = self.upper.solve(f - f_t, tally, rng)
        return np.concatenate([y, z])


def _build_node(block, depth_remaining, config, partition, fraction, rng):
    block = np.asarray(block, dtype=float)
    if block.shape[0] < 2:
        return _DirectInvNode(block, config, fraction, rng)
    if depth_remaining <= 1:
        return _MacroNode(block, config, partition, fraction, rng)
    return _DigitalGlueNode(block, depth_remaining, config, partition, fraction, rng)


@dataclass(frozen=True)
class PreparedMultiStage:
    """A programmed multi-stage solver bound to one matrix."""

    matrix: np.ndarray
    root: object
    stages: int

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` on the programmed solver tree."""
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)

        tally = _Tally()
        x = self.root.solve(b, tally, rng)
        self.root.count_resources(tally)

        reference = np.linalg.solve(self.matrix, b)
        return SolveResult(
            x=x,
            reference=reference,
            solver=f"blockamc-{self.stages}stage",
            operations=tuple(tally.operations),
            metadata={
                "stages": self.stages,
                "macro_count": tally.macro_count,
                "array_count": tally.array_count,
                "device_count": tally.device_count,
                "dac_conversions": tally.dac_conversions,
                "adc_conversions": tally.adc_conversions,
            },
        )

    def solve_many(self, rhs_batch, rng=None) -> tuple[SolveResult, ...]:
        """Solve a batch of right-hand sides on the programmed tree.

        Programming the whole solver tree — including every tile array's
        variation draw and parasitic extraction — happened once in
        :meth:`MultiStageSolver.prepare`; this method amortizes that
        setup across the batch. The recursion itself runs per right-hand
        side (its digital glue is inherently sequential), with the op-amp
        offset draws shared batch-wide exactly as repeated
        :meth:`solve` calls share them.
        """
        rhs_batch = list(rhs_batch)
        if not rhs_batch:
            raise ValidationError("rhs_batch must contain at least one vector")
        rng = as_generator(rng)
        return tuple(self.solve(b, rng) for b in rhs_batch)


class MultiStageSolver:
    """Recursive BlockAMC: ``stages`` levels of divide-and-conquer.

    ``stages=1`` is the one-stage solver (a single macro); ``stages=2``
    reproduces the paper's two-stage architecture.
    """

    def __init__(
        self,
        config: HardwareConfig | None = None,
        stages: int = 2,
        partition: PartitionSpec | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        if stages < 1:
            raise SolverError(f"stages must be >= 1, got {stages}")
        self.config = config or HardwareConfig.ideal()
        self.stages = stages
        self.partition = partition or PartitionSpec()
        self.input_fraction = input_fraction

    @property
    def name(self) -> str:
        """Solver identifier used in reports."""
        return f"blockamc-{self.stages}stage"

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedMultiStage:
        """Preprocess and program the whole solver tree for ``matrix``."""
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        root = _build_node(
            matrix, self.stages, self.config, self.partition, self.input_fraction, rng
        )
        return PreparedMultiStage(matrix=matrix, root=root, stages=self.stages)

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the solver tree and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
