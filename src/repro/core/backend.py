"""Array backends: the precision/namespace seam under the analog kernel.

Every solver layer funnels its dense math through the shape-generic
kernel in :mod:`repro.core.common` (PR 3/5), which makes one seam cheap:
an :class:`ArrayBackend` names the array namespace (``xp``), the
canonical dtype the kernel computes in, the dtype-matched LAPACK
handles (``getrf``/``getrs``), and a :class:`ToleranceContract` stating
how results at this tier may differ from the float64 reference.

Contracts per registered backend:

- ``numpy`` (default, aliases ``numpy-f64``/``f64``/``float64``) —
  float64 on NumPy, **byte-identical** to the pre-seam engine: its
  :meth:`ArrayBackend.cast` is a no-copy pass-through for float64
  arrays and its LAPACK pair resolves the exact ``dgetrf``/``dgetrs``
  the kernel always used, so goldens pass under ``GOLDEN_STRICT=1``.
- ``numpy-f32`` (aliases ``f32``/``float32``) — the same kernel at
  float32. Converter quantization (code flips at LSB boundaries) makes
  bit-identity meaningless here; instead the tier promises the
  relative-L1 contract in :data:`F32_TOLERANCE`, enforced on the full
  config x matrix-family grid by ``tests/test_kernel_equivalence.py``.
- ``torch`` — registers behind the same seam but constructs only when
  PyTorch is importable (:class:`repro.errors.BackendError` otherwise;
  the CI leg auto-skips). Kernel solves stay on the bitwise-stable
  SciPy LAPACK primitive; the backend's job is tensor interop at the
  boundary (``cast`` accepts tensors, :meth:`TorchArrayBackend.tensor`
  returns them).

The kernel never branches on dtype: consumers call ``backend.cast``
unconditionally on every array entering the analog physics, and the
default backend's cast is the identity on float64 input — which is how
the float64 path stays byte-identical without a parallel code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.linalg import get_lapack_funcs

from repro.errors import BackendError

__all__ = [
    "ArrayBackend",
    "DEFAULT_BACKEND",
    "F32_TOLERANCE",
    "ToleranceContract",
    "TorchArrayBackend",
    "available_backends",
    "canonical_dtype",
    "get_backend",
    "lapack_solvers",
    "register_backend",
]

_F32 = np.dtype(np.float32)
_F64 = np.dtype(np.float64)

#: Name resolved by :func:`get_backend` when no backend is requested.
DEFAULT_BACKEND = "numpy"


def canonical_dtype(dtype) -> np.dtype:
    """The kernel dtype for ``dtype``: float32 stays, all else is float64.

    The analog engine supports exactly two precision tiers; integer or
    float16 inputs promote to the float64 tier rather than silently
    computing at a precision the tolerance contracts don't cover.
    """
    return _F32 if np.dtype(dtype) == _F32 else _F64


#: canonical dtype -> ``(getrf, getrs)``, resolved once per process.
_LAPACK: dict[np.dtype, tuple] = {}


def lapack_solvers(dtype) -> tuple:
    """Memoized ``(getrf, getrs)`` LAPACK pair for ``dtype``'s tier.

    For float64 this resolves the identical ``dgetrf``/``dgetrs``
    bindings the kernel has always used (preserving byte-identity);
    float32 resolves ``sgetrf``/``sgetrs``. One resolution per dtype per
    process — :class:`repro.core.common.FactoredSystem` calls this on
    every construction.
    """
    dt = canonical_dtype(dtype)
    pair = _LAPACK.get(dt)
    if pair is None:
        pair = get_lapack_funcs(("getrf", "getrs"), (np.empty((1, 1), dtype=dt),))
        _LAPACK[dt] = pair
    return pair


@dataclass(frozen=True)
class ToleranceContract:
    """What a backend promises relative to the float64 reference tier.

    ``rtol`` bounds the relative-L1 deviation (the paper's Eq. 6 error
    metric): ``sum|actual - reference| / sum|reference|``. ``atol`` is
    an absolute element-wise escape hatch for near-zero references.
    Both zero (the default) means **bit-identical** — checked with
    ``np.array_equal``, not a tolerance.
    """

    rtol: float = 0.0
    atol: float = 0.0

    @property
    def bit_identical(self) -> bool:
        return self.rtol == 0.0 and self.atol == 0.0

    def deviation(self, actual, reference) -> float:
        """Relative-L1 deviation of ``actual`` from ``reference``."""
        act = np.asarray(actual, dtype=np.float64)
        ref = np.asarray(reference, dtype=np.float64)
        num = float(np.sum(np.abs(act - ref)))
        denom = float(np.sum(np.abs(ref)))
        if denom == 0.0:
            return 0.0 if num == 0.0 else float("inf")
        return num / denom

    def admits(self, actual, reference) -> bool:
        """Whether ``actual`` satisfies this contract against ``reference``."""
        act = np.asarray(actual, dtype=np.float64)
        ref = np.asarray(reference, dtype=np.float64)
        if act.shape != ref.shape:
            return False
        if self.bit_identical:
            return bool(np.array_equal(act, ref))
        if self.deviation(act, ref) <= self.rtol:
            return True
        return bool(np.max(np.abs(act - ref), initial=0.0) <= self.atol)


#: The float32 tier's documented contract. The dominant deviation source
#: is not float32 rounding (~1e-7 relative) but converter code flips: a
#: voltage landing within half a float32 ulp of a 12-bit quantization
#: boundary can take the adjacent code, a ~2.4e-4-of-full-scale step
#: that gain ranging then propagates. The grid in
#: ``tests/test_kernel_equivalence.py`` measures well under this bound;
#: the margin absorbs boundary flips on unseen seeds.
F32_TOLERANCE = ToleranceContract(rtol=5e-3, atol=5e-4)


class ArrayBackend:
    """One precision/namespace tier of the analog kernel.

    Instances are stateless and shared (``get_backend`` memoizes); the
    kernel consumes exactly four things: ``xp`` (the array namespace),
    ``dtype`` (canonical), ``lapack()`` (dtype-matched solver pair), and
    ``cast`` — the universal entry coercion, a no-op on arrays already
    at the backend dtype.
    """

    def __init__(
        self,
        name: str,
        dtype,
        tolerance: ToleranceContract,
        description: str = "",
    ):
        self.name = name
        self.dtype = canonical_dtype(dtype)
        self.tolerance = tolerance
        self.description = description or f"{self.dtype.name} on NumPy"

    @property
    def xp(self):
        """The array namespace kernel math runs in."""
        return np

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def cast(self, value):
        """``value`` at the backend dtype (``None`` passes through).

        For the default float64 backend on float64 input this returns
        the *same object* — no copy, no bit changes — which is what
        keeps the default path byte-identical while letting consumers
        cast unconditionally.
        """
        if value is None:
            return None
        return np.asarray(value, dtype=self.dtype)

    def to_numpy(self, value) -> np.ndarray:
        """``value`` as a NumPy array (dtype preserved)."""
        return np.asarray(value)

    def lapack(self) -> tuple:
        """``(getrf, getrs)`` matching :attr:`dtype` (memoized)."""
        return lapack_solvers(self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"dtype={self.dtype.name!r}, tolerance={self.tolerance!r})"
        )


class TorchArrayBackend(ArrayBackend):
    """Torch-interop tier behind the same seam (requires PyTorch).

    Dense solves still run through the bitwise-stable SciPy LAPACK
    primitive — torch's batched ``linalg`` would break the kernel's
    per-column operation-order contract — so this backend's value is at
    the boundary: ``cast`` accepts tensors (detached to CPU NumPy at
    the backend dtype) and :meth:`tensor` hands results back as torch
    tensors for callers embedding the crossbar physics in tensor
    pipelines.
    """

    def __init__(self, name: str = "torch", dtype=np.float32):
        try:
            import torch
        except ImportError as exc:
            raise BackendError(
                "torch backend unavailable: PyTorch is not installed "
                "(use 'numpy' or 'numpy-f32')"
            ) from exc
        # Everything past the import runs only with torch installed;
        # the torch-absent contract (BackendError above) is what the
        # coverage floor guards.
        tolerance = (  # pragma: no cover - requires torch
            ToleranceContract() if canonical_dtype(dtype) == _F64 else F32_TOLERANCE
        )
        super().__init__(  # pragma: no cover - requires torch
            name, dtype, tolerance, f"{canonical_dtype(dtype).name} with torch interop"
        )
        self._torch = torch  # pragma: no cover - requires torch

    @property
    def xp(self):  # pragma: no cover - requires torch
        return self._torch

    def cast(self, value):  # pragma: no cover - requires torch
        if value is None:
            return None
        if isinstance(value, self._torch.Tensor):
            value = value.detach().cpu().numpy()
        return np.asarray(value, dtype=self.dtype)

    def to_numpy(self, value) -> np.ndarray:  # pragma: no cover - requires torch
        if isinstance(value, self._torch.Tensor):
            return value.detach().cpu().numpy()
        return np.asarray(value)

    def tensor(self, value):  # pragma: no cover - requires torch
        """``value`` as a torch tensor at the backend dtype."""
        return self._torch.as_tensor(self.cast(value))


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_ALIASES: dict[str, str] = {}
_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], aliases: Sequence[str] = ()
) -> None:
    """Register (or replace) a backend factory under ``name`` + aliases.

    The factory runs lazily on first :func:`get_backend` and may raise
    :class:`~repro.errors.BackendError` when the environment lacks a
    dependency (how the torch tier degrades without torch installed).
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    for alias in aliases:
        _ALIASES[alias] = name


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend by name/alias (``None`` -> the default tier).

    Instances pass through, so APIs can accept either form. Unknown
    names and unconstructible backends raise
    :class:`~repro.errors.BackendError`.
    """
    if name is None:
        name = DEFAULT_BACKEND
    if isinstance(name, ArrayBackend):
        return name
    key = _ALIASES.get(name, name)
    backend = _INSTANCES.get(key)
    if backend is None:
        factory = _FACTORIES.get(key)
        if factory is None:
            known = ", ".join(sorted(set(_FACTORIES) | set(_ALIASES)))
            raise BackendError(f"unknown array backend {name!r} (known: {known})")
        backend = factory()
        _INSTANCES[key] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names constructible in this environment."""
    names = []
    for key in sorted(_FACTORIES):
        try:
            get_backend(key)
        except BackendError:
            continue
        names.append(key)
    return tuple(names)


register_backend(
    "numpy",
    lambda: ArrayBackend("numpy", np.float64, ToleranceContract()),
    aliases=("numpy-f64", "f64", "float64"),
)
register_backend(
    "numpy-f32",
    lambda: ArrayBackend("numpy-f32", np.float32, F32_TOLERANCE),
    aliases=("f32", "float32"),
)
register_backend("torch", lambda: TorchArrayBackend(), aliases=("torch-f32",))
