"""Baseline: the original (monolithic) AMC solver.

One large INV circuit (Fig. 1b) holding the whole matrix in a single
array pair — the design BlockAMC is compared against throughout the
paper's evaluation. Subject to exactly the same non-idealities, but at
full array size, which is what degrades its accuracy and inflates its
periphery cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amc.config import HardwareConfig
from repro.amc.interfaces import ADC, DAC
from repro.amc.ops import AMCOperations
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    auto_range,
    input_voltage_scale,
    solve_columns,
)
from repro.core.solution import SolveResult
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_square_matrix, check_vector


@dataclass(frozen=True)
class PreparedOriginalAMC:
    """A programmed monolithic INV solver bound to one matrix."""

    matrix: np.ndarray
    scale: float
    array: CrossbarArray
    ops: AMCOperations
    input_fraction: float

    def solve(self, b: np.ndarray, rng=None) -> SolveResult:
        """Solve ``A x = b`` on the programmed array."""
        n = self.matrix.shape[0]
        b = check_vector(b, "b", size=n)
        rng = as_generator(rng)

        config = self.ops.config
        dac = DAC(config.converters)
        adc = ADC(config.converters)
        v_fs = config.converters.v_fs

        def run(k):
            v_in = dac.convert(k * b)
            op = self.ops.inv(self.array, v_in, label="INV(A)", rng=rng)
            return float(np.max(np.abs(op.output))), op

        k0 = input_voltage_scale(b, v_fs, self.input_fraction)
        op, k = auto_range(run, k0, v_fs)
        # The circuit returns -A_n^-1 v_in; undo sign and scaling digitally.
        x = -adc.convert(op.output) / (k * self.scale)

        reference = solve_columns(self.matrix, b, what="system matrix")
        return SolveResult(
            x=x,
            reference=reference,
            solver="original-amc",
            operations=(op,),
            metadata={
                "scale": self.scale,
                "input_scale": k,
                "opa_count": n,
                "dac_count": n,
                "adc_count": n,
                "device_count": self.array.device_count,
                "dac_conversions": 1,
                "adc_conversions": 1,
            },
        )


class OriginalAMCSolver:
    """Solve linear systems with a single full-size INV circuit."""

    name = "original-amc"

    def __init__(
        self,
        config: HardwareConfig | None = None,
        input_fraction: float = DEFAULT_INPUT_FRACTION,
    ):
        self.config = config or HardwareConfig.ideal()
        self.input_fraction = input_fraction

    def prepare(self, matrix: np.ndarray, rng=None) -> PreparedOriginalAMC:
        """Normalize and program the full matrix into one array pair."""
        matrix = check_square_matrix(matrix)
        rng = as_generator(rng)
        normalized, scale = normalize_matrix(matrix)
        array = CrossbarArray.program(
            normalized,
            self.config.programming,
            rng,
            g_unit=self.config.g_unit,
            pre_normalized=True,
        )
        return PreparedOriginalAMC(
            matrix=matrix,
            scale=scale,
            array=array,
            ops=AMCOperations(self.config),
            input_fraction=self.input_fraction,
        )

    def solve(self, matrix: np.ndarray, b: np.ndarray, rng=None) -> SolveResult:
        """Program the array and solve ``A x = b`` in one call."""
        rng = as_generator(rng)
        prepared = self.prepare(matrix, rng)
        return prepared.solve(b, rng)
