"""Named experiment suites matching the paper's figures.

Each suite bundles the workload (matrix family + sizes), the hardware
configuration, and the trial count used by one figure, so benches and
examples state *which* paper experiment they regenerate instead of
repeating magic parameters. ``quick`` variants shrink sizes/trials to
keep default benchmark runs fast; paper-scale runs pass ``quick=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.amc.config import HardwareConfig
from repro.errors import ValidationError
from repro.workloads.matrices import toeplitz_matrix, wishart_matrix

#: Matrix sizes swept by the paper's accuracy figures (8x8 .. 512x512).
PAPER_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512)

#: Sizes used by quick (CI-friendly) runs.
QUICK_SIZES: tuple[int, ...] = (8, 16, 32, 64)

#: Monte-Carlo trials per size in the paper.
PAPER_TRIALS = 40

#: Trials per size in quick runs.
QUICK_TRIALS = 5


@dataclass(frozen=True)
class ExperimentSuite:
    """One figure's workload and hardware configuration.

    Attributes
    ----------
    name:
        Suite identifier (e.g. ``"fig7-wishart"``).
    figure:
        The paper figure this suite regenerates.
    matrix_factory:
        ``matrix_factory(size, rng) -> ndarray``.
    hardware_factory:
        ``hardware_factory() -> HardwareConfig``.
    sizes:
        Matrix sizes to sweep.
    trials:
        Monte-Carlo trials per size.
    """

    name: str
    figure: str
    matrix_factory: Callable[[int, np.random.Generator], np.ndarray]
    hardware_factory: Callable[[], HardwareConfig]
    sizes: tuple[int, ...]
    trials: int


def _wishart(size, rng):
    return wishart_matrix(size, rng)


def _toeplitz(size, rng):
    return toeplitz_matrix(size, rng)


def _suites(quick: bool) -> dict[str, ExperimentSuite]:
    sizes = QUICK_SIZES if quick else PAPER_SIZES
    trials = QUICK_TRIALS if quick else PAPER_TRIALS
    return {
        suite.name: suite
        for suite in (
            ExperimentSuite(
                name="fig6-ideal-mapping",
                figure="Fig. 6(c)",
                matrix_factory=_wishart,
                hardware_factory=HardwareConfig.paper_ideal_mapping,
                sizes=sizes,
                trials=trials,
            ),
            ExperimentSuite(
                name="fig7-wishart",
                figure="Fig. 7(a)",
                matrix_factory=_wishart,
                hardware_factory=HardwareConfig.paper_variation,
                sizes=sizes,
                trials=trials,
            ),
            ExperimentSuite(
                name="fig7-toeplitz",
                figure="Fig. 7(b)",
                matrix_factory=_toeplitz,
                hardware_factory=HardwareConfig.paper_variation,
                sizes=sizes,
                trials=trials,
            ),
            ExperimentSuite(
                name="fig8-twostage",
                figure="Fig. 8(d)",
                matrix_factory=_wishart,
                hardware_factory=HardwareConfig.paper_variation,
                sizes=sizes,
                trials=trials,
            ),
            ExperimentSuite(
                name="fig9-wishart",
                figure="Fig. 9(a)",
                matrix_factory=_wishart,
                hardware_factory=HardwareConfig.paper_interconnect,
                sizes=sizes,
                trials=trials,
            ),
            ExperimentSuite(
                name="fig9-toeplitz",
                figure="Fig. 9(b)",
                matrix_factory=_toeplitz,
                hardware_factory=HardwareConfig.paper_interconnect,
                sizes=sizes,
                trials=trials,
            ),
        )
    }


def list_suites(quick: bool = True) -> list[str]:
    """Names of all registered suites."""
    return sorted(_suites(quick))


def get_suite(name: str, quick: bool = True) -> ExperimentSuite:
    """Look up a suite by name (``quick`` selects CI-size parameters)."""
    suites = _suites(quick)
    if name not in suites:
        raise ValidationError(f"unknown suite {name!r}; available: {sorted(suites)}")
    return suites[name]
