"""Mixed solve-request traffic for the solver service.

Real AMC deployment traffic (the paper's seed/preconditioner use case)
re-solves a working set of matrices against ever-fresh right-hand sides:
a handful of systems are hot (the PDE operator of the current time step,
the precoding channel of the current coherence interval) while new
matrices keep arriving. :func:`mixed_traffic` reproduces that shape —
a deterministic stream of :class:`~repro.serve.requests.SolveRequest`
objects drawing from a bounded working set of mixed Wishart / Toeplitz /
Poisson systems with a skewed (rank-weighted) popularity profile.

Everything derives from one root seed through
:class:`~repro.utils.rng.RngStream`, so a traffic trace replays
bit-exactly — which is what lets the serving bench assert bit-identical
results between the concurrent service and the sequential reference.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ValidationError, is_retryable
from repro.serve.cache import SOLVER_KINDS
from repro.serve.requests import SolveRequest, matrix_digest
from repro.utils.rng import RngStream
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix
from repro.workloads.pde import poisson_1d

__all__ = ["TRAFFIC_FAMILIES", "drive_network", "mixed_traffic"]

#: Matrix families available to traffic generation.
TRAFFIC_FAMILIES = {
    "wishart": lambda n, rng: wishart_matrix(n, rng),
    "toeplitz": lambda n, rng: toeplitz_matrix(n, rng),
    "poisson": lambda n, rng: poisson_1d(n),
}


def mixed_traffic(
    n_requests: int,
    *,
    unique_matrices: int = 6,
    sizes: tuple[int, ...] = (16, 24, 32),
    families: tuple[str, ...] = ("wishart", "toeplitz", "poisson"),
    solvers: tuple[str | None, ...] = (None,),
    skew: float = 1.0,
    deadline_s: float | None = None,
    seed=0,
) -> list[SolveRequest]:
    """Generate a deterministic stream of mixed solve requests.

    Parameters
    ----------
    n_requests:
        Stream length.
    unique_matrices:
        Size of the working set. Matrices cycle through the
        (family, size) grid, so the set mixes all requested families.
    sizes, families:
        The workload grid. Family names must be keys of
        :data:`TRAFFIC_FAMILIES`.
    solvers:
        Solver kinds cycled across the working set; every request for a
        matrix inherits its solver, so same-key requests still coalesce
        into one multi-RHS call per solver kind. ``None`` entries defer
        to the service default. ``("blockamc-1stage",
        "blockamc-2stage")`` produces the mixed one-/two-stage stream
        the multi-stage serving bench drives. Solver assignment is pure
        index arithmetic — it consumes no randomness, so the matrices
        and right-hand sides of a trace are independent of the mix.
    skew:
        Popularity skew: matrix at popularity rank ``r`` is requested
        with weight ``(r + 1) ** -skew`` (0 = uniform; larger = hotter
        head, longer tail of cold matrices).
    deadline_s:
        Optional per-request deadline stamped on every request. A pure
        field assignment — it consumes no randomness, so a deadlined
        trace holds the same matrices, right-hand sides, and seeds as
        the plain trace (results stay comparable bit for bit).
    seed:
        Root seed; the full stream is a pure function of it.
    """
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    if unique_matrices < 1:
        raise ValidationError(f"unique_matrices must be >= 1, got {unique_matrices}")
    if skew < 0.0:
        raise ValidationError(f"skew must be >= 0, got {skew}")
    if not sizes or not families:
        raise ValidationError("sizes and families must be non-empty")
    if not solvers:
        raise ValidationError("solvers must be non-empty")
    for family in families:
        if family not in TRAFFIC_FAMILIES:
            raise ValidationError(
                f"unknown family {family!r}; available: {sorted(TRAFFIC_FAMILIES)}"
            )
    for solver in solvers:
        if solver is not None and solver not in SOLVER_KINDS:
            raise ValidationError(
                f"unknown solver kind {solver!r}; available: {sorted(SOLVER_KINDS)}"
            )

    stream = RngStream(seed)
    working_set = []
    for index in range(unique_matrices):
        family = families[index % len(families)]
        size = sizes[(index // len(families)) % len(sizes)]
        matrix = TRAFFIC_FAMILIES[family](size, stream.child())
        working_set.append(
            (matrix, matrix_digest(matrix), solvers[index % len(solvers)])
        )

    weights = (1.0 + np.arange(unique_matrices)) ** -skew
    weights /= weights.sum()
    picker = stream.child()
    choices = picker.choice(unique_matrices, size=n_requests, p=weights)

    requests = []
    for i, index in enumerate(choices):
        matrix, digest, solver = working_set[index]
        b = random_vector(matrix.shape[0], stream.child())
        request_seed = int(stream.child().integers(0, 2**63 - 1))
        requests.append(
            SolveRequest(
                matrix=matrix,
                b=b,
                solver=solver,
                seed=request_seed,
                deadline_s=deadline_s,
                digest=digest,
            )
        )
    return requests


def drive_network(
    client,
    requests,
    *,
    max_rounds: int = 1,
    backoff_s: float = 0.05,
    timeout_s: float | None = None,
) -> list:
    """Drive a request stream through a network client, fully pipelined.

    Submits every request before gathering any response (the wire
    protocol matches responses by id, so the stream stays in flight),
    then re-submits **retryable** failures — shed load, expired
    deadlines, crashed workers — for up to ``max_rounds`` total rounds,
    sleeping ``backoff_s`` between rounds. This is the canonical client
    loop of the net serving bench and the CI smoke: deterministic
    requests in, an outcome per request out.

    ``client`` is anything with ``submit_request(request) -> ticket``
    (a :class:`~repro.serve.net.client.NetClient`). Returns one outcome
    per request, aligned with the input order: a
    :class:`~repro.core.solution.LeanSolveResult` on success, or the
    typed exception of the *last* round on persistent failure — never a
    bare traceback, never a missing slot.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
    if backoff_s < 0.0:
        raise ValidationError(f"backoff_s must be >= 0, got {backoff_s}")
    outcomes: list = [None] * len(requests)
    pending = list(range(len(requests)))
    for round_index in range(max_rounds):
        if not pending:
            break
        tickets = [(i, client.submit_request(requests[i])) for i in pending]
        retry = []
        for i, ticket in tickets:
            exc = ticket.exception(timeout_s)
            if exc is None:
                outcomes[i] = ticket.result(0)
            else:
                outcomes[i] = exc
                if is_retryable(exc) and round_index + 1 < max_rounds:
                    retry.append(i)
        pending = retry
        if pending and backoff_s > 0.0:
            time.sleep(backoff_s)
    return outcomes
