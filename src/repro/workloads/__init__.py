"""Benchmark workloads: the paper's matrix families and experiment suites."""

from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_invertible_matrix,
    random_vector,
    toeplitz_matrix,
    wishart_matrix,
)
from repro.workloads.pde import poisson_1d, poisson_2d, poisson_rhs_1d
from repro.workloads.suites import (
    PAPER_SIZES,
    ExperimentSuite,
    get_suite,
    list_suites,
)
from repro.workloads.traffic import TRAFFIC_FAMILIES, mixed_traffic

__all__ = [
    "ExperimentSuite",
    "PAPER_SIZES",
    "TRAFFIC_FAMILIES",
    "diagonally_dominant_matrix",
    "get_suite",
    "list_suites",
    "mixed_traffic",
    "poisson_1d",
    "poisson_2d",
    "poisson_rhs_1d",
    "random_invertible_matrix",
    "random_vector",
    "toeplitz_matrix",
    "wishart_matrix",
]
