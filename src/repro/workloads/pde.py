"""PDE-derived linear systems.

The paper's introduction motivates AMC with scientific computing, whose
canonical linear systems come from discretized PDEs. These generators
produce the standard finite-difference Poisson systems:

- :func:`poisson_1d` — the tridiagonal [-1, 2, -1] Laplacian (itself a
  Toeplitz matrix, connecting to the paper's second workload family);
- :func:`poisson_2d` — the 5-point stencil on an N x N grid, the
  workhorse sparse SPD benchmark.

Both are symmetric positive definite (AMC-stable) with condition number
growing as O(n^2) in the 1-D grid size — a harder conditioning profile
than the paper's random families, exercised by the PDE example.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator


def poisson_1d(n: int) -> np.ndarray:
    """1-D Poisson (Dirichlet) stiffness matrix: tridiag(-1, 2, -1)."""
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    matrix = 2.0 * np.eye(n)
    off = np.arange(n - 1)
    matrix[off, off + 1] = -1.0
    matrix[off + 1, off] = -1.0
    return matrix


def poisson_2d(grid: int) -> np.ndarray:
    """2-D Poisson on a ``grid x grid`` interior with the 5-point stencil.

    Returns the dense ``grid^2 x grid^2`` matrix (AMC maps dense arrays;
    sparsity shows up as OFF cells).
    """
    if grid < 2:
        raise ValidationError(f"grid must be >= 2, got {grid}")
    n = grid * grid
    matrix = np.zeros((n, n))
    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            matrix[k, k] = 4.0
            if i > 0:
                matrix[k, k - grid] = -1.0
            if i < grid - 1:
                matrix[k, k + grid] = -1.0
            if j > 0:
                matrix[k, k - 1] = -1.0
            if j < grid - 1:
                matrix[k, k + 1] = -1.0
    return matrix


def poisson_rhs_1d(n: int, source: str = "point", rng=None) -> np.ndarray:
    """Right-hand side for the 1-D problem.

    ``"point"`` puts a unit source mid-domain, ``"uniform"`` a constant
    load, ``"random"`` a random smooth-ish load.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    if source == "point":
        b = np.zeros(n)
        b[n // 2] = 1.0
        return b
    if source == "uniform":
        return np.full(n, 1.0 / n)
    if source == "random":
        rng = as_generator(rng)
        rough = rng.normal(size=n)
        kernel = np.ones(5) / 5.0
        return np.convolve(rough, kernel, mode="same")
    raise ValidationError(f"unknown source {source!r}; use point/uniform/random")
