"""Matrix and vector generators for the paper's benchmarks.

Two families drive the evaluation (Sec. IV):

- **Wishart** matrices ``A = X^T X`` with Gaussian ``X`` (m x n) — random
  symmetric positive definite systems from statistical physics and
  engineering. The aspect ratio ``m / n`` controls conditioning (closer
  to 1 is harder); the paper leaves it unspecified, we default to 2.
- **Toeplitz** matrices — constant along diagonals, as in cyclic
  convolution and discrete Fourier applications. We generate symmetric
  Toeplitz systems with positive, polynomially decaying first-row
  coefficients: the slowly decaying tail makes conditioning deteriorate
  with size, reproducing the paper's observation that large Toeplitz
  systems are much harder for a monolithic AMC solver.

All generators take a seed/Generator and are deterministic given one.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import toeplitz as _toeplitz

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def _check_size(n: int) -> int:
    if not isinstance(n, (int, np.integer)) or n < 1:
        raise ValidationError(f"matrix size must be a positive integer, got {n}")
    return int(n)


def wishart_matrix(n: int, rng=None, aspect: float = 2.0) -> np.ndarray:
    """Random Wishart matrix ``A = X^T X`` with ``X`` of shape ``(m, n)``.

    Parameters
    ----------
    n:
        Output matrix size.
    rng:
        Seed or generator.
    aspect:
        Row ratio ``m = ceil(aspect * n)``; must be >= 1 so the result is
        almost surely positive definite.
    """
    n = _check_size(n)
    check_positive(aspect, "aspect")
    if aspect < 1.0:
        raise ValidationError(f"aspect must be >= 1 for an invertible Wishart, got {aspect}")
    rng = as_generator(rng)
    m = int(np.ceil(aspect * n))
    x = rng.normal(0.0, 1.0, size=(m, n))
    return x.T @ x


def toeplitz_matrix(
    n: int,
    rng=None,
    *,
    decay: float = 0.75,
    dominance: float = 0.5,
    symmetric: bool = True,
    condition_cap: float | None = 300.0,
) -> np.ndarray:
    """Random symmetric (or general) Toeplitz matrix with decaying tail.

    The first row is ``a_0 = 1`` and ``a_k = dominance * u_k /
    (k + 1)^decay`` with ``u_k ~ U(0.5, 1.5)``. With the default
    ``decay = 0.75`` the off-diagonal mass grows with size, so small
    systems are comfortably diagonally dominant (condition ~5 at 8x8)
    while large ones are not (condition ~100 at 512x512) — the
    conditioning trend behind the paper's Fig. 7(b).

    Parameters
    ----------
    n:
        Matrix size.
    rng:
        Seed or generator.
    decay:
        Polynomial decay exponent of the diagonals (> 0).
    dominance:
        Magnitude of the first off-diagonal relative to the main one.
    symmetric:
        Use the same coefficients for rows and columns (default); when
        False an independent first column is drawn.
    condition_cap:
        Redraw (up to 40 times) while the condition number exceeds this
        cap, then return the best draw seen. The random coefficients
        occasionally produce a symbol that nearly vanishes, yielding
        conditions in the thousands; such draws make *every* solver
        fail catastrophically and would bury the size trend under
        outliers. ``None`` disables the cap.
    """
    n = _check_size(n)
    check_positive(decay, "decay")
    check_positive(dominance, "dominance")
    if condition_cap is not None:
        check_positive(condition_cap, "condition_cap")
    rng = as_generator(rng)

    def draw() -> np.ndarray:
        k = np.arange(1, n, dtype=float)

        def tail() -> np.ndarray:
            u = rng.uniform(0.5, 1.5, size=n - 1)
            return dominance * u / (k + 1.0) ** decay

        first_row = np.concatenate([[1.0], tail()])
        first_col = first_row if symmetric else np.concatenate([[1.0], tail()])
        return _toeplitz(first_col, first_row)

    if condition_cap is None:
        return draw()

    def cond_of(matrix: np.ndarray) -> float:
        if symmetric:  # eigvalsh is much cheaper than an SVD at 512
            eigenvalues = np.abs(np.linalg.eigvalsh(matrix))
            lo = float(np.min(eigenvalues))
            return float(np.max(eigenvalues)) / lo if lo > 0.0 else np.inf
        return float(np.linalg.cond(matrix))

    best = None
    best_cond = np.inf
    for _ in range(40):
        candidate = draw()
        cond = cond_of(candidate)
        if cond <= condition_cap:
            return candidate
        if cond < best_cond:
            best, best_cond = candidate, cond
    return best


def diagonally_dominant_matrix(n: int, rng=None, margin: float = 1.1) -> np.ndarray:
    """Random strictly diagonally dominant matrix (always invertible).

    Off-diagonals are uniform in ``[-1, 1]``; each diagonal entry is set
    to ``margin`` times the absolute row sum. Used by property tests
    needing arbitrary well-behaved systems.
    """
    n = _check_size(n)
    if margin <= 1.0:
        raise ValidationError(f"margin must be > 1 for strict dominance, got {margin}")
    rng = as_generator(rng)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    row_sums = np.sum(np.abs(a), axis=1)
    np.fill_diagonal(a, margin * np.maximum(row_sums, 1.0))
    return a


def random_invertible_matrix(n: int, rng=None, condition_cap: float = 1e6) -> np.ndarray:
    """Random dense matrix, redrawn until its condition number is bounded."""
    n = _check_size(n)
    check_positive(condition_cap, "condition_cap")
    rng = as_generator(rng)
    for _ in range(100):
        a = rng.normal(0.0, 1.0, size=(n, n))
        if np.linalg.cond(a) <= condition_cap:
            return a
    raise ValidationError(f"could not draw a matrix with condition <= {condition_cap}")


def random_vector(n: int, rng=None, low: float = -1.0, high: float = 1.0) -> np.ndarray:
    """Random input vector, uniform in ``[low, high)``, never all-zero."""
    n = _check_size(n)
    if low >= high:
        raise ValidationError(f"low ({low}) must be < high ({high})")
    rng = as_generator(rng)
    for _ in range(100):
        v = rng.uniform(low, high, size=n)
        if np.any(v != 0.0):
            return v
    raise ValidationError("could not draw a non-zero vector")  # pragma: no cover
