"""BlockAMC: scalable in-memory analog matrix computing for linear systems.

A full-system reproduction of *BlockAMC: Scalable In-Memory Analog Matrix
Computing for Solving Linear Systems* (Pan, Zuo, Luo, Sun, Huang —
DATE 2024). The package provides:

- the one-stage and multi-stage BlockAMC solvers and the monolithic
  original-AMC baseline (:mod:`repro.core`);
- the complete simulated substrate: RRAM devices (:mod:`repro.devices`),
  crossbar arrays with interconnect parasitics (:mod:`repro.crossbar`),
  an MNA circuit simulator standing in for HSPICE
  (:mod:`repro.circuits`), and the analog macro with its mixed-signal
  periphery (:mod:`repro.amc`);
- workload generators and analysis utilities regenerating every figure
  of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.analysis`).

Quickstart::

    import numpy as np
    from repro import BlockAMCSolver, HardwareConfig, wishart_matrix

    matrix = wishart_matrix(64, rng=0)
    b = np.random.default_rng(1).uniform(-1, 1, 64)
    result = BlockAMCSolver(HardwareConfig.paper_variation()).solve(matrix, b, rng=2)
    print(result.relative_error)
"""

from repro.amc import (
    ADC,
    AMCOperations,
    BlockAMCMacro,
    ConverterConfig,
    DAC,
    HardwareConfig,
    MacroArrays,
    OpAmpConfig,
    OpResult,
    SampleHold,
    SampleHoldConfig,
)
from repro.analysis import (
    ComponentCosts,
    accuracy_sweep,
    format_table,
    paper_relative_error,
    run_trials,
    solver_cost_breakdown,
)
from repro.core import (
    BlockAMCSolver,
    DigitalDirectSolver,
    MultiStageSolver,
    OriginalAMCSolver,
    PartitionSpec,
    SolveResult,
    iterative_refinement,
)
from repro.crossbar import CrossbarArray, ParasiticConfig, ProgrammingConfig
from repro.devices import DeviceSpec, GaussianVariation, StuckFaultModel
from repro.serve import (
    ServiceConfig,
    SolveRequest,
    SolverService,
    run_sequential,
)
from repro.workloads import (
    PAPER_SIZES,
    mixed_traffic,
    random_vector,
    toeplitz_matrix,
    wishart_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "ADC",
    "AMCOperations",
    "BlockAMCMacro",
    "BlockAMCSolver",
    "ComponentCosts",
    "ConverterConfig",
    "CrossbarArray",
    "DAC",
    "DeviceSpec",
    "DigitalDirectSolver",
    "GaussianVariation",
    "HardwareConfig",
    "MacroArrays",
    "MultiStageSolver",
    "OpAmpConfig",
    "OpResult",
    "OriginalAMCSolver",
    "PAPER_SIZES",
    "ParasiticConfig",
    "PartitionSpec",
    "ProgrammingConfig",
    "SampleHold",
    "SampleHoldConfig",
    "ServiceConfig",
    "SolveRequest",
    "SolveResult",
    "SolverService",
    "StuckFaultModel",
    "accuracy_sweep",
    "format_table",
    "iterative_refinement",
    "mixed_traffic",
    "paper_relative_error",
    "random_vector",
    "run_sequential",
    "run_trials",
    "solver_cost_breakdown",
    "toeplitz_matrix",
    "wishart_matrix",
    "__version__",
]
