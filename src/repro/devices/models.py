"""RRAM device specification.

The paper treats each RRAM cell as "a resistor with a specific conductance
given by matrix mapping" (Sec. IV). A :class:`DeviceSpec` captures the
physical envelope that mapping must respect: the programmable conductance
window ``[g_min, g_max]``, an optional number of discrete levels, and the
residual OFF-state leakage ``g_off`` of cells meant to store exact zeros.

The paper's reference configuration uses a unit conductance
``G0 = 100 uS`` and normalizes matrices so the largest element maps to
``G0``; :func:`DeviceSpec.paper_reference` reproduces that setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.utils.validation import check_positive

#: Unit conductance used throughout the paper (100 microsiemens).
PAPER_G0_SIEMENS = 100e-6


@dataclass(frozen=True)
class DeviceSpec:
    """Physical envelope of one analog RRAM cell.

    Parameters
    ----------
    g_min:
        Smallest programmable ON conductance, in siemens.
    g_max:
        Largest programmable conductance, in siemens.
    g_off:
        Leakage conductance of a cell left in the OFF state (stores "0").
        Real HRS cells are never perfect opens; 0 models an ideal open.
    levels:
        Number of discrete programmable levels between ``g_min`` and
        ``g_max`` (inclusive). ``None`` means continuously tunable analog
        conductance, which is what the paper assumes.
    """

    g_min: float = 1e-6
    g_max: float = PAPER_G0_SIEMENS
    g_off: float = 0.0
    levels: int | None = None

    def __post_init__(self):
        check_positive(self.g_max, "g_max")
        check_positive(self.g_min, "g_min")
        if self.g_min >= self.g_max:
            raise DeviceError(f"g_min ({self.g_min}) must be < g_max ({self.g_max})")
        if self.g_off < 0.0:
            raise DeviceError(f"g_off must be >= 0, got {self.g_off}")
        if self.g_off >= self.g_min:
            raise DeviceError("g_off must be below g_min (OFF must be distinguishable)")
        if self.levels is not None and self.levels < 2:
            raise DeviceError(f"levels must be >= 2 or None, got {self.levels}")

    @classmethod
    def paper_reference(cls) -> "DeviceSpec":
        """The device envelope used for the paper's simulations.

        Continuous analog conductance up to ``G0 = 100 uS`` with an ideal
        OFF state and an effectively unbounded lower level — the paper
        treats each cell as "a resistor with a specific conductance given
        by matrix mapping", so mapping itself is exact and non-ideality
        enters only through the variation/parasitic models. Use
        :meth:`finite_window` for realistic-window ablations.
        """
        return cls(g_min=PAPER_G0_SIEMENS * 1e-9, g_max=PAPER_G0_SIEMENS, g_off=0.0, levels=None)

    @classmethod
    def finite_window(cls, dynamic_range: float = 100.0, levels: int | None = None) -> "DeviceSpec":
        """A realistic programmable window (ablation studies).

        ``g_min = g_max / dynamic_range``; matrix entries smaller than
        half the bottom level are dropped to OFF by the mapping, a real
        RRAM limitation the paper's model ignores.
        """
        return cls(
            g_min=PAPER_G0_SIEMENS / dynamic_range,
            g_max=PAPER_G0_SIEMENS,
            g_off=0.0,
            levels=levels,
        )

    @property
    def dynamic_range(self) -> float:
        """Ratio ``g_max / g_min`` of the programmable window."""
        return self.g_max / self.g_min

    def contains(self, conductance: np.ndarray) -> np.ndarray:
        """Element-wise mask: is each value programmable (or exactly OFF)?"""
        g = np.asarray(conductance, dtype=float)
        in_window = (g >= self.g_min) & (g <= self.g_max)
        is_off = g == self.g_off
        return in_window | is_off

    def clip(self, conductance: np.ndarray) -> np.ndarray:
        """Clip targets into the programmable window, keeping exact OFF cells.

        Values below ``g_min / 2`` are treated as intentional zeros and
        mapped to ``g_off``; everything else is clipped into
        ``[g_min, g_max]``. This mirrors how a programming controller would
        decide between "leave the cell OFF" and "program the smallest level".
        """
        g = np.asarray(conductance, dtype=float)
        clipped = np.clip(g, self.g_min, self.g_max)
        off_mask = g < (self.g_min / 2.0)
        return np.where(off_mask, self.g_off, clipped)
