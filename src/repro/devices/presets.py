"""Device family presets and conductance drift.

The paper's Sec. II surveys the resistive memory families usable for
AMC — RRAM, PCM, MRAM, FTJ, FeFET — and picks analog RRAM. These
presets parameterize the alternatives so the same experiments can be
re-run against a different device technology, and add the conductance
*drift* model that makes PCM the interesting counterpoint: programmed
PCM conductance decays as a power law

    g(t) = g0 * (t / t0) ** (-nu)

(nu ~ 0.05 typically), so a matrix programmed once degrades over time —
an effect absent from the paper but decisive for deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.models import PAPER_G0_SIEMENS, DeviceSpec
from repro.errors import DeviceError
from repro.utils.validation import check_positive


def rram_preset() -> DeviceSpec:
    """Analog filamentary RRAM — the paper's choice (continuous levels)."""
    return DeviceSpec.paper_reference()


def rram_64_level_preset() -> DeviceSpec:
    """TiOx RRAM with 64 programmable levels (the paper's ref. [21])."""
    return DeviceSpec.finite_window(dynamic_range=100.0, levels=64)


def pcm_preset() -> DeviceSpec:
    """Phase-change memory: wide window, quasi-analog SET staircase.

    PCM offers a larger dynamic range than filamentary RRAM but drifts
    (see :class:`DriftModel`); ~16 reliably distinguishable levels.
    """
    return DeviceSpec(
        g_min=PAPER_G0_SIEMENS / 300.0,
        g_max=PAPER_G0_SIEMENS,
        g_off=0.0,
        levels=16,
    )


def mram_preset() -> DeviceSpec:
    """Spin-transfer-torque MRAM: binary, high conductance, no drift.

    Two levels only — usable for AMC solely through bit-sliced or
    binary-matrix mappings; included to show why the paper dismisses it
    for analog matrix storage.
    """
    return DeviceSpec(
        g_min=PAPER_G0_SIEMENS / 3.0,
        g_max=PAPER_G0_SIEMENS,
        g_off=0.0,
        levels=2,
    )


def fefet_preset() -> DeviceSpec:
    """FeFET: moderate analog capability (~32 levels), good retention."""
    return DeviceSpec(
        g_min=PAPER_G0_SIEMENS / 100.0,
        g_max=PAPER_G0_SIEMENS,
        g_off=0.0,
        levels=32,
    )


#: All presets by family name.
DEVICE_PRESETS = {
    "rram": rram_preset,
    "rram-64": rram_64_level_preset,
    "pcm": pcm_preset,
    "mram": mram_preset,
    "fefet": fefet_preset,
}


def get_preset(family: str) -> DeviceSpec:
    """Look up a device family preset by name."""
    try:
        return DEVICE_PRESETS[family]()
    except KeyError:
        raise DeviceError(
            f"unknown device family {family!r}; available: {sorted(DEVICE_PRESETS)}"
        ) from None


@dataclass(frozen=True)
class DriftModel:
    """Power-law conductance drift ``g(t) = g0 (t/t0)^-nu``.

    Parameters
    ----------
    nu:
        Drift exponent (PCM: ~0.03-0.1; RRAM: ~0; set 0 to disable).
    t0:
        Reference time at which the programmed value was verified
        (seconds).
    """

    nu: float = 0.05
    t0: float = 1.0

    def __post_init__(self):
        if self.nu < 0.0:
            raise DeviceError(f"nu must be >= 0, got {self.nu}")
        check_positive(self.t0, "t0")

    @classmethod
    def pcm_typical(cls) -> "DriftModel":
        """Typical as-measured PCM drift (nu = 0.05, verified at 1 s)."""
        return cls(nu=0.05, t0=1.0)

    @classmethod
    def none(cls) -> "DriftModel":
        """No drift (ideal retention)."""
        return cls(nu=0.0)

    def apply(self, conductance: np.ndarray, elapsed_s: float) -> np.ndarray:
        """Conductances after ``elapsed_s`` seconds since verification.

        Times earlier than ``t0`` return the programmed values (drift is
        referenced to the verify read).
        """
        if elapsed_s < 0.0:
            raise DeviceError(f"elapsed_s must be >= 0, got {elapsed_s}")
        conductance = np.asarray(conductance, dtype=float)
        if self.nu == 0.0 or elapsed_s <= self.t0:
            return conductance.copy()
        factor = (elapsed_s / self.t0) ** (-self.nu)
        return conductance * factor
