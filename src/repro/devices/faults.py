"""Stuck-at fault injection.

The paper motivates partitioning partly with yield: "memory cells may get
stuck in the ON or OFF state, losing the tunability of conductance states".
:class:`StuckFaultModel` injects such cells into a programmed conductance
array so fault-tolerance experiments can quantify the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.models import DeviceSpec
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class StuckFaultModel:
    """Random stuck-at-ON / stuck-at-OFF cell faults.

    Parameters
    ----------
    p_stuck_on:
        Probability that a cell is stuck at ``g_max`` (always ON).
    p_stuck_off:
        Probability that a cell is stuck at ``g_off`` (always OFF).

    The two fault classes are disjoint; their probabilities must sum to at
    most 1.
    """

    p_stuck_on: float = 0.0
    p_stuck_off: float = 0.0

    def __post_init__(self):
        check_probability(self.p_stuck_on, "p_stuck_on")
        check_probability(self.p_stuck_off, "p_stuck_off")
        if self.p_stuck_on + self.p_stuck_off > 1.0:
            raise ValueError("p_stuck_on + p_stuck_off must be <= 1")

    @property
    def is_trivial(self) -> bool:
        """True when no faults would ever be injected."""
        return self.p_stuck_on == 0.0 and self.p_stuck_off == 0.0

    def apply(self, conductance: np.ndarray, spec: DeviceSpec, rng=None) -> np.ndarray:
        """Overwrite randomly chosen cells with stuck values.

        Parameters
        ----------
        conductance:
            Programmed conductances (siemens).
        spec:
            Device envelope providing the stuck values (``g_max`` for ON,
            ``g_off`` for OFF).
        rng:
            Seed or generator.

        Returns
        -------
        numpy.ndarray
            A new array with faults injected (input is not modified).
        """
        conductance = np.asarray(conductance, dtype=float)
        if self.is_trivial:
            return conductance.copy()
        rng = as_generator(rng)
        draw = rng.random(conductance.shape)
        out = conductance.copy()
        out[draw < self.p_stuck_on] = spec.g_max
        off_band = (draw >= self.p_stuck_on) & (draw < self.p_stuck_on + self.p_stuck_off)
        out[off_band] = spec.g_off
        return out
