"""Conductance-level quantization.

Analog RRAM cells offer a finite number of distinguishable conductance
levels (the paper cites 64-level TiOx devices). When a
:class:`~repro.devices.models.DeviceSpec` declares ``levels``, mapped
conductances snap to the nearest level before variation is applied.
"""

from __future__ import annotations

import numpy as np

from repro.devices.models import DeviceSpec


def level_grid(spec: DeviceSpec) -> np.ndarray:
    """Return the array of programmable conductance levels for ``spec``.

    Levels are uniformly spaced in conductance between ``g_min`` and
    ``g_max`` (linear spacing is what incremental-pulse programming with
    verify produces). Raises ``ValueError`` for continuous devices.
    """
    if spec.levels is None:
        raise ValueError("device is continuously tunable; no level grid exists")
    return np.linspace(spec.g_min, spec.g_max, spec.levels)


def quantize_conductance(target: np.ndarray, spec: DeviceSpec) -> np.ndarray:
    """Snap target conductances to the nearest programmable level.

    OFF cells (``target == spec.g_off``, typically 0) are preserved
    exactly; everything else snaps to the closest entry of
    :func:`level_grid`. For continuous devices the targets are returned
    unchanged (after clipping into the window).

    Parameters
    ----------
    target:
        Target conductances in siemens (already inside the device window,
        e.g. produced by ``DeviceSpec.clip``).
    spec:
        Device envelope.
    """
    target = np.asarray(target, dtype=float)
    if spec.levels is None:
        return spec.clip(target)
    grid = level_grid(spec)
    off_mask = target == spec.g_off
    clipped = np.clip(target, spec.g_min, spec.g_max)
    # For each element find the nearest grid point; grid is sorted so use
    # searchsorted and compare the two neighbours.
    idx = np.searchsorted(grid, clipped)
    idx = np.clip(idx, 1, grid.size - 1)
    left = grid[idx - 1]
    right = grid[idx]
    snapped = np.where(np.abs(clipped - left) <= np.abs(right - clipped), left, right)
    return np.where(off_mask, spec.g_off, snapped)
