"""RRAM device substrate.

Models the analog resistive memory cells the paper maps matrices onto:

- :class:`~repro.devices.models.DeviceSpec` — conductance window, number of
  programmable levels, leakage of the OFF state;
- variation models (:mod:`repro.devices.variations`) — the paper assumes
  Gaussian programming variation with sigma = 0.05 * G0 achieved through a
  write-and-verify scheme;
- :mod:`repro.devices.quantization` — finite conductance levels (e.g. the
  64-level TiOx devices the paper cites);
- :mod:`repro.devices.programming` — an explicit write-and-verify pulse
  loop, used to justify the Gaussian residual-error model;
- :mod:`repro.devices.faults` — stuck-at-ON / stuck-at-OFF cells.
"""

from repro.devices.faults import StuckFaultModel
from repro.devices.models import DeviceSpec
from repro.devices.presets import DEVICE_PRESETS, DriftModel, get_preset
from repro.devices.programming import ProgrammingResult, write_verify
from repro.devices.quantization import quantize_conductance
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    NoVariation,
    RelativeGaussianVariation,
    VariationModel,
)

__all__ = [
    "DEVICE_PRESETS",
    "DeviceSpec",
    "DriftModel",
    "GaussianVariation",
    "LognormalVariation",
    "NoVariation",
    "ProgrammingResult",
    "RelativeGaussianVariation",
    "StuckFaultModel",
    "VariationModel",
    "get_preset",
    "quantize_conductance",
    "write_verify",
]
