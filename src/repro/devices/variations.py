"""Conductance variation models.

The paper's accuracy study (Figs. 7-9) assumes device programming variation
"following Gaussian distribution, with a standard deviation of 0.05 G0,
which is achievable by using the write&verify algorithm". That additive
absolute-sigma model is :class:`GaussianVariation`. A multiplicative
:class:`LognormalVariation` is provided as well, since measured RRAM
conductance spreads are often relative; it is used by ablation benches.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.devices.models import PAPER_G0_SIEMENS
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

#: Relative standard deviation used in the paper (sigma = 0.05 * G0).
PAPER_SIGMA_RELATIVE = 0.05


def _check_trials(trials: int) -> None:
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")


class VariationModel(abc.ABC):
    """Transforms target conductances into (random) programmed conductances."""

    @abc.abstractmethod
    def apply(self, target: np.ndarray, rng=None) -> np.ndarray:
        """Return programmed conductances for the given targets.

        Parameters
        ----------
        target:
            Array of target conductances in siemens. Cells exactly at zero
            (OFF cells) are left untouched: variation models programming
            error, and OFF cells are not programmed.
        rng:
            Seed or ``numpy.random.Generator``.
        """

    def apply_batch(self, target: np.ndarray, trials: int, rng=None) -> np.ndarray:
        """Draw ``trials`` independent programmed arrays in one call.

        Returns an array of shape ``(trials, *target.shape)``. The
        built-in models draw all their noise in a single vectorized call;
        because NumPy generators consume the bit stream value by value,
        the result is *bit-identical* to ``trials`` sequential
        :meth:`apply` calls against the same generator (the batched
        Monte-Carlo engine relies on this, and tests enforce it). The
        generic fallback used by subclasses simply loops.
        """
        _check_trials(trials)
        target = np.asarray(target, dtype=float)
        if trials == 0:
            return np.empty((0, *target.shape))
        # Coerce once so an int/None seed becomes a single advancing
        # generator — re-seeding per trial would make every "independent"
        # draw identical.
        rng = as_generator(rng)
        return np.stack([self.apply(target, rng) for _ in range(trials)])

    def signature(self) -> tuple:
        """Stable content signature for cache keys.

        ``(class name, sorted scalar parameters)`` — two model instances
        with equal parameters produce equal signatures, and any parameter
        change produces a different one. Subclasses with non-scalar state
        must override.
        """
        return (
            type(self).__name__,
            tuple(sorted((name, float(value)) for name, value in vars(self).items())),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(f"{k}={v!r}" for k, v in vars(self).items())
        return f"{type(self).__name__}({fields})"


class NoVariation(VariationModel):
    """Ideal programming: programmed conductance equals the target."""

    def apply(self, target: np.ndarray, rng=None) -> np.ndarray:
        return np.array(target, dtype=float, copy=True)

    def apply_batch(self, target: np.ndarray, trials: int, rng=None) -> np.ndarray:
        _check_trials(trials)
        target = np.asarray(target, dtype=float)
        return np.broadcast_to(target, (trials, *target.shape)).copy()


class GaussianVariation(VariationModel):
    """Additive Gaussian programming error with absolute sigma.

    This is the paper's model: ``g = g_target + N(0, sigma)`` with
    ``sigma = 0.05 * G0`` independent of the target value. Negative draws
    are clipped at zero (conductance cannot be negative).

    Parameters
    ----------
    sigma:
        Standard deviation in siemens.
    """

    def __init__(self, sigma: float):
        self.sigma = check_positive(sigma, "sigma")

    @classmethod
    def paper_reference(cls, g0: float = PAPER_G0_SIEMENS) -> "GaussianVariation":
        """sigma = 0.05 * G0, the value used in Figs. 7-9."""
        return cls(PAPER_SIGMA_RELATIVE * g0)

    def apply(self, target: np.ndarray, rng=None) -> np.ndarray:
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        noise = rng.normal(0.0, self.sigma, size=target.shape)
        programmed = np.where(target > 0.0, target + noise, target)
        return np.clip(programmed, 0.0, None)

    def apply_batch(self, target: np.ndarray, trials: int, rng=None) -> np.ndarray:
        _check_trials(trials)
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        noise = rng.normal(0.0, self.sigma, size=(trials, *target.shape))
        programmed = np.where(target > 0.0, target + noise, target)
        return np.clip(programmed, 0.0, None)


class RelativeGaussianVariation(VariationModel):
    """Gaussian programming error proportional to the target conductance.

    ``g = g_target * (1 + N(0, sigma_rel))``. This is the reading of the
    paper's "sigma = 0.05 G0" that reproduces its error magnitudes: each
    cell is programmed to within 5% *of its own state* (what a
    write-and-verify loop with a relative acceptance band achieves). The
    absolute-sigma reading (:class:`GaussianVariation`) would bury the
    weak off-diagonal blocks of a large normalized Wishart matrix in
    noise and produce errors far above the paper's Fig. 7 — the
    ``bench_ablation_variation`` bench quantifies the difference.

    Parameters
    ----------
    sigma_rel:
        Relative standard deviation (paper: 0.05).
    """

    def __init__(self, sigma_rel: float):
        self.sigma_rel = check_positive(sigma_rel, "sigma_rel")

    @classmethod
    def paper_reference(cls) -> "RelativeGaussianVariation":
        """sigma = 5% of each cell's conductance (Figs. 7-9)."""
        return cls(PAPER_SIGMA_RELATIVE)

    def apply(self, target: np.ndarray, rng=None) -> np.ndarray:
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        factor = 1.0 + rng.normal(0.0, self.sigma_rel, size=target.shape)
        programmed = np.where(target > 0.0, target * factor, target)
        return np.clip(programmed, 0.0, None)

    def apply_batch(self, target: np.ndarray, trials: int, rng=None) -> np.ndarray:
        _check_trials(trials)
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        factor = 1.0 + rng.normal(0.0, self.sigma_rel, size=(trials, *target.shape))
        programmed = np.where(target > 0.0, target * factor, target)
        return np.clip(programmed, 0.0, None)


class LognormalVariation(VariationModel):
    """Multiplicative lognormal programming error.

    ``g = g_target * exp(N(0, sigma_rel))`` — the spread scales with the
    target, matching measured RRAM statistics more closely than the
    additive model. Used by ablation benches to check that the paper's
    conclusions do not hinge on the additive assumption.

    Parameters
    ----------
    sigma_rel:
        Standard deviation of the log-conductance.
    """

    def __init__(self, sigma_rel: float):
        self.sigma_rel = check_positive(sigma_rel, "sigma_rel")

    def apply(self, target: np.ndarray, rng=None) -> np.ndarray:
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        factor = np.exp(rng.normal(0.0, self.sigma_rel, size=target.shape))
        return np.where(target > 0.0, target * factor, target)

    def apply_batch(self, target: np.ndarray, trials: int, rng=None) -> np.ndarray:
        _check_trials(trials)
        rng = as_generator(rng)
        target = np.asarray(target, dtype=float)
        factor = np.exp(rng.normal(0.0, self.sigma_rel, size=(trials, *target.shape)))
        return np.where(target > 0.0, target * factor, target)
