"""Write-and-verify programming simulation.

The paper justifies its Gaussian residual-error model by pointing at the
write&verify scheme: a controller alternates programming pulses and read
verification until the cell conductance lands within a tolerance band of
the target. This module simulates that loop explicitly so the residual
error statistics of the closed-loop scheme can be inspected (and compared
against the paper's sigma = 0.05 * G0 assumption).

The pulse response model is deliberately simple but captures the two
effects that matter for the residual distribution: a finite per-pulse
conductance step with cycle-to-cycle randomness, and read noise in the
verify step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.models import DeviceSpec
from repro.errors import ProgrammingError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ProgrammingResult:
    """Outcome of a write-and-verify session on an array of cells.

    Attributes
    ----------
    conductance:
        Final programmed conductances (siemens).
    pulses:
        Number of program pulses applied per cell.
    converged:
        Boolean mask: did each cell reach the tolerance band?
    """

    conductance: np.ndarray
    pulses: np.ndarray
    converged: np.ndarray

    @property
    def mean_pulses(self) -> float:
        """Average number of pulses across all programmed cells."""
        return float(np.mean(self.pulses))

    def residual_sigma(self, target: np.ndarray) -> float:
        """Standard deviation of the final conductance error (siemens)."""
        err = self.conductance - np.asarray(target, dtype=float)
        return float(np.std(err))


def write_verify(
    target: np.ndarray,
    spec: DeviceSpec,
    rng=None,
    *,
    tolerance: float = 2.5e-6,
    pulse_step: float = 2e-6,
    step_sigma_rel: float = 0.3,
    read_noise_sigma: float = 1e-6,
    max_pulses: int = 256,
    strict: bool = False,
) -> ProgrammingResult:
    """Simulate closed-loop write-and-verify programming of an array.

    Each iteration reads every unconverged cell (with Gaussian read noise),
    compares against the target, and applies a SET or RESET pulse whose
    conductance step is ``pulse_step`` perturbed by relative cycle-to-cycle
    randomness ``step_sigma_rel``. The loop stops when the *read* value is
    within ``tolerance`` of the target or after ``max_pulses``.

    Parameters
    ----------
    target:
        Target conductances (siemens). OFF cells (== ``spec.g_off``) are
        skipped: they converge instantly with zero pulses.
    spec:
        Device envelope; programmed values are clipped into its window.
    rng:
        Seed or generator.
    tolerance:
        Verify acceptance band (siemens). The paper's sigma = 0.05*G0 =
        5 uS residual corresponds to a band of about half that width.
    pulse_step:
        Mean conductance change per pulse (siemens).
    step_sigma_rel:
        Relative sigma of the per-pulse step (cycle-to-cycle variation).
    read_noise_sigma:
        Sigma of the verify read (siemens).
    max_pulses:
        Per-cell pulse budget.
    strict:
        If True, raise :class:`~repro.errors.ProgrammingError` when any
        cell fails to converge; otherwise report it in ``converged``.

    Returns
    -------
    ProgrammingResult
    """
    check_positive(tolerance, "tolerance")
    check_positive(pulse_step, "pulse_step")
    check_positive(read_noise_sigma, "read_noise_sigma")
    if max_pulses < 1:
        raise ProgrammingError(f"max_pulses must be >= 1, got {max_pulses}")

    rng = as_generator(rng)
    target = np.asarray(target, dtype=float)
    flat_target = target.ravel()

    conductance = np.full(flat_target.shape, spec.g_off, dtype=float)
    active = flat_target != spec.g_off
    # Start active cells from the bottom of the window, as after a RESET.
    conductance[active] = spec.g_min

    pulses = np.zeros(flat_target.shape, dtype=int)
    converged = ~active  # OFF cells are done by definition.

    pending = active.copy()
    for _ in range(max_pulses):
        if not np.any(pending):
            break
        idx = np.flatnonzero(pending)
        read = conductance[idx] + rng.normal(0.0, read_noise_sigma, size=idx.size)
        error = flat_target[idx] - read
        done = np.abs(error) <= tolerance
        converged[idx[done]] = True
        pending[idx[done]] = False

        todo = idx[~done]
        if todo.size == 0:
            continue
        step = pulse_step * (1.0 + rng.normal(0.0, step_sigma_rel, size=todo.size))
        # Pulse polarity follows the sign of the remaining error; the step
        # magnitude never exceeds what is needed plus its randomness, which
        # models the fine-tuning (shrinking pulse) phase of real schemes.
        remaining = flat_target[todo] - conductance[todo]
        move = np.sign(remaining) * np.minimum(np.abs(step), np.abs(remaining) * 1.5 + tolerance)
        conductance[todo] = np.clip(conductance[todo] + move, spec.g_off, spec.g_max)
        pulses[todo] += 1

    if strict and not np.all(converged):
        failed = int(np.sum(~converged))
        raise ProgrammingError(f"{failed} cell(s) failed to converge in {max_pulses} pulses")

    return ProgrammingResult(
        conductance=conductance.reshape(target.shape),
        pulses=pulses.reshape(target.shape),
        converged=converged.reshape(target.shape),
    )
