"""First-order settling-time models for the AMC circuits.

The paper states (Sec. II) that the MVM circuit's computing time is
"linearly dependent on the maximal sum of conductance along a row in the
array, also controlled by the feedback conductance and gain-bandwidth
product (GBWP) of TIAs" [22], and that the INV circuit's settling is
"related to the minimal eigenvalue of an associated matrix and the GBWP of
OPAs" [23]. We implement exactly those first-order models; they feed the
latency/energy accounting of the macro model and the cost benches.

Model sketch (single-pole op-amp with unity-gain bandwidth ``f_GBW``):

- MVM row ``i`` behaves as a first-order system with closed-loop time
  constant ``tau_i = (1 + (G0 + sum_j G_ij) / G0) / (2 pi f_GBW)``; the
  computation settles within ``ln(1/eps)`` time constants.
- INV settles with the slowest mode ``tau = (1 + 1/lambda_min) /
  (2 pi f_GBW)`` where ``lambda_min`` is the smallest eigenvalue real part
  of the normalized matrix; the circuit is stable only if every
  eigenvalue has positive real part.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.utils.validation import check_matrix, check_positive, check_square_matrix

#: Default settling accuracy target (fraction of final value).
DEFAULT_EPSILON = 1e-4


def mvm_settling_time(
    g: np.ndarray,
    g_feedback: float,
    gbwp_hz: float,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Settling time (seconds) of the MVM circuit.

    Parameters
    ----------
    g:
        Total conductance array loading the TIAs (siemens) — for a dual
        array pair pass ``g_pos + g_neg``.
    g_feedback:
        TIA feedback conductance (``G0``).
    gbwp_hz:
        Op-amp gain-bandwidth product in hertz.
    epsilon:
        Settling target: output within ``epsilon`` of its final value.
    """
    g = check_matrix(g, "g")
    check_positive(g_feedback, "g_feedback")
    check_positive(gbwp_hz, "gbwp_hz")
    check_positive(epsilon, "epsilon")
    max_row_sum = float(np.max(g.sum(axis=1)))
    noise_gain = 1.0 + (g_feedback + max_row_sum) / g_feedback
    tau = noise_gain / (2.0 * np.pi * gbwp_hz)
    return float(np.log(1.0 / epsilon) * tau)


def inv_eigenvalue_margin(matrix: np.ndarray) -> float:
    """Smallest real part among the eigenvalues of the normalized matrix.

    Positive margin means the INV feedback loop has a stable equilibrium
    (all poles in the left half-plane for the single-pole op-amp model).
    """
    matrix = check_square_matrix(matrix)
    eigenvalues = np.linalg.eigvals(matrix)
    return float(np.min(eigenvalues.real))


def is_inv_stable(matrix: np.ndarray, margin: float = 0.0) -> bool:
    """True when the INV circuit converges for this normalized matrix."""
    return inv_eigenvalue_margin(matrix) > margin


def inv_settling_time(
    matrix: np.ndarray,
    gbwp_hz: float,
    epsilon: float = DEFAULT_EPSILON,
    *,
    margin: float | None = None,
) -> float:
    """Settling time (seconds) of the INV circuit for a normalized matrix.

    Parameters
    ----------
    margin:
        Precomputed :func:`inv_eigenvalue_margin` of ``matrix``; pass it
        when the caller already ran the stability check so the (dominant)
        ``eigvals`` call is not repeated.

    Raises
    ------
    ConvergenceError
        If the circuit is unstable (an eigenvalue with non-positive real
        part), in which case the analog solver never settles.
    """
    check_positive(gbwp_hz, "gbwp_hz")
    check_positive(epsilon, "epsilon")
    if margin is None:
        margin = inv_eigenvalue_margin(matrix)
    if margin <= 0.0:
        raise ConvergenceError(
            f"INV circuit unstable: smallest eigenvalue real part {margin:.3g} <= 0"
        )
    tau = (1.0 + 1.0 / margin) / (2.0 * np.pi * gbwp_hz)
    return float(np.log(1.0 / epsilon) * tau)
