"""AC (frequency-domain) analysis.

Small-signal phasor analysis of the same netlists the DC solver takes,
extended with capacitors, inductors, and frequency-dependent op-amp
gains. This is the tool that turns the paper's settling-time citations
([22], [23]) into actual Bode curves: the closed-loop bandwidth of the
MVM/INV circuits read off the -3 dB point matches the pole the
transient model predicts (cross-validated in tests).

Independent sources are interpreted as phasor amplitudes at the
analysis frequency (zero-phase); superposition gives any other input
spectrum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError, SingularCircuitError
from repro.utils.validation import check_positive


def single_pole_gain(a0: float, gbwp_hz: float, freq_hz: float) -> complex:
    """Complex open-loop gain of a single-pole op-amp at ``freq_hz``.

    ``A(jf) = A0 / (1 + j f A0 / GBWP)`` — DC gain ``A0``, unity-gain
    frequency ``GBWP``.
    """
    check_positive(a0, "a0")
    check_positive(gbwp_hz, "gbwp_hz")
    if freq_hz < 0.0:
        raise CircuitError(f"freq_hz must be >= 0, got {freq_hz}")
    return a0 / complex(1.0, freq_hz * a0 / gbwp_hz)


@dataclass(frozen=True)
class ACSolution:
    """Phasor operating point at one frequency."""

    circuit: Circuit
    freq_hz: float
    node_index: dict[str, int]
    branch_index: dict[str, int]
    values: np.ndarray  # complex

    def voltage(self, node: str) -> complex:
        """Complex node voltage (phasor) relative to ground."""
        if node in ("0", "gnd", "GND"):
            return 0.0 + 0.0j
        try:
            return complex(self.values[self.node_index[node]])
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def magnitude(self, node: str) -> float:
        """Voltage magnitude at ``node``."""
        return abs(self.voltage(node))

    def phase_deg(self, node: str) -> float:
        """Voltage phase at ``node`` in degrees."""
        return math.degrees(np.angle(self.voltage(node)))

    def voltages(self, nodes) -> np.ndarray:
        """Complex phasor vector for an iterable of node names."""
        return np.array([self.voltage(node) for node in nodes])


def solve_ac(circuit: Circuit, freq_hz: float) -> ACSolution:
    """Solve the phasor operating point of ``circuit`` at one frequency.

    Resistors stamp their conductance, capacitors ``j w C``, inductors a
    branch with ``v = j w L i``, and VCVS gains may be complex (use
    :func:`single_pole_gain` for op-amps). ``freq_hz = 0`` reduces to DC
    with capacitors open and inductors short.
    """
    if len(circuit) == 0:
        raise CircuitError("cannot solve an empty circuit")
    if freq_hz < 0.0:
        raise CircuitError(f"freq_hz must be >= 0, got {freq_hz}")
    omega = 2.0 * math.pi * freq_hz

    node_index = {node: k for k, node in enumerate(circuit.nodes())}
    n_nodes = len(node_index)
    branch_elements = [
        e
        for e in circuit.elements
        if isinstance(e, (VoltageSource, VCVS, IdealOpAmp, Inductor))
    ]
    branch_index = {e.name: k for k, e in enumerate(branch_elements)}
    size = n_nodes + len(branch_elements)

    matrix = np.zeros((size, size), dtype=complex)
    rhs = np.zeros(size, dtype=complex)

    def node(n: str) -> int | None:
        return None if n == "0" else node_index[n]

    def stamp(r: int | None, c: int | None, value: complex) -> None:
        if r is None or c is None:
            return
        matrix[r, c] += value

    for element in circuit.elements:
        if isinstance(element, Resistor):
            y = element.conductance
            a, b = node(element.a), node(element.b)
            stamp(a, a, y)
            stamp(b, b, y)
            stamp(a, b, -y)
            stamp(b, a, -y)
        elif isinstance(element, Capacitor):
            y = 1j * omega * element.capacitance
            a, b = node(element.a), node(element.b)
            stamp(a, a, y)
            stamp(b, b, y)
            stamp(a, b, -y)
            stamp(b, a, -y)
        elif isinstance(element, Inductor):
            k = n_nodes + branch_index[element.name]
            a, b = node(element.a), node(element.b)
            stamp(a, k, 1.0)
            stamp(b, k, -1.0)
            stamp(k, a, 1.0)
            stamp(k, b, -1.0)
            stamp(k, k, -1j * omega * element.inductance)
        elif isinstance(element, CurrentSource):
            plus, minus = node(element.plus), node(element.minus)
            if plus is not None:
                rhs[plus] += element.value
            if minus is not None:
                rhs[minus] -= element.value
        elif isinstance(element, VoltageSource):
            k = n_nodes + branch_index[element.name]
            plus, minus = node(element.plus), node(element.minus)
            stamp(plus, k, 1.0)
            stamp(minus, k, -1.0)
            stamp(k, plus, 1.0)
            stamp(k, minus, -1.0)
            rhs[k] = element.value
        elif isinstance(element, VCVS):
            k = n_nodes + branch_index[element.name]
            op, om = node(element.out_plus), node(element.out_minus)
            cp, cn = node(element.ctrl_plus), node(element.ctrl_minus)
            stamp(op, k, 1.0)
            stamp(om, k, -1.0)
            stamp(k, op, 1.0)
            stamp(k, om, -1.0)
            stamp(k, cp, -element.gain)
            stamp(k, cn, element.gain)
        elif isinstance(element, IdealOpAmp):
            k = n_nodes + branch_index[element.name]
            stamp(node(element.output), k, 1.0)
            stamp(k, node(element.noninverting), 1.0)
            stamp(k, node(element.inverting), -1.0)
        else:  # pragma: no cover - union is closed
            raise CircuitError(f"unknown element type {type(element).__name__}")

    try:
        values = np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularCircuitError(f"AC MNA system is singular: {exc}") from exc
    if not np.all(np.isfinite(values)):
        raise SingularCircuitError("AC solution contains non-finite values")

    return ACSolution(
        circuit=circuit,
        freq_hz=freq_hz,
        node_index=node_index,
        branch_index=branch_index,
        values=values,
    )


def amc_frequency_response(
    array,
    v_in: np.ndarray,
    freqs_hz,
    *,
    topology: str = "inv",
    a0: float = 1e4,
    gbwp_hz: float = 100e6,
) -> dict[str, np.ndarray]:
    """Closed-loop frequency response of an AMC circuit.

    Rebuilds the Fig. 1 netlist at each frequency with the single-pole
    op-amp gain and records every output's magnitude. Returns
    ``{"freqs_hz": ..., "magnitude": (n_freqs, n_out), "dc": ...}``.

    The -3 dB frequency of the worst output is the circuit's compute
    bandwidth — the quantity that makes the paper's O(1) settling claim
    measurable in the frequency domain.
    """
    freqs = np.asarray(list(freqs_hz), dtype=float)
    if freqs.size == 0 or np.any(freqs < 0.0):
        raise CircuitError("freqs_hz must be non-empty and non-negative")

    def build(gain: complex):
        if topology == "inv":
            return build_inv_circuit(
                array.g_pos, array.g_neg, v_in, g_input=array.g_unit, opamp_gain=gain
            )
        if topology == "mvm":
            return build_mvm_circuit(
                array.g_pos, array.g_neg, v_in, g_feedback=array.g_unit, opamp_gain=gain
            )
        raise CircuitError(f"topology must be 'inv' or 'mvm', got {topology!r}")

    magnitudes = []
    for freq in freqs:
        circuit, outputs = build(single_pole_gain(a0, gbwp_hz, float(freq)))
        solution = solve_ac(circuit, float(freq))
        magnitudes.append(np.abs(solution.voltages(outputs)))
    magnitudes = np.asarray(magnitudes)

    dc_circuit, outputs = build(complex(a0))
    dc = np.abs(solve_ac(dc_circuit, 0.0).voltages(outputs))
    return {"freqs_hz": freqs, "magnitude": magnitudes, "dc": dc}


def minus_3db_frequency(freqs_hz: np.ndarray, magnitude: np.ndarray, dc: np.ndarray) -> float:
    """Worst-output -3 dB frequency of a response sweep.

    Returns ``inf`` when no output falls below ``dc / sqrt(2)`` within
    the swept range.
    """
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    magnitude = np.asarray(magnitude, dtype=float)
    dc = np.asarray(dc, dtype=float)
    threshold = dc / math.sqrt(2.0)
    worst = math.inf
    for column in range(magnitude.shape[1]):
        if dc[column] == 0.0:
            continue
        below = np.flatnonzero(magnitude[:, column] <= threshold[column])
        if below.size:
            worst = min(worst, float(freqs_hz[below[0]]))
    return worst
