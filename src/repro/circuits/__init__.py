"""Linear analog circuit simulator (DC modified nodal analysis).

This package is the repo's substitute for the paper's HSPICE runs. All the
paper's accuracy results are DC equilibrium points of linear resistive
networks with (finite-gain) op-amps, which modified nodal analysis solves
exactly:

- :mod:`repro.circuits.elements` — resistors, sources, VCVS, op-amps;
- :mod:`repro.circuits.netlist` — the :class:`Circuit` container;
- :mod:`repro.circuits.columnar` — the struct-of-arrays
  :class:`ColumnarCircuit` container with bulk MNA stamping;
- :mod:`repro.circuits.mna` — assembly and the dense/sparse DC solver;
- :mod:`repro.circuits.generators` — netlist builders for the paper's MVM
  and INV crossbar topologies (Fig. 1), including wire resistance;
- :mod:`repro.circuits.dynamics` — first-order settling-time models from
  the papers the authors cite ([22], [23]).
"""

from repro.circuits.ac import (
    ACSolution,
    amc_frequency_response,
    minus_3db_frequency,
    single_pole_gain,
    solve_ac,
)
from repro.circuits.dynamics import (
    inv_settling_time,
    is_inv_stable,
    mvm_settling_time,
)
from repro.circuits.elements import (
    CurrentSource,
    IdealOpAmp,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.columnar import ColumnarCircuit
from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.mna import (
    AssembledMNA,
    DCSolution,
    assemble_mna,
    solve_dc,
    solve_dc_many,
)
from repro.circuits.netlist import Circuit
from repro.circuits.transient import (
    TransientResult,
    simulate_inv_transient,
    simulate_mvm_transient,
)

__all__ = [
    "ACSolution",
    "AssembledMNA",
    "Circuit",
    "ColumnarCircuit",
    "CurrentSource",
    "DCSolution",
    "IdealOpAmp",
    "Resistor",
    "TransientResult",
    "VCVS",
    "VoltageSource",
    "amc_frequency_response",
    "assemble_mna",
    "build_inv_circuit",
    "build_mvm_circuit",
    "inv_settling_time",
    "is_inv_stable",
    "minus_3db_frequency",
    "mvm_settling_time",
    "simulate_inv_transient",
    "simulate_mvm_transient",
    "single_pole_gain",
    "solve_ac",
    "solve_dc",
    "solve_dc_many",
]
