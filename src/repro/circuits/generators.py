"""Netlist generators for the paper's AMC crossbar topologies (Fig. 1).

These builders produce full transistor-free netlists of the MVM and INV
circuits, including the dual positive/negative arrays, optional wire
segment resistances, and either ideal or finite-gain op-amps. They are the
ground truth the fast algebraic models in :mod:`repro.amc` are validated
against (the same role HSPICE plays in the paper).

Geometry convention matches :mod:`repro.crossbar.parasitics`: BL drivers
sit at row 0 of each column, WL amplifiers at column 0 of each row.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuits.netlist import Circuit
from repro.errors import CircuitError
from repro.utils.validation import check_matrix, check_positive, check_vector


@lru_cache(maxsize=8)
def _array_strings(prefix: str, rows: int, cols: int) -> dict:
    """Structure template: every node/element name of one array's wiring.

    The names depend only on the array geometry, never on conductance
    values, so one template serves every netlist of the same shape —
    repeated builds (Monte-Carlo MNA validation, the serving hot path)
    skip ~5 f-string constructions per cell. Tuples, so a template can
    never be mutated by a caller.

    Layout: ``b_nodes``/``rb_names`` are column-major (index
    ``j * rows + i``), ``w_nodes``/``rw_names``/``g_names`` row-major
    (index ``i * cols + j``), matching the insertion order of
    :func:`_add_array_loop`.
    """
    return {
        "b_nodes": tuple(
            f"{prefix}_b_{i}_{j}" for j in range(cols) for i in range(rows)
        ),
        "rb_names": tuple(
            f"{prefix}_rb_{i}_{j}" for j in range(cols) for i in range(rows)
        ),
        "w_nodes": tuple(
            f"{prefix}_w_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
        "rw_names": tuple(
            f"{prefix}_rw_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
        "g_names": tuple(
            f"{prefix}_g_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
    }


def _add_array(
    circuit: Circuit,
    g: np.ndarray,
    prefix: str,
    bl_drive_nodes: list[str],
    wl_collect_nodes: list[str],
    r_wire: float,
) -> None:
    """Wire one conductance array between its BL drivers and WL collectors.

    With ``r_wire == 0`` cells connect driver and collector nodes
    directly; otherwise explicit ladder nodes are created per cell.
    Elements land through the bulk-append netlist API: cell positions
    come from one ``np.nonzero``, node/name strings from flat
    comprehensions, and the circuit registers each element class in a
    single pass (the cell-by-cell reference path is kept as
    :func:`_add_array_loop` and timed against this one by
    ``benchmarks/bench_perf_engine.py``).
    """
    rows, cols = g.shape
    ii, jj = np.nonzero(g > 0.0)
    # Python-native ints/floats: f-string formatting and float() on
    # NumPy scalars cost ~10x their native equivalents at this volume.
    cells = list(zip(ii.tolist(), jj.tolist()))
    values = g[ii, jj].tolist()
    names = _array_strings(prefix, rows, cols)
    g_names = names["g_names"]
    if r_wire == 0.0:
        circuit.conductors(
            [bl_drive_nodes[j] for _, j in cells],
            [wl_collect_nodes[i] for i, _ in cells],
            values,
            [g_names[i * cols + j] for i, j in cells],
        )
        return

    b_nodes, w_nodes = names["b_nodes"], names["w_nodes"]
    # Column (BL) ladder: drive node -> b_0 -> b_1 -> ... per column.
    circuit.resistors(
        [
            bl_drive_nodes[j] if i == 0 else b_nodes[j * rows + i - 1]
            for j in range(cols)
            for i in range(rows)
        ],
        b_nodes,
        [r_wire] * (rows * cols),
        names["rb_names"],
    )
    # Row (WL) ladder: collect node -> w_0 -> w_1 -> ... per row.
    circuit.resistors(
        [
            wl_collect_nodes[i] if j == 0 else w_nodes[i * cols + j - 1]
            for i in range(rows)
            for j in range(cols)
        ],
        w_nodes,
        [r_wire] * (rows * cols),
        names["rw_names"],
    )
    circuit.conductors(
        [b_nodes[j * rows + i] for i, j in cells],
        [w_nodes[i * cols + j] for i, j in cells],
        values,
        [g_names[i * cols + j] for i, j in cells],
    )


def _add_array_loop(
    circuit: Circuit,
    g: np.ndarray,
    prefix: str,
    bl_drive_nodes: list[str],
    wl_collect_nodes: list[str],
    r_wire: float,
) -> None:
    """Cell-by-cell reference implementation of :func:`_add_array`.

    Appends every element through the scalar netlist builders, exactly
    as the original generator did. Kept so the bulk path has an
    in-repo equivalence oracle and a timing baseline.
    """
    rows, cols = g.shape
    if r_wire == 0.0:
        for i in range(rows):
            for j in range(cols):
                if g[i, j] > 0.0:
                    circuit.conductor(
                        bl_drive_nodes[j], wl_collect_nodes[i], g[i, j], f"{prefix}_g_{i}_{j}"
                    )
        return

    for j in range(cols):
        previous = bl_drive_nodes[j]
        for i in range(rows):
            node = f"{prefix}_b_{i}_{j}"
            circuit.resistor(previous, node, r_wire, f"{prefix}_rb_{i}_{j}")
            previous = node
    for i in range(rows):
        previous = wl_collect_nodes[i]
        for j in range(cols):
            node = f"{prefix}_w_{i}_{j}"
            circuit.resistor(previous, node, r_wire, f"{prefix}_rw_{i}_{j}")
            previous = node
    for i in range(rows):
        for j in range(cols):
            if g[i, j] > 0.0:
                circuit.conductor(
                    f"{prefix}_b_{i}_{j}", f"{prefix}_w_{i}_{j}", g[i, j], f"{prefix}_g_{i}_{j}"
                )


def _offset_nodes(
    circuit: Circuit, offsets: np.ndarray | None, rows: int, bulk: bool = True
) -> list[str]:
    """Non-inverting input nodes: ground, or offset sources when given.

    A real op-amp's input-referred offset is modelled exactly by a small
    voltage source in series with the non-inverting input.
    """
    if offsets is None:
        return ["0"] * rows
    offsets = check_vector(offsets, "offsets", size=rows)
    nodes = [f"vos_{i}" for i in range(rows)]
    if bulk:
        circuit.vsources(nodes, ["0"] * rows, offsets, [f"Vos_{i}" for i in range(rows)])
    else:
        for i in range(rows):
            circuit.vsource(nodes[i], "0", float(offsets[i]), f"Vos_{i}")
    return nodes


def build_mvm_circuit(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_feedback: float,
    *,
    r_wire: float = 0.0,
    opamp_gain: float | None = None,
    offsets: np.ndarray | None = None,
    bulk: bool = True,
) -> tuple[Circuit, list[str]]:
    """Build the MVM circuit of Fig. 1(a) with a dual array pair.

    The positive array's BLs are driven with ``v_in`` and the negative
    array's with ``-v_in`` (ideal input inverters), both collecting into
    the same per-row TIA whose feedback conductance is ``g_feedback``.
    At the ideal operating point the outputs are
    ``v_out = -(g_pos - g_neg) @ v_in / g_feedback``.

    Parameters
    ----------
    g_pos, g_neg:
        Non-negative conductance arrays (siemens), same shape.
    v_in:
        BL drive voltages, one per column.
    g_feedback:
        TIA feedback conductance (``G0``).
    r_wire:
        Wire segment resistance (ohm); 0 disables the ladder.
    opamp_gain:
        Finite open-loop gain; ``None`` for ideal op-amps.
    bulk:
        Assemble through the bulk-append netlist API (default). The
        cell-by-cell path (``False``) produces an element-for-element
        identical netlist and exists as the equivalence/timing
        reference.

    Returns
    -------
    (circuit, output_nodes):
        The netlist and the TIA output node names, one per row.
    """
    g_pos = check_matrix(g_pos, "g_pos")
    g_neg = check_matrix(g_neg, "g_neg")
    if g_pos.shape != g_neg.shape:
        raise CircuitError(f"g_pos/g_neg shapes differ: {g_pos.shape} vs {g_neg.shape}")
    rows, cols = g_pos.shape
    v_in = check_vector(v_in, "v_in", size=cols)
    check_positive(g_feedback, "g_feedback")

    circuit = Circuit("mvm")
    pos_drivers = [f"drv_p_{j}" for j in range(cols)]
    neg_drivers = [f"drv_n_{j}" for j in range(cols)]
    if bulk:
        # Interleaved (Vp_j, Vn_j) per column, matching the loop order.
        circuit.vsources(
            [node for j in range(cols) for node in (pos_drivers[j], neg_drivers[j])],
            ["0"] * (2 * cols),
            [value for j in range(cols) for value in (v_in[j], -v_in[j])],
            [name for j in range(cols) for name in (f"Vp_{j}", f"Vn_{j}")],
        )
    else:
        for j in range(cols):
            circuit.vsource(pos_drivers[j], "0", float(v_in[j]), f"Vp_{j}")
            circuit.vsource(neg_drivers[j], "0", float(-v_in[j]), f"Vn_{j}")

    sum_nodes = [f"sum_{i}" for i in range(rows)]
    out_nodes = [f"out_{i}" for i in range(rows)]
    noninv = _offset_nodes(circuit, offsets, rows, bulk=bulk)
    for i in range(rows):
        circuit.opamp(sum_nodes[i], noninv[i], out_nodes[i], gain=opamp_gain, name=f"A_{i}")
        circuit.conductor(out_nodes[i], sum_nodes[i], g_feedback, f"Rf_{i}")

    add_array = _add_array if bulk else _add_array_loop
    add_array(circuit, g_pos, "p", pos_drivers, sum_nodes, r_wire)
    add_array(circuit, g_neg, "n", neg_drivers, sum_nodes, r_wire)
    return circuit, out_nodes


def build_inv_circuit(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_input: float,
    *,
    r_wire: float = 0.0,
    opamp_gain: float | None = None,
    offsets: np.ndarray | None = None,
    bulk: bool = True,
) -> tuple[Circuit, list[str]]:
    """Build the INV circuit of Fig. 1(b) with a dual array pair.

    Input voltages are conveyed through conductances ``g_input`` onto the
    virtual-ground WLs; op-amp outputs feed back into the BLs (directly
    for the positive array, through unity inverters for the negative
    array). At the ideal operating point
    ``v_out = -inv((g_pos - g_neg) / g_input) @ v_in``, i.e. the circuit
    solves the linear system in one step.

    Parameters and return mirror :func:`build_mvm_circuit`; arrays must be
    square.
    """
    g_pos = check_matrix(g_pos, "g_pos")
    g_neg = check_matrix(g_neg, "g_neg")
    if g_pos.shape != g_neg.shape:
        raise CircuitError(f"g_pos/g_neg shapes differ: {g_pos.shape} vs {g_neg.shape}")
    rows, cols = g_pos.shape
    if rows != cols:
        raise CircuitError(f"INV requires a square array, got {g_pos.shape}")
    v_in = check_vector(v_in, "v_in", size=rows)
    check_positive(g_input, "g_input")

    circuit = Circuit("inv")
    sum_nodes = [f"sum_{i}" for i in range(rows)]
    out_nodes = [f"out_{i}" for i in range(rows)]
    noninv = _offset_nodes(circuit, offsets, rows, bulk=bulk)

    for i in range(rows):
        circuit.vsource(f"in_{i}", "0", float(v_in[i]), f"Vin_{i}")
        circuit.conductor(f"in_{i}", sum_nodes[i], g_input, f"Rin_{i}")
        circuit.opamp(sum_nodes[i], noninv[i], out_nodes[i], gain=opamp_gain, name=f"A_{i}")

    # Negative array BLs are driven by inverted op-amp outputs.
    ninv_nodes = [f"ninv_{j}" for j in range(cols)]
    for j in range(cols):
        circuit.vcvs(ninv_nodes[j], "0", "0", out_nodes[j], 1.0, f"Einv_{j}")

    add_array = _add_array if bulk else _add_array_loop
    add_array(circuit, g_pos, "p", out_nodes, sum_nodes, r_wire)
    add_array(circuit, g_neg, "n", ninv_nodes, sum_nodes, r_wire)
    return circuit, out_nodes
