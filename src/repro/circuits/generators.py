"""Netlist generators for the paper's AMC crossbar topologies (Fig. 1).

These builders produce full transistor-free netlists of the MVM and INV
circuits, including the dual positive/negative arrays, optional wire
segment resistances, and either ideal or finite-gain op-amps. They are the
ground truth the fast algebraic models in :mod:`repro.amc` are validated
against (the same role HSPICE plays in the paper).

Geometry convention matches :mod:`repro.crossbar.parasitics`: BL drivers
sit at row 0 of each column, WL amplifiers at column 0 of each row.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuits.columnar import ColumnarCircuit
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError
from repro.utils.validation import check_matrix, check_positive, check_vector


@lru_cache(maxsize=8)
def _array_strings(prefix: str, rows: int, cols: int) -> dict:
    """Structure template: every node/element name of one array's wiring.

    The names depend only on the array geometry, never on conductance
    values, so one template serves every netlist of the same shape —
    repeated builds (Monte-Carlo MNA validation, the serving hot path)
    skip ~5 f-string constructions per cell. Tuples, so a template can
    never be mutated by a caller.

    Layout: ``b_nodes``/``rb_names`` are column-major (index
    ``j * rows + i``), ``w_nodes``/``rw_names``/``g_names`` row-major
    (index ``i * cols + j``), matching the insertion order of
    :func:`_add_array_loop`.
    """
    return {
        "b_nodes": tuple(
            f"{prefix}_b_{i}_{j}" for j in range(cols) for i in range(rows)
        ),
        "rb_names": tuple(
            f"{prefix}_rb_{i}_{j}" for j in range(cols) for i in range(rows)
        ),
        "w_nodes": tuple(
            f"{prefix}_w_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
        "rw_names": tuple(
            f"{prefix}_rw_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
        "g_names": tuple(
            f"{prefix}_g_{i}_{j}" for i in range(rows) for j in range(cols)
        ),
    }


def _add_array(
    circuit: Circuit,
    g: np.ndarray,
    prefix: str,
    bl_drive_nodes: list[str],
    wl_collect_nodes: list[str],
    r_wire: float,
) -> None:
    """Wire one conductance array between its BL drivers and WL collectors.

    With ``r_wire == 0`` cells connect driver and collector nodes
    directly; otherwise explicit ladder nodes are created per cell.
    Elements land through the bulk-append netlist API: cell positions
    come from one ``np.nonzero``, node/name strings from flat
    comprehensions, and the circuit registers each element class in a
    single pass (the cell-by-cell reference path is kept as
    :func:`_add_array_loop` and timed against this one by
    ``benchmarks/bench_perf_engine.py``).
    """
    rows, cols = g.shape
    ii, jj = np.nonzero(g > 0.0)
    # Python-native ints/floats: f-string formatting and float() on
    # NumPy scalars cost ~10x their native equivalents at this volume.
    cells = list(zip(ii.tolist(), jj.tolist()))
    values = g[ii, jj].tolist()
    names = _array_strings(prefix, rows, cols)
    g_names = names["g_names"]
    if r_wire == 0.0:
        circuit.conductors(
            [bl_drive_nodes[j] for _, j in cells],
            [wl_collect_nodes[i] for i, _ in cells],
            values,
            [g_names[i * cols + j] for i, j in cells],
        )
        return

    b_nodes, w_nodes = names["b_nodes"], names["w_nodes"]
    # Column (BL) ladder: drive node -> b_0 -> b_1 -> ... per column.
    circuit.resistors(
        [
            bl_drive_nodes[j] if i == 0 else b_nodes[j * rows + i - 1]
            for j in range(cols)
            for i in range(rows)
        ],
        b_nodes,
        [r_wire] * (rows * cols),
        names["rb_names"],
    )
    # Row (WL) ladder: collect node -> w_0 -> w_1 -> ... per row.
    circuit.resistors(
        [
            wl_collect_nodes[i] if j == 0 else w_nodes[i * cols + j - 1]
            for i in range(rows)
            for j in range(cols)
        ],
        w_nodes,
        [r_wire] * (rows * cols),
        names["rw_names"],
    )
    circuit.conductors(
        [b_nodes[j * rows + i] for i, j in cells],
        [w_nodes[i * cols + j] for i, j in cells],
        values,
        [g_names[i * cols + j] for i, j in cells],
    )


def _add_array_loop(
    circuit: Circuit,
    g: np.ndarray,
    prefix: str,
    bl_drive_nodes: list[str],
    wl_collect_nodes: list[str],
    r_wire: float,
) -> None:
    """Cell-by-cell reference implementation of :func:`_add_array`.

    Appends every element through the scalar netlist builders, exactly
    as the original generator did. Kept so the bulk path has an
    in-repo equivalence oracle and a timing baseline.
    """
    rows, cols = g.shape
    if r_wire == 0.0:
        for i in range(rows):
            for j in range(cols):
                if g[i, j] > 0.0:
                    circuit.conductor(
                        bl_drive_nodes[j], wl_collect_nodes[i], g[i, j], f"{prefix}_g_{i}_{j}"
                    )
        return

    for j in range(cols):
        previous = bl_drive_nodes[j]
        for i in range(rows):
            node = f"{prefix}_b_{i}_{j}"
            circuit.resistor(previous, node, r_wire, f"{prefix}_rb_{i}_{j}")
            previous = node
    for i in range(rows):
        previous = wl_collect_nodes[i]
        for j in range(cols):
            node = f"{prefix}_w_{i}_{j}"
            circuit.resistor(previous, node, r_wire, f"{prefix}_rw_{i}_{j}")
            previous = node
    for i in range(rows):
        for j in range(cols):
            if g[i, j] > 0.0:
                circuit.conductor(
                    f"{prefix}_b_{i}_{j}", f"{prefix}_w_{i}_{j}", g[i, j], f"{prefix}_g_{i}_{j}"
                )


def _add_array_columnar(
    circuit: ColumnarCircuit,
    g: np.ndarray,
    prefix: str,
    bl_drive_ids: np.ndarray,
    wl_collect_ids: np.ndarray,
    r_wire: float,
) -> None:
    """Columnar counterpart of :func:`_add_array`: pure index arithmetic.

    Ladder connectivity is expressed directly on interned node-id
    arrays — the drive column is prepended and the grid shifted by one —
    so no per-cell Python work happens at all. Runs land in the same
    order as the bulk object path (BL ladder, WL ladder, cells) and each
    run's internal order matches element order there, so the assembled
    matrix is bit-identical.
    """
    rows, cols = g.shape
    ii, jj = np.nonzero(g > 0.0)
    values = g[ii, jj]
    if r_wire == 0.0:
        circuit.conductors(bl_drive_ids[jj], wl_collect_ids[ii], values)
        return

    names = _array_strings(prefix, rows, cols)
    b_ids = circuit.node_ids(names["b_nodes"])  # column-major (j, i)
    w_ids = circuit.node_ids(names["w_nodes"])  # row-major (i, j)
    b_grid = b_ids.reshape(cols, rows)
    w_grid = w_ids.reshape(rows, cols)
    segments = np.full(rows * cols, r_wire)
    # Column (BL) ladder: drive node -> b_0 -> b_1 -> ... per column.
    circuit.resistors(
        np.concatenate([bl_drive_ids[:, None], b_grid[:, :-1]], axis=1).ravel(),
        b_ids,
        segments,
    )
    # Row (WL) ladder: collect node -> w_0 -> w_1 -> ... per row.
    circuit.resistors(
        np.concatenate([wl_collect_ids[:, None], w_grid[:, :-1]], axis=1).ravel(),
        w_ids,
        segments,
    )
    circuit.conductors(b_grid[jj, ii], w_grid[ii, jj], values)


def _offset_ids(
    circuit: ColumnarCircuit, offsets: np.ndarray | None, rows: int
) -> np.ndarray:
    """Columnar counterpart of :func:`_offset_nodes` (ids, ground = -1)."""
    if offsets is None:
        return np.full(rows, -1, dtype=np.intp)
    offsets = check_vector(offsets, "offsets", size=rows)
    ids = circuit.node_ids([f"vos_{i}" for i in range(rows)])
    circuit.vsources(
        ids,
        np.full(rows, -1, dtype=np.intp),
        offsets,
        [f"Vos_{i}" for i in range(rows)],
    )
    return ids


def _offset_nodes(
    circuit: Circuit, offsets: np.ndarray | None, rows: int, bulk: bool = True
) -> list[str]:
    """Non-inverting input nodes: ground, or offset sources when given.

    A real op-amp's input-referred offset is modelled exactly by a small
    voltage source in series with the non-inverting input.
    """
    if offsets is None:
        return ["0"] * rows
    offsets = check_vector(offsets, "offsets", size=rows)
    nodes = [f"vos_{i}" for i in range(rows)]
    if bulk:
        circuit.vsources(nodes, ["0"] * rows, offsets, [f"Vos_{i}" for i in range(rows)])
    else:
        for i in range(rows):
            circuit.vsource(nodes[i], "0", float(offsets[i]), f"Vos_{i}")
    return nodes


def build_mvm_circuit(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_feedback: float,
    *,
    r_wire: float = 0.0,
    opamp_gain: float | None = None,
    offsets: np.ndarray | None = None,
    bulk: bool = True,
    columnar: bool = False,
) -> tuple[Circuit | ColumnarCircuit, list[str]]:
    """Build the MVM circuit of Fig. 1(a) with a dual array pair.

    The positive array's BLs are driven with ``v_in`` and the negative
    array's with ``-v_in`` (ideal input inverters), both collecting into
    the same per-row TIA whose feedback conductance is ``g_feedback``.
    At the ideal operating point the outputs are
    ``v_out = -(g_pos - g_neg) @ v_in / g_feedback``.

    Parameters
    ----------
    g_pos, g_neg:
        Non-negative conductance arrays (siemens), same shape.
    v_in:
        BL drive voltages, one per column.
    g_feedback:
        TIA feedback conductance (``G0``).
    r_wire:
        Wire segment resistance (ohm); 0 disables the ladder.
    opamp_gain:
        Finite open-loop gain; ``None`` for ideal op-amps.
    bulk:
        Assemble through the bulk-append netlist API (default). The
        cell-by-cell path (``False``) produces an element-for-element
        identical netlist and exists as the equivalence/timing
        reference.
    columnar:
        Build a struct-of-arrays :class:`ColumnarCircuit` instead of an
        object netlist (``bulk`` is then irrelevant). The assembled MNA
        system is bit-identical to the object path's; assembly is an
        order of magnitude faster for large ladders.

    Returns
    -------
    (circuit, output_nodes):
        The netlist and the TIA output node names, one per row.
    """
    g_pos = check_matrix(g_pos, "g_pos")
    g_neg = check_matrix(g_neg, "g_neg")
    if g_pos.shape != g_neg.shape:
        raise CircuitError(f"g_pos/g_neg shapes differ: {g_pos.shape} vs {g_neg.shape}")
    rows, cols = g_pos.shape
    v_in = check_vector(v_in, "v_in", size=cols)
    check_positive(g_feedback, "g_feedback")

    if columnar:
        return _build_mvm_columnar(
            g_pos, g_neg, v_in, g_feedback, r_wire, opamp_gain, offsets
        )

    circuit = Circuit("mvm")
    pos_drivers = [f"drv_p_{j}" for j in range(cols)]
    neg_drivers = [f"drv_n_{j}" for j in range(cols)]
    if bulk:
        # Interleaved (Vp_j, Vn_j) per column, matching the loop order.
        circuit.vsources(
            [node for j in range(cols) for node in (pos_drivers[j], neg_drivers[j])],
            ["0"] * (2 * cols),
            [value for j in range(cols) for value in (v_in[j], -v_in[j])],
            [name for j in range(cols) for name in (f"Vp_{j}", f"Vn_{j}")],
        )
    else:
        for j in range(cols):
            circuit.vsource(pos_drivers[j], "0", float(v_in[j]), f"Vp_{j}")
            circuit.vsource(neg_drivers[j], "0", float(-v_in[j]), f"Vn_{j}")

    sum_nodes = [f"sum_{i}" for i in range(rows)]
    out_nodes = [f"out_{i}" for i in range(rows)]
    noninv = _offset_nodes(circuit, offsets, rows, bulk=bulk)
    for i in range(rows):
        circuit.opamp(sum_nodes[i], noninv[i], out_nodes[i], gain=opamp_gain, name=f"A_{i}")
        circuit.conductor(out_nodes[i], sum_nodes[i], g_feedback, f"Rf_{i}")

    add_array = _add_array if bulk else _add_array_loop
    add_array(circuit, g_pos, "p", pos_drivers, sum_nodes, r_wire)
    add_array(circuit, g_neg, "n", neg_drivers, sum_nodes, r_wire)
    return circuit, out_nodes


def _build_mvm_columnar(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_feedback: float,
    r_wire: float,
    opamp_gain: float | None,
    offsets: np.ndarray | None,
) -> tuple[ColumnarCircuit, list[str]]:
    """Columnar MVM build (validated arguments; see :func:`build_mvm_circuit`).

    Homogeneous element groups land as single bulk runs (all drivers,
    all amplifiers, all feedback conductors, then each array). Grouping
    the per-row amplifier/feedback pair — interleaved in the object
    path — is safe for bit-identity because the two kinds stamp disjoint
    matrix cells and the branch/source orderings are unchanged.
    """
    rows, cols = g_pos.shape
    circuit = ColumnarCircuit("mvm")
    ground = np.full(2 * cols, -1, dtype=np.intp)
    pos_ids = circuit.node_ids([f"drv_p_{j}" for j in range(cols)])
    neg_ids = circuit.node_ids([f"drv_n_{j}" for j in range(cols)])
    # Interleaved (Vp_j, Vn_j) per column, matching the object path.
    circuit.vsources(
        np.stack([pos_ids, neg_ids], axis=1).ravel(),
        ground,
        np.stack([v_in, -v_in], axis=1).ravel(),
        [name for j in range(cols) for name in (f"Vp_{j}", f"Vn_{j}")],
    )

    sum_ids = circuit.node_ids([f"sum_{i}" for i in range(rows)])
    out_nodes = [f"out_{i}" for i in range(rows)]
    out_ids = circuit.node_ids(out_nodes)
    noninv_ids = _offset_ids(circuit, offsets, rows)
    amp_names = [f"A_{i}" for i in range(rows)]
    if opamp_gain is None:
        circuit.opamps(sum_ids, noninv_ids, out_ids, amp_names)
    else:
        circuit.vcvs(
            out_ids,
            np.full(rows, -1, dtype=np.intp),
            noninv_ids,
            sum_ids,
            np.full(rows, float(opamp_gain)),
            amp_names,
        )
    circuit.conductors(out_ids, sum_ids, np.full(rows, float(g_feedback)))

    _add_array_columnar(circuit, g_pos, "p", pos_ids, sum_ids, r_wire)
    _add_array_columnar(circuit, g_neg, "n", neg_ids, sum_ids, r_wire)
    return circuit, out_nodes


def build_inv_circuit(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_input: float,
    *,
    r_wire: float = 0.0,
    opamp_gain: float | None = None,
    offsets: np.ndarray | None = None,
    bulk: bool = True,
    columnar: bool = False,
) -> tuple[Circuit | ColumnarCircuit, list[str]]:
    """Build the INV circuit of Fig. 1(b) with a dual array pair.

    Input voltages are conveyed through conductances ``g_input`` onto the
    virtual-ground WLs; op-amp outputs feed back into the BLs (directly
    for the positive array, through unity inverters for the negative
    array). At the ideal operating point
    ``v_out = -inv((g_pos - g_neg) / g_input) @ v_in``, i.e. the circuit
    solves the linear system in one step.

    Parameters and return mirror :func:`build_mvm_circuit`; arrays must be
    square.
    """
    g_pos = check_matrix(g_pos, "g_pos")
    g_neg = check_matrix(g_neg, "g_neg")
    if g_pos.shape != g_neg.shape:
        raise CircuitError(f"g_pos/g_neg shapes differ: {g_pos.shape} vs {g_neg.shape}")
    rows, cols = g_pos.shape
    if rows != cols:
        raise CircuitError(f"INV requires a square array, got {g_pos.shape}")
    v_in = check_vector(v_in, "v_in", size=rows)
    check_positive(g_input, "g_input")

    if columnar:
        return _build_inv_columnar(
            g_pos, g_neg, v_in, g_input, r_wire, opamp_gain, offsets
        )

    circuit = Circuit("inv")
    sum_nodes = [f"sum_{i}" for i in range(rows)]
    out_nodes = [f"out_{i}" for i in range(rows)]
    noninv = _offset_nodes(circuit, offsets, rows, bulk=bulk)

    for i in range(rows):
        circuit.vsource(f"in_{i}", "0", float(v_in[i]), f"Vin_{i}")
        circuit.conductor(f"in_{i}", sum_nodes[i], g_input, f"Rin_{i}")
        circuit.opamp(sum_nodes[i], noninv[i], out_nodes[i], gain=opamp_gain, name=f"A_{i}")

    # Negative array BLs are driven by inverted op-amp outputs.
    ninv_nodes = [f"ninv_{j}" for j in range(cols)]
    for j in range(cols):
        circuit.vcvs(ninv_nodes[j], "0", "0", out_nodes[j], 1.0, f"Einv_{j}")

    add_array = _add_array if bulk else _add_array_loop
    add_array(circuit, g_pos, "p", out_nodes, sum_nodes, r_wire)
    add_array(circuit, g_neg, "n", ninv_nodes, sum_nodes, r_wire)
    return circuit, out_nodes


def _build_inv_columnar(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    v_in: np.ndarray,
    g_input: float,
    r_wire: float,
    opamp_gain: float | None,
    offsets: np.ndarray | None,
) -> tuple[ColumnarCircuit, list[str]]:
    """Columnar INV build (validated arguments; see :func:`build_inv_circuit`).

    The per-row input source / input conductor / amplifier triple
    *interleaves* two branch kinds (V and U), so — unlike the MVM build —
    the rows append as per-row runs to keep the branch ordering (and with
    it the assembled system) bit-identical to the object path. The row
    count is small next to the arrays, which still land as bulk runs.
    """
    rows, cols = g_pos.shape
    circuit = ColumnarCircuit("inv")
    ground1 = np.full(1, -1, dtype=np.intp)
    sum_ids = circuit.node_ids([f"sum_{i}" for i in range(rows)])
    out_nodes = [f"out_{i}" for i in range(rows)]
    out_ids = circuit.node_ids(out_nodes)
    noninv_ids = _offset_ids(circuit, offsets, rows)
    in_ids = circuit.node_ids([f"in_{i}" for i in range(rows)])
    g_in = np.full(1, float(g_input))
    gain1 = None if opamp_gain is None else np.full(1, float(opamp_gain))
    for i in range(rows):
        circuit.vsources(in_ids[i : i + 1], ground1, v_in[i : i + 1], [f"Vin_{i}"])
        circuit.conductors(in_ids[i : i + 1], sum_ids[i : i + 1], g_in)
        if gain1 is None:
            circuit.opamps(
                sum_ids[i : i + 1],
                noninv_ids[i : i + 1],
                out_ids[i : i + 1],
                [f"A_{i}"],
            )
        else:
            circuit.vcvs(
                out_ids[i : i + 1],
                ground1,
                noninv_ids[i : i + 1],
                sum_ids[i : i + 1],
                gain1,
                [f"A_{i}"],
            )

    # Negative array BLs are driven by inverted op-amp outputs.
    ninv_ids = circuit.node_ids([f"ninv_{j}" for j in range(cols)])
    circuit.vcvs(
        ninv_ids,
        np.full(cols, -1, dtype=np.intp),
        np.full(cols, -1, dtype=np.intp),
        out_ids,
        np.ones(cols),
        [f"Einv_{j}" for j in range(cols)],
    )

    _add_array_columnar(circuit, g_pos, "p", out_ids, sum_ids, r_wire)
    _add_array_columnar(circuit, g_neg, "n", ninv_ids, sum_ids, r_wire)
    return circuit, out_nodes
