"""Modified nodal analysis (MNA) DC solver.

Assembles the standard MNA system

    [ G  B ] [ v ]   [ i_src ]
    [ C  D ] [ i ] = [ e_src ]

where ``v`` are node voltages and ``i`` the branch currents of voltage
sources, VCVS, and ideal op-amps. Dense LU is used for small systems and
SuperLU for large sparse ones. This is exactly the equation system a SPICE
engine solves for the DC operating point of a linear circuit, which is all
the paper's HSPICE experiments require.

Assembly and solve are split: :func:`assemble_mna` stamps a circuit once
into an :class:`AssembledMNA` that caches its LU factorization, and
independent-source values live purely in the right-hand side, so the same
assembled system solves arbitrarily many source configurations
(:meth:`AssembledMNA.solve`, :func:`solve_dc_many`) at triangular-solve
cost. :func:`solve_dc` remains the one-shot convenience wrapper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.linalg
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.netlist import GROUND_NAMES, Circuit
from repro.errors import CircuitError, SingularCircuitError

#: Systems at or below this many unknowns are solved densely.
DENSE_THRESHOLD = 600


@dataclass(frozen=True)
class DCSolution:
    """DC operating point of a circuit.

    Query node voltages with :meth:`voltage` and branch currents of
    named voltage-defined elements with :meth:`current`.
    """

    circuit: Circuit
    node_index: dict[str, int]
    branch_index: dict[str, int]
    values: np.ndarray

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` relative to ground."""
        if node in GROUND_NAMES:
            return 0.0
        try:
            return float(self.values[self.node_index[node]])
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def node_indices(self, nodes) -> np.ndarray:
        """Index array for an iterable of node names (ground maps to -1)."""
        n_nodes = len(self.node_index)
        out = np.empty(len(nodes), dtype=np.intp)
        for k, node in enumerate(nodes):
            if node in GROUND_NAMES:
                out[k] = -1
                continue
            try:
                out[k] = self.node_index[node]
            except KeyError:
                raise CircuitError(f"unknown node {node!r}") from None
        if np.any(out >= n_nodes):  # pragma: no cover - index map is consistent
            raise CircuitError("node index out of range")
        return out

    @cached_property
    def _node_voltages_ext(self) -> np.ndarray:
        """Node voltages with a trailing 0.0 slot so index -1 is ground."""
        n_nodes = len(self.node_index)
        return np.append(self.values[:n_nodes], 0.0)

    def voltages(self, nodes) -> np.ndarray:
        """Vector of voltages for an iterable of node names.

        One fancy-indexed gather against a precomputed node-index array
        (the per-node Python loop only resolves names to indices).
        """
        nodes = list(nodes)
        return self._node_voltages_ext[self.node_indices(nodes)].copy()

    def current(self, element_name: str) -> float:
        """Branch current of a voltage source, VCVS, or ideal op-amp.

        Sign convention: positive current flows from the element's positive
        (or output) terminal through the element.
        """
        n_nodes = len(self.node_index)
        try:
            return float(self.values[n_nodes + self.branch_index[element_name]])
        except KeyError:
            raise CircuitError(
                f"{element_name!r} is not a voltage-defined element of this circuit"
            ) from None

    @cached_property
    def _resistor_stamp(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed ``(idx_a, idx_b, conductance)`` arrays over resistors."""
        stamp = getattr(self.circuit, "resistor_stamp", None)
        if stamp is not None:  # columnar circuits hand these arrays over directly
            return stamp(self.node_index)
        resistors = [e for e in self.circuit.elements if isinstance(e, Resistor)]
        idx_a = self.node_indices([e.a for e in resistors])
        idx_b = self.node_indices([e.b for e in resistors])
        g = np.array([e.conductance for e in resistors])
        return idx_a, idx_b, g

    def resistor_power(self) -> float:
        """Total power dissipated in all resistors (watts).

        Vectorized over a precomputed node-index array; the per-element
        dict lookups happen once per solution, not once per call.
        """
        idx_a, idx_b, g = self._resistor_stamp
        if g.size == 0:
            return 0.0
        v = self._node_voltages_ext
        dv = v[idx_a] - v[idx_b]
        return float(np.sum(dv * dv * g))


def _index_nodes(circuit: Circuit) -> dict[str, int]:
    return {node: k for k, node in enumerate(circuit.nodes())}


def _build_matrix(rows, cols, data, size: int):
    """Accumulate COO entries into the MNA matrix.

    Returns ``(matrix, dense)``: a dense ndarray below
    :data:`DENSE_THRESHOLD` (``np.add.at`` sums duplicates in entry
    order), else a ``csc_matrix``. Shared by the per-element assembler
    and the columnar bulk assembler so both produce byte-identical
    matrices for identical entry sequences.
    """
    if size <= DENSE_THRESHOLD:
        matrix = np.zeros((size, size))
        np.add.at(
            matrix,
            (np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)),
            np.asarray(data),
        )
        return matrix, True
    return csc_matrix((data, (rows, cols)), shape=(size, size)), False


class AssembledMNA:
    """A stamped MNA system with a cached LU factorization.

    Assembly (topology + element values -> matrix) happens once, in
    :func:`assemble_mna`; the factorization happens lazily on the first
    solve and is reused for every subsequent one. Independent-source
    values appear only in the right-hand side, so :meth:`solve` accepts a
    ``source_values`` override mapping and re-solves the *same*
    factorized system for any drive configuration — the cached hot path
    behind the five-step AMC schedule and :func:`solve_dc_many`.
    """

    def __init__(
        self,
        circuit: Circuit,
        node_index: dict[str, int],
        branch_index: dict[str, int],
        matrix,
        dense: bool,
        source_rows: dict[str, list[tuple[int, float]]],
        base_values: dict[str, float],
    ):
        self.circuit = circuit
        self.node_index = node_index
        self.branch_index = branch_index
        self.matrix = matrix
        self.dense = dense
        self.size = matrix.shape[0]
        self._source_rows = source_rows
        self._base_values = base_values
        self._factor = None

    # ------------------------------------------------------------------
    # right-hand side construction
    # ------------------------------------------------------------------
    def rhs(self, source_values: dict[str, float] | None = None) -> np.ndarray:
        """Assemble the RHS for the circuit's (optionally overridden) sources.

        Parameters
        ----------
        source_values:
            ``{element_name: value}`` overrides for independent voltage or
            current sources. Unnamed sources keep their netlist values.
        """
        values = self._base_values
        if source_values:
            for name in source_values:
                if name not in self._source_rows:
                    raise CircuitError(
                        f"{name!r} is not an independent source of this circuit"
                    )
            values = {**values, **source_values}
        rhs = np.zeros(self.size)
        for name, entries in self._source_rows.items():
            value = values[name]
            if value != 0.0:
                for row, coef in entries:
                    rhs[row] += coef * value
        return rhs

    # ------------------------------------------------------------------
    # factorization and solves
    # ------------------------------------------------------------------
    def _factorize(self):
        if self._factor is not None:
            return self._factor
        if self.dense:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                lu, piv = scipy.linalg.lu_factor(self.matrix, check_finite=False)
            if np.any(np.diag(lu) == 0.0) or not np.all(np.isfinite(lu)):
                raise SingularCircuitError("MNA system is singular")
            self._factor = (lu, piv)
        else:
            try:
                self._factor = splu(self.matrix)
            except RuntimeError as exc:
                raise SingularCircuitError(f"MNA system is singular: {exc}") from exc
        return self._factor

    def solve_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the assembled system for raw RHS vector(s).

        ``rhs`` may be 1-D (one system) or 2-D of shape ``(size, k)``
        (``k`` right-hand sides against one factorization).
        """
        rhs = np.asarray(rhs, dtype=float)
        factor = self._factorize()
        if self.dense:
            values = scipy.linalg.lu_solve(factor, rhs, check_finite=False)
        else:
            values = factor.solve(rhs)
        if not np.all(np.isfinite(values)):
            raise SingularCircuitError("MNA solution contains non-finite values")
        return values

    def _solution(self, values: np.ndarray) -> DCSolution:
        return DCSolution(
            circuit=self.circuit,
            node_index=self.node_index,
            branch_index=self.branch_index,
            values=values,
        )

    def solve(self, source_values: dict[str, float] | None = None) -> DCSolution:
        """Solve the DC operating point, optionally overriding source values."""
        return self._solution(self.solve_rhs(self.rhs(source_values)))

    def solve_many(self, source_batches) -> list[DCSolution]:
        """Solve one factorized system for many source configurations.

        Parameters
        ----------
        source_batches:
            Iterable of ``{element_name: value}`` override mappings (one
            per requested solve; empty dict = netlist values).
        """
        batches = list(source_batches)
        if not batches:
            return []
        rhs = np.column_stack([self.rhs(overrides) for overrides in batches])
        values = self.solve_rhs(rhs)
        return [self._solution(values[:, k].copy()) for k in range(len(batches))]


def assemble_mna(circuit) -> AssembledMNA:
    """Stamp ``circuit`` into an :class:`AssembledMNA` (no solve yet).

    Accepts an object netlist (:class:`~repro.circuits.netlist.Circuit`,
    stamped element by element below) or a columnar one
    (:class:`~repro.circuits.columnar.ColumnarCircuit`, which assembles
    itself with bulk array stamping).

    Raises
    ------
    CircuitError
        If the circuit is empty or has no unknowns.
    """
    assemble = getattr(circuit, "assemble", None)
    if assemble is not None:
        return assemble()
    if len(circuit) == 0:
        raise CircuitError("cannot solve an empty circuit")

    node_index = _index_nodes(circuit)
    n_nodes = len(node_index)

    branch_elements = [
        e
        for e in circuit.elements
        if isinstance(e, (VoltageSource, VCVS, IdealOpAmp, Inductor))
    ]
    branch_index = {e.name: k for k, e in enumerate(branch_elements)}
    n_branches = len(branch_elements)
    size = n_nodes + n_branches
    if size == 0:
        raise CircuitError("circuit has no unknowns (everything grounded?)")

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    source_rows: dict[str, list[tuple[int, float]]] = {}
    base_values: dict[str, float] = {}

    def node(n: str) -> int | None:
        return None if n == "0" else node_index[n]

    def stamp(r: int | None, c: int | None, value: float) -> None:
        if r is None or c is None:
            return
        rows.append(r)
        cols.append(c)
        data.append(value)

    for element in circuit.elements:
        if isinstance(element, Resistor):
            g = element.conductance
            a, b = node(element.a), node(element.b)
            stamp(a, a, g)
            stamp(b, b, g)
            stamp(a, b, -g)
            stamp(b, a, -g)
        elif isinstance(element, Capacitor):
            continue  # open circuit at DC
        elif isinstance(element, Inductor):
            # Short at DC: a 0 V branch carrying an unknown current.
            k = n_nodes + branch_index[element.name]
            a, b = node(element.a), node(element.b)
            stamp(a, k, 1.0)
            stamp(b, k, -1.0)
            stamp(k, a, 1.0)
            stamp(k, b, -1.0)
        elif isinstance(element, CurrentSource):
            plus, minus = node(element.plus), node(element.minus)
            entries = []
            if plus is not None:
                entries.append((plus, 1.0))
            if minus is not None:
                entries.append((minus, -1.0))
            source_rows[element.name] = entries
            base_values[element.name] = element.value
        elif isinstance(element, VoltageSource):
            k = n_nodes + branch_index[element.name]
            plus, minus = node(element.plus), node(element.minus)
            stamp(plus, k, 1.0)
            stamp(minus, k, -1.0)
            stamp(k, plus, 1.0)
            stamp(k, minus, -1.0)
            source_rows[element.name] = [(k, 1.0)]
            base_values[element.name] = element.value
        elif isinstance(element, VCVS):
            if isinstance(element.gain, complex):
                raise CircuitError(
                    f"VCVS {element.name} has a complex gain; use solve_ac for AC analysis"
                )
            k = n_nodes + branch_index[element.name]
            op, om = node(element.out_plus), node(element.out_minus)
            cp, cn = node(element.ctrl_plus), node(element.ctrl_minus)
            stamp(op, k, 1.0)
            stamp(om, k, -1.0)
            stamp(k, op, 1.0)
            stamp(k, om, -1.0)
            stamp(k, cp, -element.gain)
            stamp(k, cn, element.gain)
        elif isinstance(element, IdealOpAmp):
            k = n_nodes + branch_index[element.name]
            out = node(element.output)
            inv, noninv = node(element.inverting), node(element.noninverting)
            # Output current is an unknown injected at the output node; the
            # constraint row enforces the virtual short.
            stamp(out, k, 1.0)
            stamp(k, noninv, 1.0)
            stamp(k, inv, -1.0)
        else:  # pragma: no cover - union is closed
            raise CircuitError(f"unknown element type {type(element).__name__}")

    matrix, dense = _build_matrix(rows, cols, data, size)

    return AssembledMNA(
        circuit=circuit,
        node_index=node_index,
        branch_index=branch_index,
        matrix=matrix,
        dense=dense,
        source_rows=source_rows,
        base_values=base_values,
    )


def solve_dc(circuit: Circuit) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    One-shot convenience wrapper over :func:`assemble_mna`; workloads
    re-solving one topology for many source values should hold on to the
    :class:`AssembledMNA` (or use :func:`solve_dc_many`) so the
    factorization is reused.

    Raises
    ------
    SingularCircuitError
        If the MNA matrix is singular (floating nodes, unconstrained
        op-amp, loop of ideal sources, ...).
    CircuitError
        If the circuit is empty.
    """
    return assemble_mna(circuit).solve()


def solve_dc_many(circuit: Circuit, rhs_batch) -> list[DCSolution]:
    """Solve ``circuit`` for a batch of independent-source configurations.

    Assembles and factors the MNA system once, then solves every
    right-hand side in a single multi-RHS triangular solve.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    rhs_batch:
        Iterable of ``{source_name: value}`` mappings, one per solve;
        each overrides the named independent voltage/current sources
        (empty dict = the netlist's own values).

    Returns
    -------
    list[DCSolution]
        One solution per entry of ``rhs_batch``, in order.
    """
    return assemble_mna(circuit).solve_many(rhs_batch)
