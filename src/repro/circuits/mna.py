"""Modified nodal analysis (MNA) DC solver.

Assembles the standard MNA system

    [ G  B ] [ v ]   [ i_src ]
    [ C  D ] [ i ] = [ e_src ]

where ``v`` are node voltages and ``i`` the branch currents of voltage
sources, VCVS, and ideal op-amps. Dense LU is used for small systems and
SuperLU for large sparse ones. This is exactly the equation system a SPICE
engine solves for the DC operating point of a linear circuit, which is all
the paper's HSPICE experiments require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError, SingularCircuitError

#: Systems at or below this many unknowns are solved densely.
DENSE_THRESHOLD = 600


@dataclass(frozen=True)
class DCSolution:
    """DC operating point of a circuit.

    Query node voltages with :meth:`voltage` and branch currents of
    named voltage-defined elements with :meth:`current`.
    """

    circuit: Circuit
    node_index: dict[str, int]
    branch_index: dict[str, int]
    values: np.ndarray

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` relative to ground."""
        if node in ("0", "gnd", "GND"):
            return 0.0
        try:
            return float(self.values[self.node_index[node]])
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def voltages(self, nodes) -> np.ndarray:
        """Vector of voltages for an iterable of node names."""
        return np.array([self.voltage(node) for node in nodes])

    def current(self, element_name: str) -> float:
        """Branch current of a voltage source, VCVS, or ideal op-amp.

        Sign convention: positive current flows from the element's positive
        (or output) terminal through the element.
        """
        n_nodes = len(self.node_index)
        try:
            return float(self.values[n_nodes + self.branch_index[element_name]])
        except KeyError:
            raise CircuitError(
                f"{element_name!r} is not a voltage-defined element of this circuit"
            ) from None

    def resistor_power(self) -> float:
        """Total power dissipated in all resistors (watts)."""
        total = 0.0
        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                dv = self.voltage(element.a) - self.voltage(element.b)
                total += dv * dv * element.conductance
        return total


def _index_nodes(circuit: Circuit) -> dict[str, int]:
    return {node: k for k, node in enumerate(circuit.nodes())}


def solve_dc(circuit: Circuit) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    Raises
    ------
    SingularCircuitError
        If the MNA matrix is singular (floating nodes, unconstrained
        op-amp, loop of ideal sources, ...).
    CircuitError
        If the circuit is empty.
    """
    if len(circuit) == 0:
        raise CircuitError("cannot solve an empty circuit")

    node_index = _index_nodes(circuit)
    n_nodes = len(node_index)

    branch_elements = [
        e
        for e in circuit.elements
        if isinstance(e, (VoltageSource, VCVS, IdealOpAmp, Inductor))
    ]
    branch_index = {e.name: k for k, e in enumerate(branch_elements)}
    n_branches = len(branch_elements)
    size = n_nodes + n_branches
    if size == 0:
        raise CircuitError("circuit has no unknowns (everything grounded?)")

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    rhs = np.zeros(size)

    def node(n: str) -> int | None:
        return None if n == "0" else node_index[n]

    def stamp(r: int | None, c: int | None, value: float) -> None:
        if r is None or c is None:
            return
        rows.append(r)
        cols.append(c)
        data.append(value)

    for element in circuit.elements:
        if isinstance(element, Resistor):
            g = element.conductance
            a, b = node(element.a), node(element.b)
            stamp(a, a, g)
            stamp(b, b, g)
            stamp(a, b, -g)
            stamp(b, a, -g)
        elif isinstance(element, Capacitor):
            continue  # open circuit at DC
        elif isinstance(element, Inductor):
            # Short at DC: a 0 V branch carrying an unknown current.
            k = n_nodes + branch_index[element.name]
            a, b = node(element.a), node(element.b)
            stamp(a, k, 1.0)
            stamp(b, k, -1.0)
            stamp(k, a, 1.0)
            stamp(k, b, -1.0)
        elif isinstance(element, CurrentSource):
            plus, minus = node(element.plus), node(element.minus)
            if plus is not None:
                rhs[plus] += element.value
            if minus is not None:
                rhs[minus] -= element.value
        elif isinstance(element, VoltageSource):
            k = n_nodes + branch_index[element.name]
            plus, minus = node(element.plus), node(element.minus)
            stamp(plus, k, 1.0)
            stamp(minus, k, -1.0)
            stamp(k, plus, 1.0)
            stamp(k, minus, -1.0)
            rhs[k] = element.value
        elif isinstance(element, VCVS):
            if isinstance(element.gain, complex):
                raise CircuitError(
                    f"VCVS {element.name} has a complex gain; use solve_ac for AC analysis"
                )
            k = n_nodes + branch_index[element.name]
            op, om = node(element.out_plus), node(element.out_minus)
            cp, cn = node(element.ctrl_plus), node(element.ctrl_minus)
            stamp(op, k, 1.0)
            stamp(om, k, -1.0)
            stamp(k, op, 1.0)
            stamp(k, om, -1.0)
            stamp(k, cp, -element.gain)
            stamp(k, cn, element.gain)
        elif isinstance(element, IdealOpAmp):
            k = n_nodes + branch_index[element.name]
            out = node(element.output)
            inv, noninv = node(element.inverting), node(element.noninverting)
            # Output current is an unknown injected at the output node; the
            # constraint row enforces the virtual short.
            stamp(out, k, 1.0)
            stamp(k, noninv, 1.0)
            stamp(k, inv, -1.0)
        else:  # pragma: no cover - union is closed
            raise CircuitError(f"unknown element type {type(element).__name__}")

    if size <= DENSE_THRESHOLD:
        matrix = np.zeros((size, size))
        for r, c, v in zip(rows, cols, data):
            matrix[r, c] += v
        try:
            values = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(f"MNA system is singular: {exc}") from exc
    else:
        matrix = csc_matrix((data, (rows, cols)), shape=(size, size))
        try:
            values = splu(matrix).solve(rhs)
        except RuntimeError as exc:
            raise SingularCircuitError(f"MNA system is singular: {exc}") from exc

    if not np.all(np.isfinite(values)):
        raise SingularCircuitError("MNA solution contains non-finite values")

    return DCSolution(
        circuit=circuit,
        node_index=node_index,
        branch_index=branch_index,
        values=values,
    )
