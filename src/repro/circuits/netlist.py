"""Netlist container.

:class:`Circuit` accumulates elements with unique names and exposes
convenience builders (``resistor``, ``vsource``, ...). Node names are
arbitrary strings; ``"0"`` (also accepted: ``"gnd"``) is ground.
"""

from __future__ import annotations

from dataclasses import replace

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Element,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.errors import CircuitError

GROUND_NAMES = ("0", "gnd", "GND")

_GROUND_SET = frozenset(GROUND_NAMES)


def canonical_node(node: str) -> str:
    """Map all accepted ground spellings to ``"0"``."""
    return "0" if node in GROUND_NAMES else node


#: Terminal-node field names per element type, used to canonicalize
#: pre-built elements passed to :meth:`Circuit.add`.
_NODE_FIELDS: dict[type, tuple[str, ...]] = {
    Resistor: ("a", "b"),
    Capacitor: ("a", "b"),
    Inductor: ("a", "b"),
    VoltageSource: ("plus", "minus"),
    CurrentSource: ("plus", "minus"),
    VCVS: ("out_plus", "out_minus", "ctrl_plus", "ctrl_minus"),
    IdealOpAmp: ("inverting", "noninverting", "output"),
}


def _canonicalize_element(element: Element) -> Element:
    """Return ``element`` with every ground-alias terminal mapped to ``"0"``.

    Elements whose terminals are already canonical are returned as-is
    (no copy); only an element naming ``"gnd"``/``"GND"`` is rebuilt.
    """
    fields = _NODE_FIELDS.get(type(element))
    if fields is None:  # pragma: no cover - union is closed
        raise CircuitError(f"unknown element type {type(element).__name__}")
    changes = {
        field: "0"
        for field in fields
        if getattr(element, field) in _GROUND_SET and getattr(element, field) != "0"
    }
    return replace(element, **changes) if changes else element


class Circuit:
    """A mutable collection of circuit elements with unique names."""

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: list[Element] = []
        self._names: set[str] = set()
        self._counter = 0

    # ------------------------------------------------------------------
    # element accessors
    # ------------------------------------------------------------------
    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements added so far, in insertion order."""
        return tuple(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def nodes(self) -> list[str]:
        """Sorted list of all node names (excluding ground)."""
        found: set[str] = set()
        for element in self._elements:
            if isinstance(element, (Resistor, Capacitor, Inductor)):
                found.update((element.a, element.b))
            elif isinstance(element, (VoltageSource, CurrentSource)):
                found.update((element.plus, element.minus))
            elif isinstance(element, VCVS):
                found.update(
                    (element.out_plus, element.out_minus, element.ctrl_plus, element.ctrl_minus)
                )
            elif isinstance(element, IdealOpAmp):
                found.update((element.inverting, element.noninverting, element.output))
        found.discard("0")
        return sorted(found)

    # ------------------------------------------------------------------
    # element builders
    # ------------------------------------------------------------------
    def _reserve(self, name: str | None, prefix: str) -> tuple[str, bool]:
        """Pick (but do not register) the name a new element will get.

        Registration is two-phase — reserve, construct, :meth:`_commit` —
        so a builder whose element fails validation leaves the circuit
        untouched: the name stays available for a retry and the auto-name
        counter does not advance.
        """
        if name is None:
            candidate = f"{prefix}{self._counter + 1}"
            if candidate in self._names:
                raise CircuitError(f"duplicate element name {candidate!r}")
            return candidate, True
        if name in self._names:
            raise CircuitError(f"duplicate element name {name!r}")
        return name, False

    def _commit(self, element: Element, auto: bool) -> Element:
        """Register a successfully constructed element."""
        self._names.add(element.name)
        if auto:
            self._counter += 1
        self._elements.append(element)
        return element

    def add(self, element: Element) -> Element:
        """Add a pre-built element (its name must be unique).

        Terminal nodes are canonicalized (``"gnd"``/``"GND"`` map to
        ``"0"``) exactly as the builders do, so a pre-built element can
        never smuggle an un-mapped ground spelling past MNA assembly —
        which would silently treat ground as a floating node. Returns the
        (possibly rebuilt) canonical element.
        """
        element = _canonicalize_element(element)
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    def resistor(self, a: str, b: str, resistance: float, name: str | None = None) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b``."""
        name, auto = self._reserve(name, "R")
        return self._commit(
            Resistor(name, canonical_node(a), canonical_node(b), resistance), auto
        )

    # ------------------------------------------------------------------
    # bulk builders
    # ------------------------------------------------------------------
    def _bulk_add(self, elements: list) -> list:
        """Register many pre-built elements in one name-set pass.

        The per-element builders pay a set lookup, a method call, and a
        name registration each; netlist generators appending tens of
        thousands of elements (a 256x256 MVM ladder is ~130k) go through
        here instead: one duplicate check over the new names, one set
        union, one list extend.
        """
        new_names = [element.name for element in elements]
        name_set = set(new_names)
        if len(name_set) != len(new_names):
            seen: set[str] = set()
            for name in new_names:
                if name in seen:
                    raise CircuitError(f"duplicate element name {name!r}")
                seen.add(name)
        clash = name_set & self._names
        if clash:
            raise CircuitError(f"duplicate element name {sorted(clash)[0]!r}")
        self._names |= name_set
        self._elements.extend(elements)
        return elements

    @staticmethod
    def _check_bulk_nodes(nodes) -> list[str]:
        canonical = []
        append = canonical.append
        for node in nodes:
            if not isinstance(node, str) or not node:
                raise CircuitError(f"node names must be non-empty strings, got {node!r}")
            append("0" if node in _GROUND_SET else node)
        return canonical

    @staticmethod
    def _make_two_terminal(cls, fields: tuple[str, str, str], names, a_nodes, b_nodes, values) -> list:
        # Elements are plain (frozen, non-slots) dataclasses, so building
        # them via object.__new__ + direct __dict__ stores skips the
        # per-element __init__/__post_init__ machinery; the bulk callers
        # re-impose the same invariants in one vectorized pass first.
        # ``fields`` names the (first node, second node, value) fields.
        node_a, node_b, value_field = fields
        elements = []
        append = elements.append
        new = object.__new__
        for name, a, b, value in zip(names, a_nodes, b_nodes, values):
            element = new(cls)
            d = element.__dict__
            d["name"] = name
            d[node_a] = a
            d[node_b] = b
            d[value_field] = value
            append(element)
        return elements

    def resistors(self, a_nodes, b_nodes, resistances, names) -> list[Resistor]:
        """Bulk-append resistors (parallel sequences, equal length)."""
        resistances = [float(r) for r in resistances]
        names = list(names)
        a_nodes = self._check_bulk_nodes(a_nodes)
        b_nodes = self._check_bulk_nodes(b_nodes)
        if not len(names) == len(a_nodes) == len(b_nodes) == len(resistances):
            raise CircuitError("bulk resistor argument lengths differ")
        for name, r in zip(names, resistances):
            if not r > 0.0:
                raise CircuitError(
                    f"resistor {name}: resistance must be > 0, got {r}"
                )
        return self._bulk_add(
            self._make_two_terminal(
                Resistor, ("a", "b", "resistance"), names, a_nodes, b_nodes, resistances
            )
        )

    def conductors(self, a_nodes, b_nodes, conductances, names) -> list[Resistor]:
        """Bulk-append resistors specified by conductance (siemens)."""
        resistances = []
        for g in conductances:
            g = float(g)
            if not g > 0.0:
                raise CircuitError(f"conductance must be > 0, got {g}")
            resistances.append(1.0 / g)
        names = list(names)
        a_nodes = self._check_bulk_nodes(a_nodes)
        b_nodes = self._check_bulk_nodes(b_nodes)
        if not len(names) == len(a_nodes) == len(b_nodes) == len(resistances):
            raise CircuitError("bulk conductor argument lengths differ")
        return self._bulk_add(
            self._make_two_terminal(
                Resistor, ("a", "b", "resistance"), names, a_nodes, b_nodes, resistances
            )
        )

    def vsources(self, plus_nodes, minus_nodes, values, names) -> list[VoltageSource]:
        """Bulk-append independent voltage sources."""
        values = [float(v) for v in values]
        names = list(names)
        plus_nodes = self._check_bulk_nodes(plus_nodes)
        minus_nodes = self._check_bulk_nodes(minus_nodes)
        if not len(names) == len(plus_nodes) == len(minus_nodes) == len(values):
            raise CircuitError("bulk vsource argument lengths differ")
        return self._bulk_add(
            self._make_two_terminal(
                VoltageSource, ("plus", "minus", "value"), names, plus_nodes, minus_nodes, values
            )
        )

    def capacitor(self, a: str, b: str, capacitance: float, name: str | None = None) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b``."""
        name, auto = self._reserve(name, "C")
        return self._commit(
            Capacitor(name, canonical_node(a), canonical_node(b), capacitance), auto
        )

    def inductor(self, a: str, b: str, inductance: float, name: str | None = None) -> Inductor:
        """Add an inductor between nodes ``a`` and ``b``."""
        name, auto = self._reserve(name, "L")
        return self._commit(
            Inductor(name, canonical_node(a), canonical_node(b), inductance), auto
        )

    def conductor(self, a: str, b: str, conductance: float, name: str | None = None) -> Resistor:
        """Add a resistor specified by conductance (siemens)."""
        if not conductance > 0.0:
            raise CircuitError(f"conductance must be > 0, got {conductance}")
        return self.resistor(a, b, 1.0 / conductance, name)

    def vsource(self, plus: str, minus: str, value: float, name: str | None = None) -> VoltageSource:
        """Add an independent voltage source."""
        name, auto = self._reserve(name, "V")
        return self._commit(
            VoltageSource(name, canonical_node(plus), canonical_node(minus), float(value)),
            auto,
        )

    def isource(self, plus: str, minus: str, value: float, name: str | None = None) -> CurrentSource:
        """Add an independent current source (pushes current minus -> plus externally)."""
        name, auto = self._reserve(name, "I")
        return self._commit(
            CurrentSource(name, canonical_node(plus), canonical_node(minus), float(value)),
            auto,
        )

    def vcvs(
        self,
        out_plus: str,
        out_minus: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gain: float,
        name: str | None = None,
    ) -> VCVS:
        """Add a voltage-controlled voltage source."""
        name, auto = self._reserve(name, "E")
        return self._commit(
            VCVS(
                name,
                canonical_node(out_plus),
                canonical_node(out_minus),
                canonical_node(ctrl_plus),
                canonical_node(ctrl_minus),
                gain if isinstance(gain, complex) else float(gain),
            ),
            auto,
        )

    def opamp(
        self,
        inverting: str,
        noninverting: str,
        output: str,
        gain: float | None = None,
        name: str | None = None,
    ) -> Element:
        """Add an op-amp.

        ``gain=None`` adds an ideal (nullor) op-amp; a finite ``gain`` adds
        the equivalent VCVS ``v(out) = gain * (v(noninv) - v(inv))``.
        """
        if gain is None:
            name, auto = self._reserve(name, "U")
            return self._commit(
                IdealOpAmp(
                    name,
                    canonical_node(inverting),
                    canonical_node(noninverting),
                    canonical_node(output),
                ),
                auto,
            )
        return self.vcvs(output, "0", noninverting, inverting, gain, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit({self.title!r}, {len(self._elements)} elements, {len(self.nodes())} nodes)"
