"""Netlist container.

:class:`Circuit` accumulates elements with unique names and exposes
convenience builders (``resistor``, ``vsource``, ...). Node names are
arbitrary strings; ``"0"`` (also accepted: ``"gnd"``) is ground.
"""

from __future__ import annotations

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Element,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.errors import CircuitError

GROUND_NAMES = ("0", "gnd", "GND")

_GROUND_SET = frozenset(GROUND_NAMES)


def canonical_node(node: str) -> str:
    """Map all accepted ground spellings to ``"0"``."""
    return "0" if node in GROUND_NAMES else node


class Circuit:
    """A mutable collection of circuit elements with unique names."""

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: list[Element] = []
        self._names: set[str] = set()
        self._counter = 0

    # ------------------------------------------------------------------
    # element accessors
    # ------------------------------------------------------------------
    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements added so far, in insertion order."""
        return tuple(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def nodes(self) -> list[str]:
        """Sorted list of all node names (excluding ground)."""
        found: set[str] = set()
        for element in self._elements:
            if isinstance(element, (Resistor, Capacitor, Inductor)):
                found.update((element.a, element.b))
            elif isinstance(element, (VoltageSource, CurrentSource)):
                found.update((element.plus, element.minus))
            elif isinstance(element, VCVS):
                found.update(
                    (element.out_plus, element.out_minus, element.ctrl_plus, element.ctrl_minus)
                )
            elif isinstance(element, IdealOpAmp):
                found.update((element.inverting, element.noninverting, element.output))
        found.discard("0")
        return sorted(found)

    # ------------------------------------------------------------------
    # element builders
    # ------------------------------------------------------------------
    def _register(self, name: str | None, prefix: str) -> str:
        if name is None:
            self._counter += 1
            name = f"{prefix}{self._counter}"
        if name in self._names:
            raise CircuitError(f"duplicate element name {name!r}")
        self._names.add(name)
        return name

    def add(self, element: Element) -> Element:
        """Add a pre-built element (its name must be unique)."""
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    def resistor(self, a: str, b: str, resistance: float, name: str | None = None) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b``."""
        element = Resistor(
            self._register(name, "R"), canonical_node(a), canonical_node(b), resistance
        )
        self._elements.append(element)
        return element

    # ------------------------------------------------------------------
    # bulk builders
    # ------------------------------------------------------------------
    def _bulk_add(self, elements: list) -> list:
        """Register many pre-built elements in one name-set pass.

        The per-element builders pay a set lookup, a method call, and a
        name registration each; netlist generators appending tens of
        thousands of elements (a 256x256 MVM ladder is ~130k) go through
        here instead: one duplicate check over the new names, one set
        union, one list extend.
        """
        new_names = [element.name for element in elements]
        name_set = set(new_names)
        if len(name_set) != len(new_names):
            seen: set[str] = set()
            for name in new_names:
                if name in seen:
                    raise CircuitError(f"duplicate element name {name!r}")
                seen.add(name)
        clash = name_set & self._names
        if clash:
            raise CircuitError(f"duplicate element name {sorted(clash)[0]!r}")
        self._names |= name_set
        self._elements.extend(elements)
        return elements

    @staticmethod
    def _check_bulk_nodes(nodes) -> list[str]:
        canonical = []
        append = canonical.append
        for node in nodes:
            if not isinstance(node, str) or not node:
                raise CircuitError(f"node names must be non-empty strings, got {node!r}")
            append("0" if node in _GROUND_SET else node)
        return canonical

    @staticmethod
    def _make_two_terminal(cls, fields: tuple[str, str, str], names, a_nodes, b_nodes, values) -> list:
        # Elements are plain (frozen, non-slots) dataclasses, so building
        # them via object.__new__ + direct __dict__ stores skips the
        # per-element __init__/__post_init__ machinery; the bulk callers
        # re-impose the same invariants in one vectorized pass first.
        # ``fields`` names the (first node, second node, value) fields.
        node_a, node_b, value_field = fields
        elements = []
        append = elements.append
        new = object.__new__
        for name, a, b, value in zip(names, a_nodes, b_nodes, values):
            element = new(cls)
            d = element.__dict__
            d["name"] = name
            d[node_a] = a
            d[node_b] = b
            d[value_field] = value
            append(element)
        return elements

    def resistors(self, a_nodes, b_nodes, resistances, names) -> list[Resistor]:
        """Bulk-append resistors (parallel sequences, equal length)."""
        resistances = [float(r) for r in resistances]
        names = list(names)
        a_nodes = self._check_bulk_nodes(a_nodes)
        b_nodes = self._check_bulk_nodes(b_nodes)
        if not len(names) == len(a_nodes) == len(b_nodes) == len(resistances):
            raise CircuitError("bulk resistor argument lengths differ")
        for name, r in zip(names, resistances):
            if not r > 0.0:
                raise CircuitError(
                    f"resistor {name}: resistance must be > 0, got {r}"
                )
        return self._bulk_add(
            self._make_two_terminal(
                Resistor, ("a", "b", "resistance"), names, a_nodes, b_nodes, resistances
            )
        )

    def conductors(self, a_nodes, b_nodes, conductances, names) -> list[Resistor]:
        """Bulk-append resistors specified by conductance (siemens)."""
        resistances = []
        for g in conductances:
            g = float(g)
            if not g > 0.0:
                raise CircuitError(f"conductance must be > 0, got {g}")
            resistances.append(1.0 / g)
        names = list(names)
        a_nodes = self._check_bulk_nodes(a_nodes)
        b_nodes = self._check_bulk_nodes(b_nodes)
        if not len(names) == len(a_nodes) == len(b_nodes) == len(resistances):
            raise CircuitError("bulk conductor argument lengths differ")
        return self._bulk_add(
            self._make_two_terminal(
                Resistor, ("a", "b", "resistance"), names, a_nodes, b_nodes, resistances
            )
        )

    def vsources(self, plus_nodes, minus_nodes, values, names) -> list[VoltageSource]:
        """Bulk-append independent voltage sources."""
        values = [float(v) for v in values]
        names = list(names)
        plus_nodes = self._check_bulk_nodes(plus_nodes)
        minus_nodes = self._check_bulk_nodes(minus_nodes)
        if not len(names) == len(plus_nodes) == len(minus_nodes) == len(values):
            raise CircuitError("bulk vsource argument lengths differ")
        return self._bulk_add(
            self._make_two_terminal(
                VoltageSource, ("plus", "minus", "value"), names, plus_nodes, minus_nodes, values
            )
        )

    def capacitor(self, a: str, b: str, capacitance: float, name: str | None = None) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b``."""
        element = Capacitor(
            self._register(name, "C"), canonical_node(a), canonical_node(b), capacitance
        )
        self._elements.append(element)
        return element

    def inductor(self, a: str, b: str, inductance: float, name: str | None = None) -> Inductor:
        """Add an inductor between nodes ``a`` and ``b``."""
        element = Inductor(
            self._register(name, "L"), canonical_node(a), canonical_node(b), inductance
        )
        self._elements.append(element)
        return element

    def conductor(self, a: str, b: str, conductance: float, name: str | None = None) -> Resistor:
        """Add a resistor specified by conductance (siemens)."""
        if not conductance > 0.0:
            raise CircuitError(f"conductance must be > 0, got {conductance}")
        return self.resistor(a, b, 1.0 / conductance, name)

    def vsource(self, plus: str, minus: str, value: float, name: str | None = None) -> VoltageSource:
        """Add an independent voltage source."""
        element = VoltageSource(
            self._register(name, "V"), canonical_node(plus), canonical_node(minus), float(value)
        )
        self._elements.append(element)
        return element

    def isource(self, plus: str, minus: str, value: float, name: str | None = None) -> CurrentSource:
        """Add an independent current source (pushes current minus -> plus externally)."""
        element = CurrentSource(
            self._register(name, "I"), canonical_node(plus), canonical_node(minus), float(value)
        )
        self._elements.append(element)
        return element

    def vcvs(
        self,
        out_plus: str,
        out_minus: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gain: float,
        name: str | None = None,
    ) -> VCVS:
        """Add a voltage-controlled voltage source."""
        element = VCVS(
            self._register(name, "E"),
            canonical_node(out_plus),
            canonical_node(out_minus),
            canonical_node(ctrl_plus),
            canonical_node(ctrl_minus),
            gain if isinstance(gain, complex) else float(gain),
        )
        self._elements.append(element)
        return element

    def opamp(
        self,
        inverting: str,
        noninverting: str,
        output: str,
        gain: float | None = None,
        name: str | None = None,
    ) -> Element:
        """Add an op-amp.

        ``gain=None`` adds an ideal (nullor) op-amp; a finite ``gain`` adds
        the equivalent VCVS ``v(out) = gain * (v(noninv) - v(inv))``.
        """
        if gain is None:
            element = IdealOpAmp(
                self._register(name, "U"),
                canonical_node(inverting),
                canonical_node(noninverting),
                canonical_node(output),
            )
            self._elements.append(element)
            return element
        return self.vcvs(output, "0", noninverting, inverting, gain, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit({self.title!r}, {len(self._elements)} elements, {len(self.nodes())} nodes)"
