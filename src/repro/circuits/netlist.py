"""Netlist container.

:class:`Circuit` accumulates elements with unique names and exposes
convenience builders (``resistor``, ``vsource``, ...). Node names are
arbitrary strings; ``"0"`` (also accepted: ``"gnd"``) is ground.
"""

from __future__ import annotations

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Element,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.errors import CircuitError

GROUND_NAMES = ("0", "gnd", "GND")


def canonical_node(node: str) -> str:
    """Map all accepted ground spellings to ``"0"``."""
    return "0" if node in GROUND_NAMES else node


class Circuit:
    """A mutable collection of circuit elements with unique names."""

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: list[Element] = []
        self._names: set[str] = set()
        self._counter = 0

    # ------------------------------------------------------------------
    # element accessors
    # ------------------------------------------------------------------
    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements added so far, in insertion order."""
        return tuple(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def nodes(self) -> list[str]:
        """Sorted list of all node names (excluding ground)."""
        found: set[str] = set()
        for element in self._elements:
            if isinstance(element, (Resistor, Capacitor, Inductor)):
                found.update((element.a, element.b))
            elif isinstance(element, (VoltageSource, CurrentSource)):
                found.update((element.plus, element.minus))
            elif isinstance(element, VCVS):
                found.update(
                    (element.out_plus, element.out_minus, element.ctrl_plus, element.ctrl_minus)
                )
            elif isinstance(element, IdealOpAmp):
                found.update((element.inverting, element.noninverting, element.output))
        found.discard("0")
        return sorted(found)

    # ------------------------------------------------------------------
    # element builders
    # ------------------------------------------------------------------
    def _register(self, name: str | None, prefix: str) -> str:
        if name is None:
            self._counter += 1
            name = f"{prefix}{self._counter}"
        if name in self._names:
            raise CircuitError(f"duplicate element name {name!r}")
        self._names.add(name)
        return name

    def add(self, element: Element) -> Element:
        """Add a pre-built element (its name must be unique)."""
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    def resistor(self, a: str, b: str, resistance: float, name: str | None = None) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b``."""
        element = Resistor(
            self._register(name, "R"), canonical_node(a), canonical_node(b), resistance
        )
        self._elements.append(element)
        return element

    def capacitor(self, a: str, b: str, capacitance: float, name: str | None = None) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b``."""
        element = Capacitor(
            self._register(name, "C"), canonical_node(a), canonical_node(b), capacitance
        )
        self._elements.append(element)
        return element

    def inductor(self, a: str, b: str, inductance: float, name: str | None = None) -> Inductor:
        """Add an inductor between nodes ``a`` and ``b``."""
        element = Inductor(
            self._register(name, "L"), canonical_node(a), canonical_node(b), inductance
        )
        self._elements.append(element)
        return element

    def conductor(self, a: str, b: str, conductance: float, name: str | None = None) -> Resistor:
        """Add a resistor specified by conductance (siemens)."""
        if not conductance > 0.0:
            raise CircuitError(f"conductance must be > 0, got {conductance}")
        return self.resistor(a, b, 1.0 / conductance, name)

    def vsource(self, plus: str, minus: str, value: float, name: str | None = None) -> VoltageSource:
        """Add an independent voltage source."""
        element = VoltageSource(
            self._register(name, "V"), canonical_node(plus), canonical_node(minus), float(value)
        )
        self._elements.append(element)
        return element

    def isource(self, plus: str, minus: str, value: float, name: str | None = None) -> CurrentSource:
        """Add an independent current source (pushes current minus -> plus externally)."""
        element = CurrentSource(
            self._register(name, "I"), canonical_node(plus), canonical_node(minus), float(value)
        )
        self._elements.append(element)
        return element

    def vcvs(
        self,
        out_plus: str,
        out_minus: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gain: float,
        name: str | None = None,
    ) -> VCVS:
        """Add a voltage-controlled voltage source."""
        element = VCVS(
            self._register(name, "E"),
            canonical_node(out_plus),
            canonical_node(out_minus),
            canonical_node(ctrl_plus),
            canonical_node(ctrl_minus),
            gain if isinstance(gain, complex) else float(gain),
        )
        self._elements.append(element)
        return element

    def opamp(
        self,
        inverting: str,
        noninverting: str,
        output: str,
        gain: float | None = None,
        name: str | None = None,
    ) -> Element:
        """Add an op-amp.

        ``gain=None`` adds an ideal (nullor) op-amp; a finite ``gain`` adds
        the equivalent VCVS ``v(out) = gain * (v(noninv) - v(inv))``.
        """
        if gain is None:
            element = IdealOpAmp(
                self._register(name, "U"),
                canonical_node(inverting),
                canonical_node(noninverting),
                canonical_node(output),
            )
            self._elements.append(element)
            return element
        return self.vcvs(output, "0", noninverting, inverting, gain, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit({self.title!r}, {len(self._elements)} elements, {len(self.nodes())} nodes)"
