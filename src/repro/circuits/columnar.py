"""Columnar (struct-of-arrays) circuit representation.

:class:`ColumnarCircuit` is the bulk counterpart of
:class:`repro.circuits.netlist.Circuit`: instead of one frozen dataclass
per element it keeps contiguous NumPy columns per element *kind* —
node-index arrays and value arrays — so a 100k-element crossbar ladder
costs a handful of array appends rather than 100k object constructions.
MNA stamping is equally bulk: every run of homogeneous elements expands
into its COO entries with vectorized index arithmetic.

Equivalence contract (enforced by ``tests/test_kernel_equivalence.py``):
a :class:`ColumnarCircuit` holding the same netlist as a
:class:`Circuit` assembles a **bit-identical**
:class:`~repro.circuits.mna.AssembledMNA` — same node and branch
ordering, same matrix bytes, same right-hand-side machinery. Two design
rules make that possible:

- node names intern to integer ids on first use (ground spellings
  canonicalize to id ``-1`` at the door — the container invariant the
  object netlist enforces through ``canonical_node``), and assembly maps
  intern ids onto the same sorted-name ordering ``Circuit`` uses;
- elements append in *runs* (one bulk call = one run), and stamping
  emits each run's COO entries in element-major order — exactly the
  per-element entry sequence of the reference assembler — so duplicate
  accumulation order (and therefore every low bit of ``np.add.at`` /
  ``csc_matrix`` duplicate summation) is preserved.

What stays object-based: the scalar :class:`Circuit` remains the
container for hand-built netlists, element introspection, and AC /
transient analysis; :class:`ColumnarCircuit` covers the generator hot
path (DC MNA assembly of machine-built ladders) where element identity
is never inspected.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.netlist import Circuit, _GROUND_SET
from repro.errors import CircuitError

__all__ = ["ColumnarCircuit", "assemble_columnar_mna"]

#: Element-kind tags (aligned with the auto-name prefixes of ``Circuit``).
_RESISTOR = "R"
_CAPACITOR = "C"
_INDUCTOR = "L"
_VSOURCE = "V"
_ISOURCE = "I"
_VCVS = "E"
_OPAMP = "U"

#: Kinds that introduce an MNA branch unknown, and kinds that appear in
#: the right-hand side. Branch indices are assigned in run order, which
#: matches element order for identically-ordered netlists.
_BRANCH_KINDS = frozenset((_VSOURCE, _VCVS, _OPAMP, _INDUCTOR))
_NAMED_KINDS = _BRANCH_KINDS | {_ISOURCE}


class ColumnarCircuit:
    """A netlist stored as contiguous per-kind arrays (no element objects).

    Nodes are referred to by name (interned on first use, ground
    canonicalized to ``"0"``) or directly by the integer ids
    :meth:`node_ids` returns — generators use id arithmetic to wire
    whole ladders without per-cell string work. Elements land through
    bulk appenders only; names are required for voltage-defined elements
    and sources (they key ``branch_index`` / source overrides) and
    optional elsewhere.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._node_names: list[str] = []
        self._node_ids: dict[str, int] = {g: -1 for g in _GROUND_SET}
        self._names: set[str] = set()
        self._runs: list[tuple[str, int, int]] = []
        self._columns: dict[str, dict[str, list[np.ndarray]]] = {}
        self._kind_names: dict[str, list[str | None]] = {}
        self._kind_counts: dict[str, int] = {}
        self._total = 0

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def node_ids(self, names) -> np.ndarray:
        """Intern node names; returns their integer ids (ground is ``-1``).

        Interning is idempotent — asking for a known name returns its
        existing id — so callers can hold id arrays and wire connectivity
        with pure integer arithmetic.
        """
        ids = self._node_ids
        intern = self._node_names
        missing = [name for name in names if name not in ids]
        if missing:
            fresh = list(dict.fromkeys(missing))  # dedupe, order-preserving
            for name in fresh:
                if not isinstance(name, str) or not name:
                    raise CircuitError(
                        f"node names must be non-empty strings, got {name!r}"
                    )
            base = len(intern)
            ids.update(zip(fresh, range(base, base + len(fresh))))
            intern.extend(fresh)
            if len(fresh) == len(names):
                # Every name was new and unique: ids are sequential.
                return np.arange(base, base + len(fresh), dtype=np.intp)
        return np.fromiter(
            map(ids.__getitem__, names), dtype=np.intp, count=len(names)
        )

    def _as_ids(self, nodes) -> np.ndarray:
        """Accept node names or pre-interned id arrays."""
        if isinstance(nodes, np.ndarray) and nodes.dtype.kind in "iu":
            ids = nodes.astype(np.intp, copy=False)
            if ids.size and (ids.min() < -1 or ids.max() >= len(self._node_names)):
                raise CircuitError("node id out of range")
            return ids
        return self.node_ids(list(nodes))

    def nodes(self) -> list[str]:
        """Sorted list of all node names (excluding ground)."""
        return sorted(self._node_names)

    def __len__(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    # bulk appenders
    # ------------------------------------------------------------------
    def _append(self, kind: str, names, count: int, **columns) -> None:
        if names is None:
            if kind in _NAMED_KINDS:
                raise CircuitError(
                    f"elements of kind {kind!r} require explicit names"
                )
            name_list: list[str | None] = [None] * count
        else:
            name_list = list(names)
            if len(name_list) != count:
                raise CircuitError("bulk argument lengths differ")
            fresh = set(name_list)
            if len(fresh) != count:
                seen: set[str] = set()
                for name in name_list:
                    if name in seen:
                        raise CircuitError(f"duplicate element name {name!r}")
                    seen.add(name)
            clash = fresh & self._names
            if clash:
                raise CircuitError(f"duplicate element name {sorted(clash)[0]!r}")
            self._names |= fresh
        store = self._columns.setdefault(kind, {})
        for field, values in columns.items():
            store.setdefault(field, []).append(values)
        self._kind_names.setdefault(kind, []).extend(name_list)
        start = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = start + count
        self._runs.append((kind, start, start + count))
        self._total += count

    def _two_terminal(
        self, kind: str, a, b, values, names, field: str, positive: bool
    ) -> None:
        a = self._as_ids(a)
        b = self._as_ids(b)
        values = np.asarray(values, dtype=float)
        if not a.shape == b.shape == values.shape or values.ndim != 1:
            raise CircuitError("bulk argument lengths differ")
        if positive and not np.all(values > 0.0):
            bad = float(values[values <= 0.0][0])
            raise CircuitError(f"{field} must be > 0, got {bad}")
        self._append(kind, names, values.size, a=a, b=b, value=values)

    def resistors(self, a, b, resistances, names=None) -> None:
        """Bulk-append resistors (node names or id arrays)."""
        self._two_terminal(_RESISTOR, a, b, resistances, names, "resistance", True)

    def conductors(self, a, b, conductances, names=None) -> None:
        """Bulk-append resistors specified by conductance (siemens).

        Stored as resistances (``1/g``) exactly like the object netlist,
        so the stamped conductance is the same double reciprocal.
        """
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 1:
            raise CircuitError("conductances must be a 1-D sequence")
        if not np.all(conductances > 0.0):
            bad = float(conductances[conductances <= 0.0][0])
            raise CircuitError(f"conductance must be > 0, got {bad}")
        self._two_terminal(
            _RESISTOR, a, b, 1.0 / conductances, names, "resistance", True
        )

    def capacitors(self, a, b, capacitances, names=None) -> None:
        """Bulk-append capacitors (open at DC; kept for netlist parity)."""
        self._two_terminal(_CAPACITOR, a, b, capacitances, names, "capacitance", True)

    def inductors(self, a, b, inductances, names) -> None:
        """Bulk-append inductors (0 V branches at DC)."""
        self._two_terminal(_INDUCTOR, a, b, inductances, names, "inductance", True)

    def vsources(self, plus, minus, values, names) -> None:
        """Bulk-append independent voltage sources."""
        self._two_terminal(_VSOURCE, plus, minus, values, names, "value", False)

    def isources(self, plus, minus, values, names) -> None:
        """Bulk-append independent current sources."""
        self._two_terminal(_ISOURCE, plus, minus, values, names, "value", False)

    def opamps(self, inverting, noninverting, output, names) -> None:
        """Bulk-append ideal (nullor) op-amps."""
        inv = self._as_ids(inverting)
        noninv = self._as_ids(noninverting)
        out = self._as_ids(output)
        if not inv.shape == noninv.shape == out.shape or inv.ndim != 1:
            raise CircuitError("bulk argument lengths differ")
        self._append(
            _OPAMP, names, inv.size, inverting=inv, noninverting=noninv, output=out
        )

    def vcvs(self, out_plus, out_minus, ctrl_plus, ctrl_minus, gains, names) -> None:
        """Bulk-append voltage-controlled voltage sources."""
        op = self._as_ids(out_plus)
        om = self._as_ids(out_minus)
        cp = self._as_ids(ctrl_plus)
        cn = self._as_ids(ctrl_minus)
        gains = np.asarray(gains)
        if np.iscomplexobj(gains):
            raise CircuitError(
                "ColumnarCircuit VCVS gains must be real; use Circuit + solve_ac "
                "for AC analysis"
            )
        gains = gains.astype(float, copy=False)
        if (
            not op.shape == om.shape == cp.shape == cn.shape == gains.shape
            or gains.ndim != 1
        ):
            raise CircuitError("bulk argument lengths differ")
        self._append(
            _VCVS,
            names,
            gains.size,
            out_plus=op,
            out_minus=om,
            ctrl_plus=cp,
            ctrl_minus=cn,
            gain=gains,
        )

    # ------------------------------------------------------------------
    # conversion and assembly support
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "ColumnarCircuit":
        """Columnar copy of an object netlist, element order preserved.

        Every element becomes its own single-element run, so the COO
        entry sequence (and with it every accumulated low bit) matches
        the reference assembler exactly.
        """
        columnar = cls(circuit.title)
        for e in circuit.elements:
            if isinstance(e, Resistor):
                columnar.resistors([e.a], [e.b], [e.resistance], [e.name])
            elif isinstance(e, Capacitor):
                columnar.capacitors([e.a], [e.b], [e.capacitance], [e.name])
            elif isinstance(e, Inductor):
                columnar.inductors([e.a], [e.b], [e.inductance], [e.name])
            elif isinstance(e, VoltageSource):
                columnar.vsources([e.plus], [e.minus], [e.value], [e.name])
            elif isinstance(e, CurrentSource):
                columnar.isources([e.plus], [e.minus], [e.value], [e.name])
            elif isinstance(e, VCVS):
                columnar.vcvs(
                    [e.out_plus],
                    [e.out_minus],
                    [e.ctrl_plus],
                    [e.ctrl_minus],
                    [e.gain],
                    [e.name],
                )
            elif isinstance(e, IdealOpAmp):
                columnar.opamps(
                    [e.inverting], [e.noninverting], [e.output], [e.name]
                )
            else:  # pragma: no cover - union is closed
                raise CircuitError(f"unknown element type {type(e).__name__}")
        return columnar

    def _kind_arrays(self, kind: str) -> dict[str, np.ndarray]:
        store = self._columns.get(kind, {})
        return {
            field: np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            for field, chunks in store.items()
        }

    def _sorted_nodes(self) -> tuple[list[str], np.ndarray]:
        """``(sorted node names, intern-id -> sorted-row lookup)``.

        The lookup's trailing slot holds -1, so indexing it with a ground
        id (-1 wraps to the last slot) keeps ground as -1. NumPy's
        lexicographic string sort matches Python's ``sorted``, so the
        row ordering is exactly the object netlist's ``nodes()`` order.
        """
        n = len(self._node_names)
        if n == 0:
            return [], np.full(1, -1, dtype=np.intp)
        names_arr = np.array(self._node_names)
        order = np.argsort(names_arr, kind="stable")
        lookup = np.empty(n + 1, dtype=np.intp)
        lookup[order] = np.arange(n, dtype=np.intp)
        lookup[n] = -1
        return names_arr[order].tolist(), lookup

    def resistor_stamp(
        self, node_index: dict[str, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(idx_a, idx_b, conductance)`` over all resistors.

        The hook :class:`~repro.circuits.mna.DCSolution` uses for
        vectorized resistor power (the object netlist derives the same
        arrays by iterating elements). ``node_index`` must be this
        circuit's own assembly index — i.e. sorted node order, the only
        index :func:`assemble_columnar_mna` ever produces.
        """
        arrays = self._kind_arrays(_RESISTOR)
        if not arrays:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty.copy(), np.empty(0)
        _, lookup = self._sorted_nodes()
        if len(node_index) != len(self._node_names):  # pragma: no cover
            raise CircuitError("node_index does not match this circuit")
        return lookup[arrays["a"]], lookup[arrays["b"]], 1.0 / arrays["value"]

    def assemble(self):
        """Stamp this netlist into an :class:`~repro.circuits.mna.AssembledMNA`."""
        return assemble_columnar_mna(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarCircuit({self.title!r}, {self._total} elements, "
            f"{len(self._node_names)} nodes)"
        )


def assemble_columnar_mna(circuit: ColumnarCircuit):
    """Bulk MNA stamping of a :class:`ColumnarCircuit`.

    Produces the same :class:`~repro.circuits.mna.AssembledMNA` the
    reference per-element assembler builds for an identically-ordered
    object netlist — bit-identical matrix included, because every run
    expands its COO entries in element-major order and ground (-1)
    entries are masked out *after* expansion, preserving the duplicate
    accumulation sequence.
    """
    from repro.circuits.mna import AssembledMNA, _build_matrix

    if len(circuit) == 0:
        raise CircuitError("cannot solve an empty circuit")

    sorted_names, lookup = circuit._sorted_nodes()
    node_index = dict(zip(sorted_names, range(len(sorted_names))))
    n_nodes = len(node_index)

    arrays = {kind: circuit._kind_arrays(kind) for kind in circuit._kind_counts}
    names = circuit._kind_names

    # Branch unknowns in run (== element) order across the branch kinds.
    branch_index: dict[str, int] = {}
    branch_of_run: dict[int, np.ndarray] = {}
    next_branch = 0
    for run_id, (kind, start, stop) in enumerate(circuit._runs):
        if kind in _BRANCH_KINDS:
            count = stop - start
            branch_of_run[run_id] = np.arange(
                next_branch, next_branch + count, dtype=np.intp
            )
            for offset, name in enumerate(names[kind][start:stop]):
                branch_index[name] = next_branch + offset
            next_branch += count
    n_branches = next_branch
    size = n_nodes + n_branches
    if size == 0:
        raise CircuitError("circuit has no unknowns (everything grounded?)")

    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    source_rows: dict[str, list[tuple[int, float]]] = {}
    base_values: dict[str, float] = {}

    def emit(rows: np.ndarray, cols: np.ndarray, data: np.ndarray) -> None:
        """Append entries element-major, dropping ground rows/columns."""
        rows = rows.ravel()
        cols = cols.ravel()
        keep = (rows >= 0) & (cols >= 0)
        rows_parts.append(rows[keep])
        cols_parts.append(cols[keep])
        data_parts.append(data.ravel()[keep])

    for run_id, (kind, start, stop) in enumerate(circuit._runs):
        cols_of = arrays[kind]
        sl = slice(start, stop)
        if kind == _RESISTOR:
            a = lookup[cols_of["a"][sl]]
            b = lookup[cols_of["b"][sl]]
            g = 1.0 / cols_of["value"][sl]
            emit(
                np.stack([a, b, a, b], axis=1),
                np.stack([a, b, b, a], axis=1),
                np.stack([g, g, -g, -g], axis=1),
            )
        elif kind == _CAPACITOR:
            continue  # open circuit at DC
        elif kind == _INDUCTOR:
            a = lookup[cols_of["a"][sl]]
            b = lookup[cols_of["b"][sl]]
            k = n_nodes + branch_of_run[run_id]
            ones = np.ones(a.size)
            emit(
                np.stack([a, b, k, k], axis=1),
                np.stack([k, k, a, b], axis=1),
                np.stack([ones, -ones, ones, -ones], axis=1),
            )
        elif kind == _ISOURCE:
            plus = lookup[cols_of["a"][sl]]
            minus = lookup[cols_of["b"][sl]]
            values = cols_of["value"][sl]
            for offset, name in enumerate(names[kind][sl]):
                entries = []
                if plus[offset] >= 0:
                    entries.append((int(plus[offset]), 1.0))
                if minus[offset] >= 0:
                    entries.append((int(minus[offset]), -1.0))
                source_rows[name] = entries
                base_values[name] = float(values[offset])
        elif kind == _VSOURCE:
            plus = lookup[cols_of["a"][sl]]
            minus = lookup[cols_of["b"][sl]]
            k = n_nodes + branch_of_run[run_id]
            values = cols_of["value"][sl]
            ones = np.ones(plus.size)
            emit(
                np.stack([plus, minus, k, k], axis=1),
                np.stack([k, k, plus, minus], axis=1),
                np.stack([ones, -ones, ones, -ones], axis=1),
            )
            for offset, name in enumerate(names[kind][sl]):
                source_rows[name] = [(int(k[offset]), 1.0)]
                base_values[name] = float(values[offset])
        elif kind == _VCVS:
            op = lookup[cols_of["out_plus"][sl]]
            om = lookup[cols_of["out_minus"][sl]]
            cp = lookup[cols_of["ctrl_plus"][sl]]
            cn = lookup[cols_of["ctrl_minus"][sl]]
            gain = cols_of["gain"][sl]
            k = n_nodes + branch_of_run[run_id]
            ones = np.ones(op.size)
            emit(
                np.stack([op, om, k, k, k, k], axis=1),
                np.stack([k, k, op, om, cp, cn], axis=1),
                np.stack([ones, -ones, ones, -ones, -gain, gain], axis=1),
            )
        elif kind == _OPAMP:
            inv = lookup[cols_of["inverting"][sl]]
            noninv = lookup[cols_of["noninverting"][sl]]
            out = lookup[cols_of["output"][sl]]
            k = n_nodes + branch_of_run[run_id]
            ones = np.ones(out.size)
            emit(
                np.stack([out, k, k], axis=1),
                np.stack([k, noninv, inv], axis=1),
                np.stack([ones, ones, -ones], axis=1),
            )
        else:  # pragma: no cover - kind set is closed
            raise CircuitError(f"unknown element kind {kind!r}")

    rows_idx = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.intp)
    cols_idx = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.intp)
    data = np.concatenate(data_parts) if data_parts else np.empty(0)
    matrix, dense = _build_matrix(rows_idx, cols_idx, data, size)

    return AssembledMNA(
        circuit=circuit,
        node_index=node_index,
        branch_index=branch_index,
        matrix=matrix,
        dense=dense,
        source_rows=source_rows,
        base_values=base_values,
    )
