"""Circuit element definitions.

Each element is an immutable record naming its terminals (string node
names; ``"0"`` is ground) and its value. The MNA assembler in
:mod:`repro.circuits.mna` knows how to stamp each element type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError


def _check_node(node: str) -> str:
    if not isinstance(node, str) or not node:
        raise CircuitError(f"node names must be non-empty strings, got {node!r}")
    return node


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between ``a`` and ``b``.

    ``resistance`` must be > 0; model ideal opens by omitting the element
    and shorts with a voltage source of 0 V.
    """

    name: str
    a: str
    b: str
    resistance: float

    def __post_init__(self):
        _check_node(self.a)
        _check_node(self.b)
        if not self.resistance > 0.0:
            raise CircuitError(f"resistor {self.name}: resistance must be > 0, got {self.resistance}")

    @property
    def conductance(self) -> float:
        """1 / resistance, in siemens."""
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor between ``a`` and ``b``.

    Open at DC (the DC solver ignores it); contributes admittance
    ``j * 2 pi f * C`` in AC analysis.
    """

    name: str
    a: str
    b: str
    capacitance: float

    def __post_init__(self):
        _check_node(self.a)
        _check_node(self.b)
        if not self.capacitance > 0.0:
            raise CircuitError(
                f"capacitor {self.name}: capacitance must be > 0, got {self.capacitance}"
            )


@dataclass(frozen=True)
class Inductor:
    """Linear inductor between ``a`` and ``b``.

    A short at DC (stamped as a 0 V branch); impedance
    ``j * 2 pi f * L`` in AC analysis.
    """

    name: str
    a: str
    b: str
    inductance: float

    def __post_init__(self):
        _check_node(self.a)
        _check_node(self.b)
        if not self.inductance > 0.0:
            raise CircuitError(
                f"inductor {self.name}: inductance must be > 0, got {self.inductance}"
            )


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source: ``v(plus) - v(minus) = value``."""

    name: str
    plus: str
    minus: str
    value: float

    def __post_init__(self):
        _check_node(self.plus)
        _check_node(self.minus)


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source pushing ``value`` amps from minus to plus."""

    name: str
    plus: str
    minus: str
    value: float

    def __post_init__(self):
        _check_node(self.plus)
        _check_node(self.minus)


@dataclass(frozen=True)
class VCVS:
    """Voltage-controlled voltage source.

    ``v(out_plus) - v(out_minus) = gain * (v(ctrl_plus) - v(ctrl_minus))``.
    A finite-gain op-amp is a VCVS with gain ``-A0`` controlled by its
    inverting input (non-inverting input grounded). Complex gains are
    accepted for AC analysis (e.g. a single-pole op-amp model).
    """

    name: str
    out_plus: str
    out_minus: str
    ctrl_plus: str
    ctrl_minus: str
    gain: complex

    def __post_init__(self):
        for node in (self.out_plus, self.out_minus, self.ctrl_plus, self.ctrl_minus):
            _check_node(node)


@dataclass(frozen=True)
class IdealOpAmp:
    """Ideal op-amp (nullor): enforces ``v(inv) = v(noninv)``.

    The output sources whatever current satisfies the constraint. This is
    the infinite-gain limit of the VCVS op-amp model; the two agree in the
    limit, which tests verify.
    """

    name: str
    inverting: str
    noninverting: str
    output: str

    def __post_init__(self):
        _check_node(self.inverting)
        _check_node(self.noninverting)
        _check_node(self.output)


#: Union of all element types the MNA assembler accepts.
Element = Resistor | Capacitor | Inductor | VoltageSource | CurrentSource | VCVS | IdealOpAmp
