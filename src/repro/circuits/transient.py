"""Time-domain (transient) simulation of the AMC circuits.

The paper's speed argument rests on dynamics: the INV circuit converges
to the solution in a time set by the op-amps' gain-bandwidth product and
the matrix's smallest eigenvalue ([23]), nearly independent of size —
the "O(1)" claim. This module simulates those dynamics explicitly.

Model: each op-amp is a single-pole integrator with open-loop DC gain
``A0`` and unity-gain (gain-bandwidth) frequency ``f_GBW``:

    tau * dv_out/dt = -v_out - A0 * v_sum,    tau = A0 / (2 pi f_GBW)

while the resistive network relates the summing-node voltages
``v_sum`` *algebraically* to the outputs and inputs (KCL at each node,
no capacitance on the summing nodes):

    MVM:  v_sum_i = (sum_j G_ij v_in_j + G0 v_out_i) / (G0 + L_i)
    INV:  v_sum_i = (G_in v_in_i + sum_j G_ij v_out_j) / (G_in + L_i)

Substituting gives a linear constant-coefficient ODE
``dv/dt = J v + c`` solved exactly by eigendecomposition, so
trajectories are available at arbitrary time resolution without
numerical integration error. Stability is the sign of the slowest
eigenvalue's real part — for INV this reduces to the positivity of the
(loaded) matrix spectrum, which is how the paper's stability criterion
emerges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.crossbar.array import CrossbarArray
from repro.errors import CircuitError
from repro.utils.validation import check_positive, check_vector

#: Settling criterion: within this fraction of the final value.
DEFAULT_SETTLE_EPSILON = 1e-3


@dataclass(frozen=True)
class TransientResult:
    """Outcome of one transient simulation.

    Attributes
    ----------
    times:
        Sample instants (seconds).
    outputs:
        Output-voltage trajectories, shape ``(len(times), n)``.
    final:
        The DC equilibrium the trajectory approaches (exact, from the
        algebraic solution — not the last sample).
    settling_time_s:
        First sampled instant after which every output stays within
        ``epsilon * max(|final|)`` of its final value; ``inf`` when the
        circuit is unstable.
    stable:
        True when all ODE eigenvalues have negative real part.
    slowest_pole_hz:
        Magnitude of the slowest stable pole (or the most unstable one),
        in hertz — the bandwidth that sets the settling time.
    """

    times: np.ndarray
    outputs: np.ndarray
    final: np.ndarray
    settling_time_s: float
    stable: bool
    slowest_pole_hz: float

    def output_at(self, t: float) -> np.ndarray:
        """Interpolated output vector at time ``t``."""
        return np.array(
            [np.interp(t, self.times, self.outputs[:, i]) for i in range(self.outputs.shape[1])]
        )


def _linear_transient(
    jacobian: np.ndarray,
    forcing: np.ndarray,
    v0: np.ndarray,
    t_end: float,
    n_points: int,
    epsilon: float,
) -> TransientResult:
    """Solve ``dv/dt = J v + c`` exactly via eigendecomposition."""
    n = forcing.size
    try:
        eigenvalues, eigenvectors = np.linalg.eig(jacobian)
        inv_vectors = np.linalg.inv(eigenvectors)
    except np.linalg.LinAlgError as exc:
        raise CircuitError(f"transient Jacobian is defective: {exc}") from exc

    stable = bool(np.all(eigenvalues.real < 0.0))
    if stable:
        final = np.linalg.solve(jacobian, -forcing)
        slowest = float(np.min(np.abs(eigenvalues.real)))
    else:
        # No finite equilibrium is reached; report the drift direction.
        final = np.full(n, np.nan)
        slowest = float(np.max(eigenvalues.real))

    times = np.linspace(0.0, t_end, n_points)
    # v(t) = final + V diag(exp(lam t)) V^-1 (v0 - final); for unstable
    # systems integrate from the particular solution of the pseudoinverse.
    anchor = final if stable else np.zeros(n)
    offset0 = inv_vectors @ (v0 - anchor)
    modes = np.exp(np.outer(times, eigenvalues)) * offset0[None, :]
    trajectories = (modes @ eigenvectors.T).real + anchor[None, :]
    if not stable:
        # Add the forced ramp component for the unstable case (best
        # effort; the trajectory is only used to show divergence).
        trajectories = trajectories + times[:, None] * forcing[None, :]

    if stable:
        scale = float(np.max(np.abs(final)))
        tolerance = epsilon * (scale if scale > 0.0 else 1.0)
        deviation = np.max(np.abs(trajectories - final[None, :]), axis=1)
        settled = deviation <= tolerance
        # Find the first index after which the trajectory stays settled.
        settling = math.inf
        for idx in range(len(times)):
            if settled[idx:].all():
                settling = float(times[idx])
                break
    else:
        settling = math.inf

    return TransientResult(
        times=times,
        outputs=trajectories,
        final=final,
        settling_time_s=settling,
        stable=stable,
        slowest_pole_hz=slowest / (2.0 * math.pi),
    )


def _pole_time_constant(open_loop_gain: float, gbwp_hz: float) -> float:
    check_positive(gbwp_hz, "gbwp_hz")
    check_positive(open_loop_gain, "open_loop_gain", allow_inf=True)
    if math.isinf(open_loop_gain):
        raise CircuitError("transient simulation needs a finite open-loop gain")
    return open_loop_gain / (2.0 * math.pi * gbwp_hz)


def simulate_mvm_transient(
    array: CrossbarArray,
    v_in: np.ndarray,
    *,
    open_loop_gain: float = 1e4,
    gbwp_hz: float = 100e6,
    t_end: float | None = None,
    n_points: int = 400,
    epsilon: float = DEFAULT_SETTLE_EPSILON,
    v0: np.ndarray | None = None,
) -> TransientResult:
    """Transient of the MVM circuit (Fig. 1a) after the input step.

    The TIA rows are decoupled (each output feeds back only to its own
    summing node), so the Jacobian is diagonal; settling is governed by
    the per-row noise gain — the paper's [22] result.
    """
    rows, cols = array.shape
    v_in = check_vector(v_in, "v_in", size=cols)
    tau = _pole_time_constant(open_loop_gain, gbwp_hz)

    effective = array.effective_matrix()
    loading = array.load_row_sums()
    # v_sum = (E v_in + v_out) / (1 + L)   (normalized by G0)
    denom = 1.0 + loading
    drive = (effective @ v_in) / denom
    # tau dv/dt = -v - A0 * v_sum
    jacobian = np.diag(-(1.0 + open_loop_gain / denom) / tau)
    forcing = -open_loop_gain * drive / tau

    if t_end is None:
        slowest = float(np.min((1.0 + open_loop_gain / denom) / tau))
        t_end = 12.0 / slowest
    v0 = np.zeros(rows) if v0 is None else check_vector(v0, "v0", size=rows)
    return _linear_transient(jacobian, forcing, v0, t_end, n_points, epsilon)


def simulate_inv_transient(
    array: CrossbarArray,
    v_in: np.ndarray,
    *,
    open_loop_gain: float = 1e4,
    gbwp_hz: float = 100e6,
    input_scale: float = 1.0,
    t_end: float | None = None,
    n_points: int = 400,
    epsilon: float = DEFAULT_SETTLE_EPSILON,
    v0: np.ndarray | None = None,
) -> TransientResult:
    """Transient of the INV circuit (Fig. 1b) after the input step.

    The outputs are coupled through the array (nested feedback loops),
    so the Jacobian is dense; its spectrum maps one-to-one onto the
    loaded matrix's spectrum, which is why the settling time tracks the
    smallest eigenvalue — the paper's [23] result — and why a matrix
    with a non-positive eigenvalue makes the circuit diverge.
    """
    rows, cols = array.shape
    if rows != cols:
        raise CircuitError(f"INV requires a square array, got {array.shape}")
    v_in = check_vector(v_in, "v_in", size=rows)
    check_positive(input_scale, "input_scale")
    tau = _pole_time_constant(open_loop_gain, gbwp_hz)

    effective = array.effective_matrix()
    loading = input_scale + array.load_row_sums()
    # v_sum = (s v_in + E v_out) / (s + L)   (normalized by G0)
    denom = loading
    # tau dv/dt = -v - A0 (s v_in + E v)/denom
    jacobian = (-np.eye(rows) - open_loop_gain * effective / denom[:, None]) / tau
    forcing = -open_loop_gain * (input_scale * v_in) / denom / tau

    if t_end is None:
        margins = np.linalg.eigvals(jacobian).real
        if np.all(margins < 0.0):
            t_end = 12.0 / float(np.min(np.abs(margins)))
        else:
            t_end = 50.0 * tau / open_loop_gain
    v0 = np.zeros(rows) if v0 is None else check_vector(v0, "v0", size=rows)
    return _linear_transient(jacobian, forcing, v0, t_end, n_points, epsilon)
