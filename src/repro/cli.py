"""Command-line interface.

``python -m repro`` exposes the experiment suites so the paper's curves
can be regenerated without writing code:

    python -m repro list
    python -m repro run fig7-wishart --quick --csv out.csv
    python -m repro costs --size 512
    python -m repro solve --size 64 --hardware variation
    python -m repro campaign run fig7-variation --workers 4
    python -m repro campaign status fig7-variation

Exit code is 0 on success; validation problems print to stderr and
return 2 (argparse convention).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.amc.config import HardwareConfig
from repro.errors import ReproError
from repro.analysis.accuracy import accuracy_sweep, run_trials_batched
from repro.analysis.costmodel import ARCHITECTURES, savings_vs_original, solver_cost_breakdown
from repro.analysis.export import records_to_csv, sweep_to_csv
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.feasibility import assess_feasibility
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.serve import (
    SOLVER_KINDS,
    ResiliencePolicy,
    ServiceConfig,
    SolverService,
    run_sequential,
)
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.suites import get_suite, list_suites
from repro.workloads.traffic import TRAFFIC_FAMILIES, drive_network, mixed_traffic

#: One matrix-family table for the whole surface: `repro check`,
#: `repro submit`, and traffic generation stay in sync by construction.
MATRIX_FAMILIES = TRAFFIC_FAMILIES

HARDWARE_FACTORIES = {
    "ideal": HardwareConfig.ideal,
    "ideal-mapping": HardwareConfig.paper_ideal_mapping,
    "variation": HardwareConfig.paper_variation,
    "interconnect": HardwareConfig.paper_interconnect,
}


def _solver_factories(hardware_factory):
    return {
        "original-amc": lambda: OriginalAMCSolver(hardware_factory()),
        "blockamc-1stage": lambda: BlockAMCSolver(hardware_factory()),
        "blockamc-2stage": lambda: MultiStageSolver(hardware_factory(), stages=2),
    }


def _cmd_list(_args) -> int:
    print("Available suites (paper figure experiments):")
    for name in list_suites():
        suite = get_suite(name)
        print(f"  {name:20s} {suite.figure}")
    return 0


def _cmd_run(args) -> int:
    suite = get_suite(args.suite, quick=args.quick)
    # The trial-batched engine produces records identical to the
    # sequential run_trials (bit-identical random draws; enforced by
    # benchmarks/bench_perf_engine.py) at a fraction of the wall clock.
    solvers = {
        name: factory()
        for name, factory in _solver_factories(suite.hardware_factory).items()
    }
    records = run_trials_batched(
        solvers, suite.matrix_factory, suite.sizes, suite.trials, seed=args.seed
    )
    table = accuracy_sweep(records)
    solvers = sorted(table)
    rows = [
        [size] + [table[name][size][0] for name in solvers] for size in suite.sizes
    ]
    print(
        format_table(
            ["size"] + solvers,
            rows,
            title=f"{suite.name} ({suite.figure}) — mean relative error, "
            f"{suite.trials} trials/size",
        )
    )
    if args.csv:
        sweep_to_csv(table, args.csv)
        records_to_csv(records, str(args.csv) + ".raw.csv")
        print(f"\nwrote {args.csv} and {args.csv}.raw.csv")
    return 0


def _cmd_costs(args) -> int:
    rows = []
    for arch in ARCHITECTURES:
        breakdown = solver_cost_breakdown(arch, args.size)
        rows.append([arch, breakdown.total_area_mm2, breakdown.total_power_w * 1e3])
    print(
        format_table(
            ["solver", "area mm^2", "power mW"],
            rows,
            title=f"Fig. 10 cost model at n = {args.size}",
        )
    )
    savings = savings_vs_original(args.size)
    for arch, values in savings.items():
        print(
            f"{arch}: saves {values['area']*100:.1f}% area, "
            f"{values['power']*100:.1f}% power vs original AMC"
        )
    return 0


def _cmd_solve(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]
    matrix = wishart_matrix(args.size, rng=args.seed)
    b = random_vector(args.size, rng=args.seed + 1)
    rng = np.random.default_rng(args.seed + 2)
    solver = (
        MultiStageSolver(hardware(), stages=args.stages)
        if args.stages > 1
        else BlockAMCSolver(hardware())
    )
    result = solver.solve(matrix, b, rng=rng)
    print(f"solver:          {result.solver}")
    print(f"size:            {result.size}")
    print(f"relative error:  {result.relative_error:.3e}")
    print(f"analog time:     {result.analog_time_s*1e6:.3f} us")
    print(f"operations:      {result.operation_counts}")
    return 0


def _service_config(args) -> ServiceConfig:
    resilience = ResiliencePolicy(
        deadline_s=args.deadline_ms * 1e-3 if args.deadline_ms else None,
        shed_latency_s=args.shed_ms * 1e-3 if args.shed_ms else None,
        fallback=args.fallback,
    )
    return ServiceConfig(
        workers=args.workers,
        max_batch_size=args.max_batch,
        max_linger_s=args.linger_ms * 1e-3,
        default_solver=args.solver,
        default_hardware=HARDWARE_FACTORIES[args.hardware](),
        cache_capacity=args.cache_capacity,
        resilience=resilience,
        trace_dir=args.trace_dir,
        backend=args.backend,
    )


def _print_typed_error(exc: ReproError) -> None:
    """Report a service refusal as its typed error class, not a traceback.

    ``repro submit --deadline-ms 1`` prints ``DeadlineExceededError``,
    a shed request prints ``OverloadedError`` with the server's
    retry-after hint — the wire taxonomy, surfaced verbatim.
    """
    print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        print(f"retry after: {retry_after:.3f}s", file=sys.stderr)


def _cmd_serve(args) -> int:
    if args.port is not None:
        return _cmd_serve_net(args)
    requests = mixed_traffic(
        args.requests,
        unique_matrices=args.unique_matrices,
        sizes=tuple(args.sizes),
        deadline_s=args.deadline_ms * 1e-3 if args.deadline_ms else None,
        seed=args.seed,
    )
    config = _service_config(args)
    print(
        f"serving {len(requests)} mixed requests "
        f"({len({r.digest for r in requests})} distinct matrices) "
        f"on {config.workers} workers, max batch {config.max_batch_size}"
    )
    with SolverService(config) as service:
        tickets = [service.submit_request(request) for request in requests]
        results = [ticket.result() for ticket in tickets]
        metrics = service.metrics()
    print(metrics.table(title="service metrics"))
    if args.check:
        reference, _ = run_sequential(requests, config)
        identical = all(
            np.array_equal(a.x, b.x) for a, b in zip(reference, results)
        )
        print(f"bit-identical to sequential reference: {identical}")
        if not identical:
            return 1
    return 0


def _cmd_serve_net(args) -> int:
    """`repro serve --port N`: TCP front-end over process workers."""
    import time

    from repro.serve.net import NetClient, NetServer, NetServerConfig, QuotaPolicy

    quota = (
        QuotaPolicy(rate_per_s=args.quota_rps, burst=args.quota_burst)
        if args.quota_rps is not None
        else None
    )
    config = NetServerConfig(
        host=args.host, port=args.port, service=_service_config(args), quota=quota
    )
    with NetServer(config) as server:
        host, port = server.address
        print(
            f"listening on {host}:{port} "
            f"({config.service.workers} process workers"
            + (f", quota {quota.rate_per_s:g} req/s" if quota else "")
            + ")"
        )
        if args.requests < 1:
            # Serve until interrupted (the operational mode). SIGTERM —
            # what process supervisors send — shuts down as gracefully
            # as Ctrl-C.
            import signal

            def _interrupt(signum, frame):
                raise KeyboardInterrupt

            try:
                signal.signal(signal.SIGTERM, _interrupt)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("\nshutting down")
                return 0
        # Drive a loopback workload through the wire (the demo mode).
        requests = mixed_traffic(
            args.requests,
            unique_matrices=args.unique_matrices,
            sizes=tuple(args.sizes),
            deadline_s=args.deadline_ms * 1e-3 if args.deadline_ms else None,
            seed=args.seed,
        )
        with NetClient(host, port) as client:
            outcomes = drive_network(client, requests, max_rounds=3)
            metrics = client.metrics()
        failures = [o for o in outcomes if isinstance(o, Exception)]
        print(
            f"{len(outcomes) - len(failures)}/{len(outcomes)} requests ok "
            f"over the wire ({len(failures)} typed failures)"
        )
        print(metrics.table(title="service metrics (over the wire)"))
        if args.check:
            reference, _ = run_sequential(requests, config.service)
            identical = all(
                isinstance(outcome, Exception) or np.array_equal(ref.x, outcome.x)
                for ref, outcome in zip(reference, outcomes)
            )
            print(f"bit-identical to sequential reference: {identical}")
            if not identical or failures:
                return 1
    return 0


def _cmd_submit(args) -> int:
    matrix = MATRIX_FAMILIES[args.family](args.size, np.random.default_rng(args.seed))
    rhs = [random_vector(args.size, rng=args.seed + 1 + i) for i in range(args.rhs)]
    try:
        if args.connect is not None:
            results, metrics = _submit_over_wire(args, matrix, rhs)
        else:
            config = _service_config(args)
            with SolverService(config) as service:
                tickets = [
                    service.submit(matrix, b, seed=i) for i, b in enumerate(rhs)
                ]
                results = [ticket.result() for ticket in tickets]
                metrics = service.metrics()
    except ReproError as exc:
        _print_typed_error(exc)
        return 1
    if args.metrics_json:
        # Machine-readable mode: exactly one JSON document on stdout.
        print(metrics.as_json())
        return 0
    errors = [result.relative_error for result in results]
    print(f"solver:            {results[0].solver}")
    print(f"matrix:            {args.family} {args.size}x{args.size}")
    print(f"right-hand sides:  {args.rhs}")
    print(f"mean rel. error:   {float(np.mean(errors)):.3e}")
    print(f"worst rel. error:  {float(np.max(errors)):.3e}")
    print(metrics.table(title="service metrics"))
    return 0


def _submit_over_wire(args, matrix, rhs):
    """Submit the right-hand sides to a running ``repro serve --port`` server."""
    from repro.errors import ValidationError
    from repro.serve.net import NetClient

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValidationError(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        )
    deadline_ms = args.deadline_ms if args.deadline_ms else None
    with NetClient(host, int(port_text), tenant=args.tenant) as client:
        tickets = [
            client.submit(
                matrix,
                b,
                solver=args.solver,
                seed=i,
                deadline_s=deadline_ms * 1e-3 if deadline_ms else None,
            )
            for i, b in enumerate(rhs)
        ]
        results = [ticket.result(client.timeout_s) for ticket in tickets]
        return results, client.metrics()


def _cmd_report(args) -> int:
    from repro.analysis.reporting import write_report

    path = write_report(
        args.out, quick=args.quick, seed=args.seed, suites=args.suite
    )
    print(f"wrote {path}")
    return 0


def _cmd_check(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]()
    matrix = MATRIX_FAMILIES[args.family](args.size, np.random.default_rng(args.seed))
    report = assess_feasibility(
        matrix, config=hardware, max_array_size=args.max_array
    )
    print(
        f"feasibility: {'OK' if report.feasible else 'BLOCKED'} "
        f"(worst severity: {report.worst_severity})"
    )
    print(f"stability margin:   {report.stability_margin:.4g}")
    print(f"condition number:   {report.condition:.4g}")
    if report.predicted_error is not None:
        print(f"predicted error:    {report.predicted_error:.4g}")
    print(f"recommended stages: {report.recommended_stages}")
    print("\nfindings:")
    for finding in report.findings:
        print(f"  [{finding.severity:7s}] {finding.topic}: {finding.message}")
    return 0 if report.feasible else 1


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------


def _campaign_spec(args):
    import dataclasses

    from repro.campaigns import get_campaign

    spec = get_campaign(args.name, quick=not args.paper)
    if getattr(args, "backend", None):
        spec = dataclasses.replace(spec, backend=args.backend)
    return spec


def _campaign_store_root(args):
    from pathlib import Path

    if args.store is not None:
        return Path(args.store)
    return Path("campaign_runs") / args.name


def _cmd_campaign_list(args) -> int:
    from repro.campaigns import expand, get_campaign, list_campaigns

    print("Registered campaigns:")
    for name in list_campaigns(quick=not args.paper):
        spec = get_campaign(name, quick=not args.paper)
        print(
            f"  {name:24s} {len(expand(spec)):3d} units "
            f"({len(spec.variants)} variants x {len(spec.families)} families "
            f"x {len(spec.sizes)} sizes, {spec.trials} trials)  {spec.title}"
        )
    return 0


def _cmd_campaign_run(args) -> int:
    import os

    from repro.campaigns import RetryPolicy, run_campaign
    from repro.obs import tracer as obs_tracer

    if args.trace_dir is not None:
        # Environment propagation (like REPRO_CHAOS): the driver and
        # every pool worker pick it up via configure_from_env().
        os.environ[obs_tracer.TRACE_ENV] = args.trace_dir
    spec = _campaign_spec(args)
    root = _campaign_store_root(args)
    retry = RetryPolicy(max_attempts=args.max_attempts) if args.max_attempts else None

    def progress(unit, completed, total):
        print(f"  [{completed}/{total}] {unit.describe()}", flush=True)

    run = run_campaign(
        spec,
        root,
        workers=args.workers,
        max_units=args.max_units,
        start_method=args.start_method,
        progress=progress,
        retry=retry,
        requeue_quarantined=args.requeue_quarantined,
    )
    mode = "inline" if args.workers <= 1 else f"{args.workers} process workers"
    print(
        f"campaign {spec.name}: {run.completed_units} units executed, "
        f"{run.skipped_units} already complete, {run.remaining_units} remaining "
        f"({mode}, {run.elapsed_s:.2f}s) -> {root}"
    )
    if run.quarantined_units:
        print(
            f"quarantined {run.quarantined_units} poison unit(s); inspect with "
            "`repro campaign status`, requeue with --requeue-quarantined"
        )
    if not run.finished:
        print("campaign incomplete; rerun `repro campaign run` (or `resume`) to finish")
    return 0


def _cmd_campaign_status(args) -> int:
    import json

    from repro.campaigns import ArtifactStore, campaign_status

    spec = _campaign_spec(args)
    status = campaign_status(spec, ArtifactStore(_campaign_store_root(args)))
    if args.json:
        print(
            json.dumps(
                {
                    "name": spec.name,
                    "digest": spec.digest(),
                    "total_units": status.total_units,
                    "completed_units": status.completed_units,
                    "pending": [unit.key for unit in status.pending],
                    "quarantined": [unit.key for unit in status.quarantined],
                    "progress_percent": status.progress_percent,
                    "units_per_s": status.units_per_s,
                    "eta_s": status.eta_s,
                    "finished": status.finished,
                }
            )
        )
        return 0 if status.finished else 1
    print(
        f"campaign {spec.name} [{spec.digest()[:12]}]: "
        f"{status.completed_units}/{status.total_units} units complete"
    )
    progress = f"progress: {status.progress_percent:.1f}%"
    if status.units_per_s > 0.0:
        progress += f", {status.units_per_s:.2f} units/s"
    if status.eta_s is not None:
        progress += f", eta {status.eta_s:.1f}s compute"
    print(progress)
    for unit in status.pending:
        print(f"  pending: {unit.describe()}")
    for unit in status.quarantined:
        print(f"  quarantined: {unit.describe()}")
    return 0 if status.finished else 1


def _cmd_campaign_report(args) -> int:
    from pathlib import Path

    from repro.campaigns import (
        ArtifactStore,
        campaign_records,
        campaign_report,
        campaign_tables,
        records_to_campaign_csv,
    )

    spec = _campaign_spec(args)
    store = ArtifactStore(_campaign_store_root(args))
    # Aggregate the store once, render every requested output from it.
    grouped = campaign_records(spec, store, strict=not args.partial)
    # Artifacts first: a closed stdout (e.g. piping into head) must not
    # prevent the requested files from being written.
    written = []
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(campaign_report(spec, store, grouped=grouped))
        written.append(out)
    if args.csv:
        written.extend(records_to_campaign_csv(spec, store, args.csv, grouped=grouped))
    print(campaign_tables(spec, store, grouped=grouped))
    for path in written:
        print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------


def _cmd_trace(args) -> int:
    from repro.obs import report as obs_report

    if args.trace_command == "export":
        count = obs_report.export_spans(args.dir, args.out)
        print(f"wrote {count} spans -> {args.out}")
        return 0 if count else 1
    spans = obs_report.read_spans(args.dir)
    if not spans:
        print(f"no spans found under {args.dir}", file=sys.stderr)
        return 1
    if args.trace_command == "summary":
        print(obs_report.format_summary(spans))
    else:  # slowest
        for root in obs_report.slowest_traces(spans, limit=args.limit):
            print(obs_report.render_tree(root))
            print()
    return 0


def _cmd_campaign_diff(args) -> int:
    from repro.campaigns import ArtifactStore, store_diff

    diffs = store_diff(ArtifactStore(args.store_a), ArtifactStore(args.store_b))
    if not diffs:
        print("stores are bit-identical")
        return 0
    for line in diffs:
        print(line)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlockAMC (DATE 2024) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment suites").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one suite and print its figure's series")
    run.add_argument("suite", choices=list_suites())
    run.add_argument("--quick", action="store_true", help="CI-size sweep (default full)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv", type=str, default=None, help="write series to CSV")
    run.set_defaults(func=_cmd_run)

    costs = sub.add_parser("costs", help="print the Fig. 10 cost model")
    costs.add_argument("--size", type=int, default=512)
    costs.set_defaults(func=_cmd_costs)

    solve = sub.add_parser("solve", help="solve one random system and print telemetry")
    solve.add_argument("--size", type=int, default=64)
    solve.add_argument("--stages", type=int, default=1)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    solve.set_defaults(func=_cmd_solve)

    check = sub.add_parser(
        "check", help="assess AMC feasibility of a workload before solving"
    )
    check.add_argument("--size", type=int, default=64)
    check.add_argument("--family", choices=sorted(MATRIX_FAMILIES), default="wishart")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--max-array", type=int, default=256)
    check.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    check.set_defaults(func=_cmd_check)

    def add_service_args(parser):
        parser.add_argument("--workers", type=int, default=2)
        parser.add_argument("--max-batch", type=int, default=16)
        parser.add_argument(
            "--linger-ms", type=float, default=2.0,
            help="micro-batch linger window (milliseconds)",
        )
        parser.add_argument("--cache-capacity", type=int, default=32)
        parser.add_argument(
            "--solver", choices=sorted(SOLVER_KINDS), default="blockamc-1stage"
        )
        parser.add_argument(
            "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
        )
        parser.add_argument(
            "--backend", type=str, default=None,
            help="array backend / precision tier for the default hardware "
            "(numpy, numpy-f32, torch; default: the hardware's own tier)",
        )
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument(
            "--deadline-ms", type=float, default=None,
            help="per-request deadline (milliseconds); expired requests "
            "fail fast with DeadlineExceededError",
        )
        parser.add_argument(
            "--shed-ms", type=float, default=None,
            help="shed load when the estimated queue latency exceeds this "
            "(milliseconds); shed requests get OverloadedError",
        )
        parser.add_argument(
            "--fallback", choices=("none", "digital"), default="none",
            help="degradation ladder: answer analog solver failures with "
            "the digital reference solve (tagged degraded)",
        )
        parser.add_argument(
            "--trace-dir", type=str, default=None,
            help="enable repro.obs tracing; spans land as JSONL under this "
            "directory (inspect with `repro trace summary DIR`)",
        )

    serve = sub.add_parser(
        "serve",
        help="run a mixed-traffic workload through the repro.serve solver service",
    )
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--unique-matrices", type=int, default=6)
    serve.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 24, 32],
        help="matrix sizes in the traffic working set",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="also run the sequential reference and verify bit-identical results",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve over TCP with process workers (0 = ephemeral port); "
        "with --requests 0, serve until interrupted",
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="bind address for --port mode",
    )
    serve.add_argument(
        "--quota-rps", type=float, default=None,
        help="per-tenant token-bucket rate (requests/second; --port mode)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=8.0,
        help="per-tenant token-bucket burst size (--port mode)",
    )
    add_service_args(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one matrix (many right-hand sides) to the service"
    )
    submit.add_argument("--size", type=int, default=32)
    submit.add_argument("--family", choices=sorted(MATRIX_FAMILIES), default="wishart")
    submit.add_argument("--rhs", type=int, default=8, help="right-hand sides to submit")
    submit.add_argument(
        "--connect", type=str, default=None, metavar="HOST:PORT",
        help="submit over TCP to a running `repro serve --port` server "
        "instead of an in-process service",
    )
    submit.add_argument(
        "--tenant", type=str, default=None,
        help="tenant name for per-tenant quotas (--connect mode)",
    )
    submit.add_argument(
        "--metrics-json", action="store_true",
        help="print the service metrics snapshot as one JSON document "
        "instead of the human-readable summary",
    )
    add_service_args(submit)
    submit.set_defaults(func=_cmd_submit)

    report = sub.add_parser(
        "report", help="run all suites and write a markdown report"
    )
    report.add_argument("--out", type=str, default="repro_report.md")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--suite", action="append", default=None, help="restrict to named suite(s)"
    )
    report.set_defaults(func=_cmd_report)

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    from repro.campaigns import list_campaigns

    campaign = sub.add_parser(
        "campaign",
        help="declarative, resumable, multiprocess experiment campaigns",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_args(parser, with_name=True):
        if with_name:
            parser.add_argument("name", choices=list_campaigns())
            parser.add_argument(
                "--store", type=str, default=None,
                help="artifact store directory (default campaign_runs/<name>)",
            )
        parser.add_argument(
            "--paper", action="store_true",
            help="paper-scale grid (default is the quick CI grid)",
        )
        parser.add_argument(
            "--backend", type=str, default=None,
            help="array backend / precision tier for the whole grid "
            "(numpy, numpy-f32, torch); changes the campaign digest, so "
            "each tier gets its own store",
        )

    clist = campaign_sub.add_parser("list", help="list registered campaigns")
    add_campaign_args(clist, with_name=False)
    clist.set_defaults(func=_cmd_campaign_list)

    for verb, help_text in (
        ("run", "run a campaign (skips already-completed units)"),
        ("resume", "resume an interrupted campaign (alias of run)"),
    ):
        crun = campaign_sub.add_parser(verb, help=help_text)
        add_campaign_args(crun)
        crun.add_argument(
            "--workers", type=int, default=0,
            help="process workers (0/1 = inline, >=2 = multiprocess)",
        )
        crun.add_argument(
            "--max-units", type=int, default=None,
            help="stop after N units (controlled interruption; store stays resumable)",
        )
        crun.add_argument(
            "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
            help="multiprocessing start method (default: fork when available)",
        )
        crun.add_argument(
            "--max-attempts", type=int, default=None,
            help="retry failed/crashed units up to N attempts, then quarantine "
            "(default: first failure aborts the run)",
        )
        crun.add_argument(
            "--requeue-quarantined", action="store_true",
            help="clear quarantine records and retry poison units",
        )
        crun.add_argument(
            "--trace-dir", type=str, default=None,
            help="enable repro.obs tracing (exports REPRO_TRACE_DIR so "
            "pool workers trace their units too)",
        )
        crun.set_defaults(func=_cmd_campaign_run)

    cstatus = campaign_sub.add_parser(
        "status", help="show completed/pending units (exit 1 while incomplete)"
    )
    add_campaign_args(cstatus)
    cstatus.add_argument(
        "--json", action="store_true",
        help="print the status as one JSON document (same exit code)",
    )
    cstatus.set_defaults(func=_cmd_campaign_status)

    creport = campaign_sub.add_parser(
        "report", help="aggregate a campaign's artifacts into tables/markdown/CSV"
    )
    add_campaign_args(creport)
    creport.add_argument("--out", type=str, default=None, help="markdown report path")
    creport.add_argument("--csv", type=str, default=None, help="raw-records CSV base path")
    creport.add_argument(
        "--partial", action="store_true",
        help="aggregate whatever completed instead of requiring a finished campaign",
    )
    creport.set_defaults(func=_cmd_campaign_report)

    cdiff = campaign_sub.add_parser(
        "diff", help="compare two artifact stores bit for bit (exit 1 on differences)"
    )
    cdiff.add_argument("store_a")
    cdiff.add_argument("store_b")
    cdiff.set_defaults(func=_cmd_campaign_diff)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    trace = sub.add_parser(
        "trace", help="inspect repro.obs span dumps (from --trace-dir runs)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tsummary = trace_sub.add_parser(
        "summary", help="per-span-name latency table for a trace directory"
    )
    tsummary.add_argument("dir", help="trace directory (or one JSONL dump)")
    tsummary.set_defaults(func=_cmd_trace)

    tslowest = trace_sub.add_parser(
        "slowest", help="render the slowest trace trees with critical paths"
    )
    tslowest.add_argument("dir", help="trace directory (or one JSONL dump)")
    tslowest.add_argument(
        "--limit", type=int, default=5, help="how many traces to render"
    )
    tslowest.set_defaults(func=_cmd_trace)

    texport = trace_sub.add_parser(
        "export", help="merge per-process span files into one sorted JSONL"
    )
    texport.add_argument("dir", help="trace directory (or one JSONL dump)")
    texport.add_argument(
        "--out", type=str, default="trace_export.jsonl", help="output JSONL path"
    )
    texport.set_defaults(func=_cmd_trace)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
