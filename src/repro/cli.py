"""Command-line interface.

``python -m repro`` exposes the experiment suites so the paper's curves
can be regenerated without writing code:

    python -m repro list
    python -m repro run fig7-wishart --quick --csv out.csv
    python -m repro costs --size 512
    python -m repro solve --size 64 --hardware variation

Exit code is 0 on success; validation problems print to stderr and
return 2 (argparse convention).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials_batched
from repro.analysis.costmodel import ARCHITECTURES, savings_vs_original, solver_cost_breakdown
from repro.analysis.export import records_to_csv, sweep_to_csv
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.feasibility import assess_feasibility
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.serve import SOLVER_KINDS, ServiceConfig, SolverService, run_sequential
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.suites import get_suite, list_suites
from repro.workloads.traffic import TRAFFIC_FAMILIES, mixed_traffic

#: One matrix-family table for the whole surface: `repro check`,
#: `repro submit`, and traffic generation stay in sync by construction.
MATRIX_FAMILIES = TRAFFIC_FAMILIES

HARDWARE_FACTORIES = {
    "ideal": HardwareConfig.ideal,
    "ideal-mapping": HardwareConfig.paper_ideal_mapping,
    "variation": HardwareConfig.paper_variation,
    "interconnect": HardwareConfig.paper_interconnect,
}


def _solver_factories(hardware_factory):
    return {
        "original-amc": lambda: OriginalAMCSolver(hardware_factory()),
        "blockamc-1stage": lambda: BlockAMCSolver(hardware_factory()),
        "blockamc-2stage": lambda: MultiStageSolver(hardware_factory(), stages=2),
    }


def _cmd_list(_args) -> int:
    print("Available suites (paper figure experiments):")
    for name in list_suites():
        suite = get_suite(name)
        print(f"  {name:20s} {suite.figure}")
    return 0


def _cmd_run(args) -> int:
    suite = get_suite(args.suite, quick=args.quick)
    # The trial-batched engine produces records identical to the
    # sequential run_trials (bit-identical random draws; enforced by
    # benchmarks/bench_perf_engine.py) at a fraction of the wall clock.
    solvers = {
        name: factory()
        for name, factory in _solver_factories(suite.hardware_factory).items()
    }
    records = run_trials_batched(
        solvers, suite.matrix_factory, suite.sizes, suite.trials, seed=args.seed
    )
    table = accuracy_sweep(records)
    solvers = sorted(table)
    rows = [
        [size] + [table[name][size][0] for name in solvers] for size in suite.sizes
    ]
    print(
        format_table(
            ["size"] + solvers,
            rows,
            title=f"{suite.name} ({suite.figure}) — mean relative error, "
            f"{suite.trials} trials/size",
        )
    )
    if args.csv:
        sweep_to_csv(table, args.csv)
        records_to_csv(records, str(args.csv) + ".raw.csv")
        print(f"\nwrote {args.csv} and {args.csv}.raw.csv")
    return 0


def _cmd_costs(args) -> int:
    rows = []
    for arch in ARCHITECTURES:
        breakdown = solver_cost_breakdown(arch, args.size)
        rows.append([arch, breakdown.total_area_mm2, breakdown.total_power_w * 1e3])
    print(
        format_table(
            ["solver", "area mm^2", "power mW"],
            rows,
            title=f"Fig. 10 cost model at n = {args.size}",
        )
    )
    savings = savings_vs_original(args.size)
    for arch, values in savings.items():
        print(
            f"{arch}: saves {values['area']*100:.1f}% area, "
            f"{values['power']*100:.1f}% power vs original AMC"
        )
    return 0


def _cmd_solve(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]
    matrix = wishart_matrix(args.size, rng=args.seed)
    b = random_vector(args.size, rng=args.seed + 1)
    rng = np.random.default_rng(args.seed + 2)
    solver = (
        MultiStageSolver(hardware(), stages=args.stages)
        if args.stages > 1
        else BlockAMCSolver(hardware())
    )
    result = solver.solve(matrix, b, rng=rng)
    print(f"solver:          {result.solver}")
    print(f"size:            {result.size}")
    print(f"relative error:  {result.relative_error:.3e}")
    print(f"analog time:     {result.analog_time_s*1e6:.3f} us")
    print(f"operations:      {result.operation_counts}")
    return 0


def _service_config(args) -> ServiceConfig:
    return ServiceConfig(
        workers=args.workers,
        max_batch_size=args.max_batch,
        max_linger_s=args.linger_ms * 1e-3,
        default_solver=args.solver,
        default_hardware=HARDWARE_FACTORIES[args.hardware](),
        cache_capacity=args.cache_capacity,
    )


def _cmd_serve(args) -> int:
    requests = mixed_traffic(
        args.requests,
        unique_matrices=args.unique_matrices,
        sizes=tuple(args.sizes),
        seed=args.seed,
    )
    config = _service_config(args)
    print(
        f"serving {len(requests)} mixed requests "
        f"({len({r.digest for r in requests})} distinct matrices) "
        f"on {config.workers} workers, max batch {config.max_batch_size}"
    )
    with SolverService(config) as service:
        tickets = [service.submit_request(request) for request in requests]
        results = [ticket.result() for ticket in tickets]
        metrics = service.metrics()
    print(metrics.table(title="service metrics"))
    if args.check:
        reference, _ = run_sequential(requests, config)
        identical = all(
            np.array_equal(a.x, b.x) for a, b in zip(reference, results)
        )
        print(f"bit-identical to sequential reference: {identical}")
        if not identical:
            return 1
    return 0


def _cmd_submit(args) -> int:
    matrix = MATRIX_FAMILIES[args.family](args.size, np.random.default_rng(args.seed))
    config = _service_config(args)
    with SolverService(config) as service:
        tickets = [
            service.submit(matrix, random_vector(args.size, rng=args.seed + 1 + i), seed=i)
            for i in range(args.rhs)
        ]
        results = [ticket.result() for ticket in tickets]
        metrics = service.metrics()
    errors = [result.relative_error for result in results]
    print(f"solver:            {results[0].solver}")
    print(f"matrix:            {args.family} {args.size}x{args.size}")
    print(f"right-hand sides:  {args.rhs}")
    print(f"mean rel. error:   {float(np.mean(errors)):.3e}")
    print(f"worst rel. error:  {float(np.max(errors)):.3e}")
    print(metrics.table(title="service metrics"))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    path = write_report(
        args.out, quick=args.quick, seed=args.seed, suites=args.suite
    )
    print(f"wrote {path}")
    return 0


def _cmd_check(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]()
    matrix = MATRIX_FAMILIES[args.family](args.size, np.random.default_rng(args.seed))
    report = assess_feasibility(
        matrix, config=hardware, max_array_size=args.max_array
    )
    print(
        f"feasibility: {'OK' if report.feasible else 'BLOCKED'} "
        f"(worst severity: {report.worst_severity})"
    )
    print(f"stability margin:   {report.stability_margin:.4g}")
    print(f"condition number:   {report.condition:.4g}")
    if report.predicted_error is not None:
        print(f"predicted error:    {report.predicted_error:.4g}")
    print(f"recommended stages: {report.recommended_stages}")
    print("\nfindings:")
    for finding in report.findings:
        print(f"  [{finding.severity:7s}] {finding.topic}: {finding.message}")
    return 0 if report.feasible else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlockAMC (DATE 2024) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment suites").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one suite and print its figure's series")
    run.add_argument("suite", choices=list_suites())
    run.add_argument("--quick", action="store_true", help="CI-size sweep (default full)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv", type=str, default=None, help="write series to CSV")
    run.set_defaults(func=_cmd_run)

    costs = sub.add_parser("costs", help="print the Fig. 10 cost model")
    costs.add_argument("--size", type=int, default=512)
    costs.set_defaults(func=_cmd_costs)

    solve = sub.add_parser("solve", help="solve one random system and print telemetry")
    solve.add_argument("--size", type=int, default=64)
    solve.add_argument("--stages", type=int, default=1)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    solve.set_defaults(func=_cmd_solve)

    check = sub.add_parser(
        "check", help="assess AMC feasibility of a workload before solving"
    )
    check.add_argument("--size", type=int, default=64)
    check.add_argument("--family", choices=sorted(MATRIX_FAMILIES), default="wishart")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--max-array", type=int, default=256)
    check.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    check.set_defaults(func=_cmd_check)

    def add_service_args(parser):
        parser.add_argument("--workers", type=int, default=2)
        parser.add_argument("--max-batch", type=int, default=16)
        parser.add_argument(
            "--linger-ms", type=float, default=2.0,
            help="micro-batch linger window (milliseconds)",
        )
        parser.add_argument("--cache-capacity", type=int, default=32)
        parser.add_argument(
            "--solver", choices=sorted(SOLVER_KINDS), default="blockamc-1stage"
        )
        parser.add_argument(
            "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
        )
        parser.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run a mixed-traffic workload through the repro.serve solver service",
    )
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--unique-matrices", type=int, default=6)
    serve.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 24, 32],
        help="matrix sizes in the traffic working set",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="also run the sequential reference and verify bit-identical results",
    )
    add_service_args(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one matrix (many right-hand sides) to the service"
    )
    submit.add_argument("--size", type=int, default=32)
    submit.add_argument("--family", choices=sorted(MATRIX_FAMILIES), default="wishart")
    submit.add_argument("--rhs", type=int, default=8, help="right-hand sides to submit")
    add_service_args(submit)
    submit.set_defaults(func=_cmd_submit)

    report = sub.add_parser(
        "report", help="run all suites and write a markdown report"
    )
    report.add_argument("--out", type=str, default="repro_report.md")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--suite", action="append", default=None, help="restrict to named suite(s)"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
