"""Command-line interface.

``python -m repro`` exposes the experiment suites so the paper's curves
can be regenerated without writing code:

    python -m repro list
    python -m repro run fig7-wishart --quick --csv out.csv
    python -m repro costs --size 512
    python -m repro solve --size 64 --hardware variation

Exit code is 0 on success; validation problems print to stderr and
return 2 (argparse convention).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.analysis.costmodel import ARCHITECTURES, savings_vs_original, solver_cost_breakdown
from repro.analysis.export import records_to_csv, sweep_to_csv
from repro.analysis.reporting import format_table
from repro.core.blockamc import BlockAMCSolver
from repro.core.feasibility import assess_feasibility
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix
from repro.workloads.pde import poisson_1d
from repro.workloads.suites import get_suite, list_suites

MATRIX_FAMILIES = {
    "wishart": lambda n, rng: wishart_matrix(n, rng),
    "toeplitz": lambda n, rng: toeplitz_matrix(n, rng),
    "poisson": lambda n, rng: poisson_1d(n),
}

HARDWARE_FACTORIES = {
    "ideal": HardwareConfig.ideal,
    "ideal-mapping": HardwareConfig.paper_ideal_mapping,
    "variation": HardwareConfig.paper_variation,
    "interconnect": HardwareConfig.paper_interconnect,
}


def _solver_factories(hardware_factory):
    return {
        "original-amc": lambda: OriginalAMCSolver(hardware_factory()),
        "blockamc-1stage": lambda: BlockAMCSolver(hardware_factory()),
        "blockamc-2stage": lambda: MultiStageSolver(hardware_factory(), stages=2),
    }


def _cmd_list(_args) -> int:
    print("Available suites (paper figure experiments):")
    for name in list_suites():
        suite = get_suite(name)
        print(f"  {name:20s} {suite.figure}")
    return 0


def _cmd_run(args) -> int:
    suite = get_suite(args.suite, quick=args.quick)
    factories = _solver_factories(suite.hardware_factory)
    records = run_trials(
        factories, suite.matrix_factory, suite.sizes, suite.trials, seed=args.seed
    )
    table = accuracy_sweep(records)
    solvers = sorted(table)
    rows = [
        [size] + [table[name][size][0] for name in solvers] for size in suite.sizes
    ]
    print(
        format_table(
            ["size"] + solvers,
            rows,
            title=f"{suite.name} ({suite.figure}) — mean relative error, "
            f"{suite.trials} trials/size",
        )
    )
    if args.csv:
        sweep_to_csv(table, args.csv)
        records_to_csv(records, str(args.csv) + ".raw.csv")
        print(f"\nwrote {args.csv} and {args.csv}.raw.csv")
    return 0


def _cmd_costs(args) -> int:
    rows = []
    for arch in ARCHITECTURES:
        breakdown = solver_cost_breakdown(arch, args.size)
        rows.append([arch, breakdown.total_area_mm2, breakdown.total_power_w * 1e3])
    print(
        format_table(
            ["solver", "area mm^2", "power mW"],
            rows,
            title=f"Fig. 10 cost model at n = {args.size}",
        )
    )
    savings = savings_vs_original(args.size)
    for arch, values in savings.items():
        print(
            f"{arch}: saves {values['area']*100:.1f}% area, "
            f"{values['power']*100:.1f}% power vs original AMC"
        )
    return 0


def _cmd_solve(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]
    matrix = wishart_matrix(args.size, rng=args.seed)
    b = random_vector(args.size, rng=args.seed + 1)
    rng = np.random.default_rng(args.seed + 2)
    solver = (
        MultiStageSolver(hardware(), stages=args.stages)
        if args.stages > 1
        else BlockAMCSolver(hardware())
    )
    result = solver.solve(matrix, b, rng=rng)
    print(f"solver:          {result.solver}")
    print(f"size:            {result.size}")
    print(f"relative error:  {result.relative_error:.3e}")
    print(f"analog time:     {result.analog_time_s*1e6:.3f} us")
    print(f"operations:      {result.operation_counts}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    path = write_report(
        args.out, quick=args.quick, seed=args.seed, suites=args.suite
    )
    print(f"wrote {path}")
    return 0


def _cmd_check(args) -> int:
    hardware = HARDWARE_FACTORIES[args.hardware]()
    matrix = MATRIX_FAMILIES[args.family](args.size, np.random.default_rng(args.seed))
    report = assess_feasibility(
        matrix, config=hardware, max_array_size=args.max_array
    )
    print(
        f"feasibility: {'OK' if report.feasible else 'BLOCKED'} "
        f"(worst severity: {report.worst_severity})"
    )
    print(f"stability margin:   {report.stability_margin:.4g}")
    print(f"condition number:   {report.condition:.4g}")
    if report.predicted_error is not None:
        print(f"predicted error:    {report.predicted_error:.4g}")
    print(f"recommended stages: {report.recommended_stages}")
    print("\nfindings:")
    for finding in report.findings:
        print(f"  [{finding.severity:7s}] {finding.topic}: {finding.message}")
    return 0 if report.feasible else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlockAMC (DATE 2024) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment suites").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one suite and print its figure's series")
    run.add_argument("suite", choices=list_suites())
    run.add_argument("--quick", action="store_true", help="CI-size sweep (default full)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv", type=str, default=None, help="write series to CSV")
    run.set_defaults(func=_cmd_run)

    costs = sub.add_parser("costs", help="print the Fig. 10 cost model")
    costs.add_argument("--size", type=int, default=512)
    costs.set_defaults(func=_cmd_costs)

    solve = sub.add_parser("solve", help="solve one random system and print telemetry")
    solve.add_argument("--size", type=int, default=64)
    solve.add_argument("--stages", type=int, default=1)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    solve.set_defaults(func=_cmd_solve)

    check = sub.add_parser(
        "check", help="assess AMC feasibility of a workload before solving"
    )
    check.add_argument("--size", type=int, default=64)
    check.add_argument("--family", choices=sorted(MATRIX_FAMILIES), default="wishart")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--max-array", type=int, default=256)
    check.add_argument(
        "--hardware", choices=sorted(HARDWARE_FACTORIES), default="variation"
    )
    check.set_defaults(func=_cmd_check)

    report = sub.add_parser(
        "report", help="run all suites and write a markdown report"
    )
    report.add_argument("--out", type=str, default="repro_report.md")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--suite", action="append", default=None, help="restrict to named suite(s)"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
