"""Campaign execution: unit evaluation and the multiprocess shard runner.

:func:`execute_unit` evaluates one work unit against the AMC engines:

- ``mode="trials"`` drives
  :func:`repro.analysis.accuracy.run_trials_batched` — the whole cell's
  Monte-Carlo stack runs as batched linalg, and the seed stream is
  positioned with :func:`repro.campaigns.spec.unit_seed_sequence` so
  records are bit-identical to the legacy sequential sweeps;
- ``mode="rhs"`` prepares (or reuses) a programmed solver through the
  worker's :class:`~repro.serve.cache.PreparedSolverCache` and runs all
  right-hand sides through the multi-RHS kernel with **lean** results.

:func:`run_campaign` schedules pending units either inline
(``workers <= 1``) or on a :class:`concurrent.futures.ProcessPoolExecutor`.
Each worker process writes its own artifacts (atomic, content-addressed)
directly to the store, so killing the driver — or the whole process tree
— loses at most the units in flight; a re-run resumes exactly where the
campaign stopped and completed units are never recomputed. Because every
unit's randomness derives from its position alone, the finished store is
bit-identical for any worker count, scheduling order, or kill/resume
history (``benchmarks/bench_campaigns.py`` and the CI ``campaign-smoke``
job verify this).

Fault tolerance: pass a :class:`RetryPolicy` and worker crashes
(``BrokenProcessPool`` — a SIGKILLed or segfaulted worker) re-dispatch
the unfinished units on a fresh pool after a backoff, while units that
keep *raising* are retried up to ``max_attempts`` and then quarantined
(recorded in the store, surfaced by ``repro campaign status``, requeued
with ``--requeue-quarantined``). Retried units recompute bit-identically
— their seeds derive from unit position, not attempt count. Without a
policy the first failure propagates, as before.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass

import numpy as np

from repro.campaigns.spec import CampaignSpec, WorkUnit, expand, unit_seed_sequence
from repro.campaigns.store import ArtifactStore
from repro.errors import CampaignError
from repro.obs import tracer as obs

__all__ = [
    "CampaignRun",
    "CampaignStatus",
    "RetryPolicy",
    "campaign_status",
    "execute_unit",
    "run_campaign",
]


# ----------------------------------------------------------------------
# unit execution
# ----------------------------------------------------------------------

#: Per-process prepared-solver cache for ``mode="rhs"`` units. Workers
#: are long-lived (one per pool), so programmed macros persist across
#: the units a worker executes.
_WORKER_CACHE = None

#: Prepared solvers retained per worker process.
_WORKER_CACHE_CAPACITY = 16


def _worker_cache():
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from repro.serve.cache import PreparedSolverCache

        _WORKER_CACHE = PreparedSolverCache(_WORKER_CACHE_CAPACITY)
    return _WORKER_CACHE


def execute_unit(spec: CampaignSpec, unit: WorkUnit) -> tuple[dict, dict]:
    """Evaluate one work unit; returns ``(arrays, meta)`` for the store.

    Arrays (all shaped ``(len(spec.solvers), spec.trials)``, solver-major
    in ``spec.solvers`` order):

    - ``relative_error`` — paper Eq. 6 error per trial;
    - ``saturated`` — whether any analog op clipped;
    - ``analog_time_s`` — summed settling time.
    """
    start = time.perf_counter()
    hardware = spec.resolve_hardware(unit.variant_index)
    if spec.mode == "trials":
        arrays = _execute_trials_unit(spec, unit, hardware)
    else:
        arrays = _execute_rhs_unit(spec, unit, hardware)
    meta = {
        "unit": {
            "key": unit.key,
            "variant": unit.variant_label,
            "family": unit.family,
            "size": unit.size,
            "size_index": unit.size_index,
            "solvers": list(spec.solvers),
            "trials": spec.trials,
            "mode": spec.mode,
            "spec_digest": spec.digest(),
        },
        "runtime": {
            "elapsed_s": time.perf_counter() - start,
            "pid": os.getpid(),
        },
    }
    return arrays, meta


def _execute_trials_unit(spec, unit, hardware):
    from repro.analysis.accuracy import run_trials_batched
    from repro.serve.cache import SOLVER_KINDS
    from repro.workloads.traffic import TRAFFIC_FAMILIES

    solvers = {name: SOLVER_KINDS[name](hardware) for name in spec.solvers}
    records = run_trials_batched(
        solvers,
        TRAFFIC_FAMILIES[unit.family],
        [unit.size],
        spec.trials,
        seed=unit_seed_sequence(spec.seed, unit.size_index, spec.trials),
    )
    index = {name: i for i, name in enumerate(spec.solvers)}
    rel = np.empty((len(spec.solvers), spec.trials))
    sat = np.zeros((len(spec.solvers), spec.trials), dtype=bool)
    elapsed = np.empty((len(spec.solvers), spec.trials))
    for record in records:
        i = index[record.solver]
        rel[i, record.trial] = record.relative_error
        sat[i, record.trial] = record.saturated
        elapsed[i, record.trial] = record.analog_time_s
    return {"relative_error": rel, "saturated": sat, "analog_time_s": elapsed}


def _execute_rhs_unit(spec, unit, hardware):
    from repro.serve.batching import execute_batch
    from repro.serve.cache import PreparedKey, prepare_entry
    from repro.serve.requests import matrix_digest
    from repro.workloads.matrices import random_vector
    from repro.workloads.traffic import TRAFFIC_FAMILIES

    # Unit-key-derived randomness: a pure function of the cell
    # coordinates, independent of execution order.
    seq = np.random.SeedSequence(
        spec.seed,
        spawn_key=(unit.variant_index, unit.family_index, unit.size_index),
    )
    children = seq.spawn(1 + spec.trials)
    matrix = TRAFFIC_FAMILIES[unit.family](
        unit.size, np.random.default_rng(children[0])
    )
    bs = [
        random_vector(unit.size, np.random.default_rng(children[1 + t]))
        for t in range(spec.trials)
    ]
    digest = matrix_digest(matrix)
    cache = _worker_cache()

    rel = np.empty((len(spec.solvers), spec.trials))
    sat = np.zeros((len(spec.solvers), spec.trials), dtype=bool)
    elapsed = np.empty((len(spec.solvers), spec.trials))
    for i, solver in enumerate(spec.solvers):
        key = PreparedKey(digest, hardware.cache_key(), solver, spec.seed)
        entry = cache.get_or_prepare(
            key, lambda key=key: prepare_entry(key, matrix, hardware)
        )
        results = execute_batch(entry, bs, list(range(spec.trials)), lean=True)
        for t, result in enumerate(results):
            rel[i, t] = result.relative_error
            sat[i, t] = result.saturated
            elapsed[i, t] = result.analog_time_s
    return {"relative_error": rel, "saturated": sat, "analog_time_s": elapsed}


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for campaign unit failures.

    ``max_attempts`` bounds how often one unit is dispatched before it
    is quarantined; ``backoff(attempt)`` is the pause before re-dispatch
    — ``backoff_s * backoff_multiplier**(attempt - 1)``, capped at
    ``max_backoff_s``. Worker crashes (``BrokenProcessPool``) cannot be
    attributed to a single unit, so a crash charges one attempt to every
    unit that was unfinished in the broken pool's generation.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0.0:
            raise CampaignError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise CampaignError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.max_backoff_s < 0.0:
            raise CampaignError(f"max_backoff_s must be >= 0, got {self.max_backoff_s}")

    def backoff(self, attempt: int) -> float:
        """Pause (seconds) before dispatching attempt ``attempt + 1``."""
        return min(
            self.max_backoff_s,
            self.backoff_s * self.backoff_multiplier ** max(0, attempt - 1),
        )


@dataclass(frozen=True)
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    total_units: int
    skipped_units: int
    completed_units: int
    remaining_units: int
    elapsed_s: float
    quarantined_units: int = 0

    @property
    def finished(self) -> bool:
        """True when every unit of the campaign has an artifact."""
        return self.remaining_units == 0


@dataclass(frozen=True)
class CampaignStatus:
    """Completion state of a store against a spec.

    ``completed_elapsed_s`` sums the per-unit compute time recorded in
    the completed units' runtime sidecars — it is aggregate *compute*
    time, not wall time (a multiprocess run overlaps units), which makes
    the derived rate and ETA scheduling-independent: they describe the
    workload, and dividing the ETA by the worker count estimates the
    wall clock of a resume.
    """

    total_units: int
    completed_units: int
    pending: tuple
    quarantined: tuple = ()
    completed_elapsed_s: float = 0.0

    @property
    def finished(self) -> bool:
        return not self.pending and not self.quarantined

    @property
    def progress_percent(self) -> float:
        """Completed fraction of the campaign, in percent."""
        if self.total_units == 0:
            return 100.0
        return 100.0 * self.completed_units / self.total_units

    @property
    def units_per_s(self) -> float:
        """Completed units per second of compute (0 until data exists)."""
        if self.completed_elapsed_s <= 0.0:
            return 0.0
        return self.completed_units / self.completed_elapsed_s

    @property
    def eta_s(self) -> float | None:
        """Estimated compute seconds to finish the remaining units.

        Remaining (pending + quarantined) units × the mean completed
        unit time; ``None`` until at least one unit completed (no basis
        for an estimate).
        """
        if self.completed_units == 0 or self.completed_elapsed_s <= 0.0:
            return None
        remaining = len(self.pending) + len(self.quarantined)
        return remaining * (self.completed_elapsed_s / self.completed_units)


def campaign_status(spec: CampaignSpec, store: ArtifactStore) -> CampaignStatus:
    """How much of ``spec`` the store has completed.

    Quarantined units are reported separately from pending: the runner
    will not reschedule them until the quarantine is cleared, but the
    campaign is not finished while they exist.

    A pure store rescan — no runner state: progress, rate, and ETA all
    derive from the completed units' sidecars
    (:meth:`~repro.campaigns.store.ArtifactStore.read_meta`, which never
    loads the array payloads).

    Raises :class:`CampaignError` when the store's manifest belongs to a
    different campaign (otherwise a scale or ``--store`` mix-up would
    read as "everything pending" instead of the actual mismatch).
    """
    store.verify_manifest(spec)
    units = expand(spec)
    done = store.completed_keys()
    poisoned = store.quarantined_keys() - done
    pending = tuple(u for u in units if u.key not in done and u.key not in poisoned)
    quarantined = tuple(u for u in units if u.key in poisoned)
    elapsed = 0.0
    for unit in units:
        if unit.key in done:
            meta = store.read_meta(unit.key)
            if meta is not None:
                elapsed += float(meta.get("runtime", {}).get("elapsed_s", 0.0))
    return CampaignStatus(
        total_units=len(units),
        completed_units=sum(1 for u in units if u.key in done),
        pending=pending,
        quarantined=quarantined,
        completed_elapsed_s=elapsed,
    )


def _run_unit_to_store(
    spec: CampaignSpec, unit: WorkUnit, root: str, trace: dict | None = None
) -> str:
    """Worker entry point: execute one unit and persist its artifact.

    When a :class:`~repro.testing.chaos.ChaosPlan` is exported via the
    ``REPRO_CHAOS`` environment variable, faults inject *here*: a
    SIGKILL lands mid-unit (after compute, before commit — the retried
    unit recomputes bit-identically from its position-derived seeds) and
    a torn write leaves exactly the half-written state the store's
    sidecar-last commit protocol must treat as incomplete.

    ``REPRO_TRACE_DIR`` enables a ``campaign.unit`` span per unit
    (parented under the driver's ``campaign.run`` via ``trace``), the
    same env-propagation path chaos uses; span seeds never touch the
    unit's position-derived randomness, so records stay bit-identical.
    """
    tracer = obs.configure_from_env()
    chaos = _campaign_chaos()
    span = obs.NOOP_SPAN
    if tracer.enabled:
        span = tracer.start_span(
            "campaign.unit",
            trace=trace,
            attributes={
                "key": unit.key,
                "variant": unit.variant_label,
                "family": unit.family,
                "size": unit.size,
                "mode": spec.mode,
            },
        )
    with span:
        arrays, meta = execute_unit(spec, unit)
        store = ArtifactStore(root)
        if chaos is not None:
            chaos.maybe_kill_worker(unit.key)
            chaos.maybe_tear_write(store, unit.key, arrays)
        store.write_unit(unit.key, arrays, meta)
    return unit.key


def _campaign_chaos():
    if not os.environ.get("REPRO_CHAOS"):
        return None
    from repro.testing.chaos import plan_from_env

    return plan_from_env()


def _quarantine_meta(unit: WorkUnit, attempts: int, error) -> dict:
    return {
        "key": unit.key,
        "variant": unit.variant_label,
        "family": unit.family,
        "size": unit.size,
        "attempts": attempts,
        "error": "worker crash (BrokenProcessPool)" if error is None else repr(error),
    }


def _mp_context(start_method: str | None):
    import multiprocessing
    import sys

    if start_method is None:
        # Prefer fork only on Linux (cheap worker start, inherited
        # imports). macOS has fork available but CPython made spawn the
        # default there for a reason — forking after Accelerate/ObjC
        # initialization can crash — so everywhere else we take the
        # platform's default context.
        if sys.platform.startswith("linux") and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            start_method = "fork"
        else:
            return multiprocessing.get_context()
    return multiprocessing.get_context(start_method)


def _run_pool_generation(
    spec: CampaignSpec, root: str, units, workers: int, mp_context, trace=None
) -> tuple[list, bool]:
    """Run one pool over ``units``; returns ``(failed, crashed)``.

    ``failed`` holds ``(unit, exception)`` pairs for failures the pool
    could attribute to a unit (the unit's own raise); ``crashed`` is
    True when the pool broke (a worker died — SIGKILL, segfault), in
    which case the unfinished units are unattributable and the caller
    must consult the store to see what actually committed.
    """
    failed: list = []
    crashed = False
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=mp_context) as pool:
            futures = {
                pool.submit(_run_unit_to_store, spec, unit, root, trace): unit
                for unit in units
            }
            for future in as_completed(futures):
                exc = future.exception()
                if exc is None:
                    continue
                if isinstance(exc, BrokenExecutor):
                    crashed = True
                else:
                    failed.append((futures[future], exc))
    except BrokenExecutor:
        crashed = True
    return failed, crashed


def run_campaign(
    spec: CampaignSpec,
    store_root,
    *,
    workers: int = 0,
    max_units: int | None = None,
    start_method: str | None = None,
    progress=None,
    retry: RetryPolicy | None = None,
    requeue_quarantined: bool = False,
) -> CampaignRun:
    """Run (or resume) a campaign against an artifact store.

    Parameters
    ----------
    spec:
        The campaign. The store's manifest pins its digest; resuming
        with a different spec raises :class:`CampaignError`.
    store_root:
        Artifact store directory (created if missing).
    workers:
        ``0`` or ``1`` executes inline (no subprocesses, useful for
        tests and tiny sweeps); ``>= 2`` runs a
        :class:`ProcessPoolExecutor` with that many workers, each
        writing artifacts directly so driver death loses nothing.
    max_units:
        Stop after completing this many pending units (a controlled
        interruption — the store remains resumable). ``None`` runs all.
    start_method:
        Multiprocessing start method; default prefers ``fork`` (cheap
        worker start, inherited imports) and falls back to ``spawn``.
    progress:
        Optional ``progress(unit, completed, total)`` callback invoked
        after each unit completes (inline and pooled).
    retry:
        ``None`` (default) propagates the first failure, exactly as
        before. A :class:`RetryPolicy` makes the run fault-tolerant:
        worker crashes (``BrokenProcessPool``) re-dispatch unfinished
        units on a fresh pool after a backoff, unit-attributable
        failures retry up to ``max_attempts``, and units still failing
        then are quarantined in the store instead of aborting the
        campaign. Retried units are bit-identical to first-try units —
        their seeds derive from position, not attempt count.
    requeue_quarantined:
        Clear existing quarantine records first, putting those units
        back in the schedule.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0, got {workers}")
    if max_units is not None and max_units < 1:
        raise CampaignError(f"max_units must be >= 1, got {max_units}")
    store = ArtifactStore(store_root)
    store.write_manifest(spec)
    if os.environ.get("REPRO_CHAOS"):
        # Chaos kill decisions must never take down the campaign driver
        # itself (inline runs execute units in this very process).
        os.environ["REPRO_CHAOS_DRIVER_PID"] = str(os.getpid())
    if requeue_quarantined:
        store.clear_quarantine()
    units = expand(spec)
    done = store.completed_keys()
    poisoned = store.quarantined_keys() - done
    pending = [u for u in units if u.key not in done and u.key not in poisoned]
    skipped = len(units) - len(pending) - len(poisoned)
    budget = pending if max_units is None else pending[:max_units]
    start = time.perf_counter()
    completed = 0
    quarantined = 0

    tracer = obs.configure_from_env()
    run_span = obs.NOOP_SPAN
    if tracer.enabled:
        run_span = tracer.start_span(
            "campaign.run",
            attributes={
                "name": spec.name,
                "digest": spec.digest()[:12],
                "units": len(units),
                "pending": len(budget),
                "workers": workers,
            },
        )
    run_trace = run_span.context() if run_span.enabled else None

    if len(budget) == 0:
        pass
    elif workers <= 1:
        for unit in budget:
            attempt = 0
            while True:
                attempt += 1
                try:
                    _run_unit_to_store(spec, unit, str(store.root), run_trace)
                except Exception as exc:
                    if retry is None:
                        raise
                    if attempt >= retry.max_attempts:
                        store.quarantine_unit(
                            unit.key, _quarantine_meta(unit, attempt, exc)
                        )
                        quarantined += 1
                        break
                    time.sleep(retry.backoff(attempt))
                else:
                    completed += 1
                    if progress is not None:
                        progress(unit, skipped + completed, len(units))
                    break
    elif retry is None:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context(start_method)
        ) as pool:
            futures = {
                pool.submit(
                    _run_unit_to_store, spec, unit, str(store.root), run_trace
                ): unit
                for unit in budget
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    future.result()  # propagate worker failures
                    completed += 1
                    if progress is not None:
                        progress(futures[future], skipped + completed, len(units))
    else:
        todo = {unit.key: unit for unit in budget}
        attempts = {unit.key: 0 for unit in budget}
        order = {unit.key: index for index, unit in enumerate(budget)}
        crash_round = 0
        while todo:
            # Fewest-attempts first: fresh units are not starved behind a
            # unit that keeps burning retries.
            generation = sorted(
                todo.values(), key=lambda u: (attempts[u.key], order[u.key])
            )
            failed, crashed = _run_pool_generation(
                spec,
                str(store.root),
                generation,
                workers,
                _mp_context(start_method),
                run_trace,
            )
            # A broken pool reports BrokenProcessPool even for units whose
            # workers committed the artifact before dying — trust the
            # store, not the futures.
            committed = store.completed_keys()
            for key in [k for k in todo if k in committed]:
                unit = todo.pop(key)
                completed += 1
                if progress is not None:
                    progress(unit, skipped + completed, len(units))
            failed_keys = set()
            for unit, exc in failed:
                if unit.key not in todo:
                    continue
                failed_keys.add(unit.key)
                attempts[unit.key] += 1
                if attempts[unit.key] >= retry.max_attempts:
                    todo.pop(unit.key)
                    store.quarantine_unit(
                        unit.key, _quarantine_meta(unit, attempts[unit.key], exc)
                    )
                    quarantined += 1
            if crashed:
                # Unattributable: charge one attempt to every unit that was
                # unfinished in the broken generation (minus those already
                # charged for their own raise).
                for key in list(todo):
                    if key in failed_keys:
                        continue
                    attempts[key] += 1
                    if attempts[key] >= retry.max_attempts:
                        unit = todo.pop(key)
                        store.quarantine_unit(
                            unit.key, _quarantine_meta(unit, attempts[key], None)
                        )
                        quarantined += 1
            if todo and (failed or crashed):
                crash_round += 1
                time.sleep(retry.backoff(crash_round))

    run_span.set(completed=completed, quarantined=quarantined)
    run_span.end()
    return CampaignRun(
        total_units=len(units),
        skipped_units=skipped,
        completed_units=completed,
        # Still-quarantined units count as remaining: the campaign is not
        # finished while the store holds poison records.
        remaining_units=len(pending) - completed + len(poisoned),
        elapsed_s=time.perf_counter() - start,
        quarantined_units=quarantined,
    )
