"""Aggregation: campaign artifacts into the analysis/report/export paths.

The store holds per-unit arrays; this module reassembles them into the
flat :class:`~repro.analysis.accuracy.AccuracyRecord` stream the
analysis layer already understands, so campaign output flows through
the *existing* aggregation (:func:`~repro.analysis.accuracy.accuracy_sweep`,
:func:`~repro.analysis.accuracy.accuracy_quantiles`), tabulation
(:func:`~repro.analysis.reporting.format_table`), markdown
(:func:`~repro.analysis.reporting.markdown_table`), and CSV export
(:func:`~repro.analysis.export.records_to_csv`) paths — no second
reporting stack.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.accuracy import AccuracyRecord, accuracy_quantiles, accuracy_sweep
from repro.analysis.export import records_to_csv
from repro.analysis.reporting import format_table, markdown_table
from repro.campaigns.runner import campaign_status
from repro.campaigns.spec import CampaignSpec, expand
from repro.campaigns.store import ArtifactStore
from repro.errors import CampaignError

__all__ = [
    "campaign_records",
    "campaign_report",
    "campaign_tables",
    "records_to_campaign_csv",
]


def campaign_records(
    spec: CampaignSpec,
    store: ArtifactStore,
    *,
    strict: bool = True,
) -> dict[tuple[str, str], list[AccuracyRecord]]:
    """Reassemble store artifacts into per-(variant, family) records.

    Returns ``{(variant_label, family): [AccuracyRecord, ...]}`` with
    records in the same trial-major order
    :func:`~repro.analysis.accuracy.run_trials` emits, so downstream
    consumers cannot tell a campaign apart from a legacy sweep.

    ``strict=True`` raises :class:`CampaignError` when units are
    missing; ``strict=False`` aggregates whatever completed (partial
    status reports).
    """
    status = campaign_status(spec, store)
    if strict and status.pending:
        missing = ", ".join(u.describe() for u in status.pending[:5])
        raise CampaignError(
            f"campaign {spec.name!r} is incomplete: "
            f"{len(status.pending)}/{status.total_units} units pending "
            f"(e.g. {missing}); run `repro campaign run` to finish it"
        )
    grouped: dict[tuple[str, str], list[AccuracyRecord]] = {}
    for unit in expand(spec):
        if not store.has(unit.key):
            continue
        arrays, _ = store.load_unit(unit.key)
        records = grouped.setdefault((unit.variant_label, unit.family), [])
        rel = arrays["relative_error"]
        sat = arrays["saturated"]
        elapsed = arrays["analog_time_s"]
        for trial in range(rel.shape[1]):
            for i, solver in enumerate(spec.solvers):
                records.append(
                    AccuracyRecord(
                        solver=solver,
                        size=unit.size,
                        trial=trial,
                        relative_error=float(rel[i, trial]),
                        saturated=bool(sat[i, trial]),
                        analog_time_s=float(elapsed[i, trial]),
                    )
                )
    return grouped


def campaign_tables(
    spec: CampaignSpec,
    store: ArtifactStore,
    *,
    strict: bool = True,
    grouped: dict | None = None,
) -> str:
    """ASCII tables (one per variant × family) of mean/median error.

    ``grouped`` accepts a precomputed :func:`campaign_records` mapping
    so callers rendering several outputs aggregate the store once.
    """
    if grouped is None:
        grouped = campaign_records(spec, store, strict=strict)
    sections = []
    for (variant, family), records in grouped.items():
        means = accuracy_sweep(records)
        medians = accuracy_quantiles(records, (0.5,))
        rows = []
        for size in spec.sizes:
            row = [size]
            for solver in spec.solvers:
                by_size = means.get(solver, {})
                if size in by_size:
                    row.append(by_size[size][0])
                    row.append(medians[solver][size][0])
                else:
                    row.append("-")
                    row.append("-")
            rows.append(row)
        headers = ["size"]
        for solver in spec.solvers:
            headers += [f"{solver} mean", f"{solver} med"]
        label = f"{spec.name} [{variant}] {family}"
        sections.append(
            format_table(
                headers,
                rows,
                title=f"{label} — {spec.trials} trials/size, seed {spec.seed}",
            )
        )
    return "\n\n".join(sections)


def campaign_report(
    spec: CampaignSpec,
    store: ArtifactStore,
    *,
    strict: bool = True,
    grouped: dict | None = None,
) -> str:
    """Markdown report of a campaign (same shape as ``repro report``).

    ``grouped`` accepts a precomputed :func:`campaign_records` mapping.
    """
    if grouped is None:
        grouped = campaign_records(spec, store, strict=strict)
    status = campaign_status(spec, store)
    lines = [
        f"# Campaign report: {spec.name}",
        "",
        spec.title or "(no description)",
        "",
        f"Mode: {spec.mode} | seed: {spec.seed} | trials/unit: {spec.trials} | "
        f"units: {status.completed_units}/{status.total_units} | "
        f"spec digest: `{spec.digest()[:12]}`",
        "",
    ]
    for (variant, family), records in grouped.items():
        means = accuracy_sweep(records)
        medians = accuracy_quantiles(records, (0.5,))
        headers = ["size"] + [f"{s} (mean/med)" for s in spec.solvers]
        rows = []
        for size in spec.sizes:
            row = [str(size)]
            for solver in spec.solvers:
                by_size = means.get(solver, {})
                if size in by_size:
                    row.append(
                        f"{by_size[size][0]:.4f}/{medians[solver][size][0]:.4f}"
                    )
                else:
                    row.append("-")
            rows.append(row)
        lines.append(f"## {variant} / {family}")
        lines.append("")
        lines.append(markdown_table(headers, rows))
        lines.append("")
    return "\n".join(lines)


def records_to_campaign_csv(
    spec: CampaignSpec,
    store: ArtifactStore,
    path,
    *,
    strict: bool = True,
    grouped: dict | None = None,
) -> list[Path]:
    """Export per-(variant, family) raw records as CSV files.

    ``path`` is the base name: ``<base>.<variant>.<family>.csv`` per
    group (single-group campaigns write ``<base>`` verbatim). Goes
    through :func:`repro.analysis.export.records_to_csv` — the same
    writer `repro run --csv` uses. ``grouped`` accepts a precomputed
    :func:`campaign_records` mapping.
    """
    if grouped is None:
        grouped = campaign_records(spec, store, strict=strict)
    path = Path(path)
    written = []
    if len(grouped) == 1:
        records = next(iter(grouped.values()))
        written.append(records_to_csv(records, path))
        return written
    for (variant, family), records in grouped.items():
        target = path.with_suffix(f".{variant}.{family}.csv")
        written.append(records_to_csv(records, target))
    return written
