"""Declarative campaign specifications and their work-unit expansion.

A :class:`CampaignSpec` describes one experiment sweep — a figure
regeneration or an ablation — as pure data: a base hardware
configuration plus a list of **variants** (field overrides on
:class:`~repro.amc.config.HardwareConfig`), matrix **families** from
:mod:`repro.workloads`, **sizes**, a **trial** count, a **mode**, and a
root **seed**. Everything is JSON-serializable, so a spec digests to a
stable content address, travels to worker processes untouched, and is
recorded verbatim in the artifact store's manifest.

``expand`` turns a spec into :class:`WorkUnit` objects — one per
(variant, family, size) cell — each carrying a content-addressed key
(hash of the spec digest plus the cell coordinates). Units are the
grain of scheduling, checkpointing, and resumption: a completed unit's
artifact is a pure function of its key, so re-running it is a no-op and
executing units in any order, on any number of workers, yields the same
store.

Determinism contract (enforced by ``tests/test_campaigns.py``)
--------------------------------------------------------------
Seeds derive from the unit's position, ``SeedSequence.spawn`` style:

- ``mode="trials"`` replays the exact child-generator stream of
  :func:`repro.analysis.accuracy.run_trials` — for size index ``i`` the
  unit advances ``SeedSequence(seed)`` past the ``3 * trials * i``
  children earlier sizes consumed (:func:`unit_seed_sequence`), so a
  campaign's records are **bit-identical** to the legacy single-process
  sweep loops (e.g. ``benchmarks/bench_fig7_variation.py``), per family,
  regardless of worker count, shard order, or resume boundaries;
- ``mode="rhs"`` derives each unit's generators from
  ``SeedSequence(seed, spawn_key=cell_coordinates)`` — a pure function
  of the unit key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.amc.config import HardwareConfig
from repro.core.backend import get_backend
from repro.devices.models import PAPER_G0_SIEMENS
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    NoVariation,
    RelativeGaussianVariation,
)
from repro.errors import BackendError, CampaignError

__all__ = [
    "BASE_HARDWARE",
    "CampaignSpec",
    "HardwareVariant",
    "WorkUnit",
    "apply_overrides",
    "decode_variation",
    "expand",
    "unit_seed_sequence",
]

#: Named base configurations a spec can start from (same names as the
#: CLI's ``--hardware`` choices).
BASE_HARDWARE = {
    "ideal": HardwareConfig.ideal,
    "ideal-mapping": HardwareConfig.paper_ideal_mapping,
    "variation": HardwareConfig.paper_variation,
    "interconnect": HardwareConfig.paper_interconnect,
}

#: Campaign execution modes.
MODES = ("trials", "rhs")

#: Variation-model codec: overriding ``programming.variation`` swaps the
#: model class, so the override value is ``{"kind": ..., <params>}``.
VARIATION_KINDS = {
    "none": NoVariation,
    "gaussian": GaussianVariation,
    "relative_gaussian": RelativeGaussianVariation,
    "lognormal": LognormalVariation,
}

#: Convenience: specs reference the paper's G0 without re-stating it.
PAPER_G0 = PAPER_G0_SIEMENS


def decode_variation(payload: dict):
    """Build a variation model from its JSON codec form."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise CampaignError(
            f"variation override must be {{'kind': ..., params}}, got {payload!r}"
        )
    kind = payload["kind"]
    if kind not in VARIATION_KINDS:
        raise CampaignError(
            f"unknown variation kind {kind!r}; available: {sorted(VARIATION_KINDS)}"
        )
    params = {k: v for k, v in payload.items() if k != "kind"}
    return VARIATION_KINDS[kind](**params)


def _replace_path(obj, path: str, value):
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(obj) or not hasattr(obj, head):
        raise CampaignError(
            f"override path {path!r} does not resolve on {type(obj).__name__}"
        )
    if rest:
        value = _replace_path(getattr(obj, head), rest, value)
    elif head == "variation":
        value = decode_variation(value)
    return dataclasses.replace(obj, **{head: value})


def apply_overrides(config: HardwareConfig, overrides: dict) -> HardwareConfig:
    """Apply dotted-path field overrides to a (nested, frozen) config.

    ``{"opamp.open_loop_gain": 1e5}`` rebuilds the op-amp dataclass with
    the new gain; ``{"programming.variation": {"kind": "gaussian",
    "sigma": 5e-6}}`` swaps the variation model through the codec.
    Overrides apply in sorted-path order so the result is independent of
    dict insertion order.
    """
    for path in sorted(overrides):
        config = _replace_path(config, path, overrides[path])
    return config


@dataclass(frozen=True)
class HardwareVariant:
    """One point of a spec's hardware grid: a label plus field overrides."""

    label: str
    overrides: dict = field(default_factory=dict)

    def resolve(self, base: str) -> HardwareConfig:
        """Build the concrete config: base factory plus this variant."""
        if base not in BASE_HARDWARE:
            raise CampaignError(
                f"unknown base hardware {base!r}; available: {sorted(BASE_HARDWARE)}"
            )
        return apply_overrides(BASE_HARDWARE[base](), self.overrides)


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative experiment campaign.

    Parameters
    ----------
    name:
        Campaign identifier (also the default store directory name).
    title:
        Human-readable description (which figure/ablation this is).
    mode:
        ``"trials"`` — Monte-Carlo sweep: per unit, ``trials`` fresh
        (matrix, b, hardware-seed) draws through the trial-batched
        engine, replaying the legacy ``run_trials`` stream bit-exactly.
        ``"rhs"`` — serving-style sweep: per unit, one matrix and
        ``trials`` right-hand sides through the prepared-solver cache's
        multi-RHS path (lean results).
    solvers:
        Solver kinds (keys of :data:`repro.serve.SOLVER_KINDS`), in
        record order.
    families:
        Matrix families (keys of
        :data:`repro.workloads.traffic.TRAFFIC_FAMILIES`).
    sizes:
        Matrix sizes; order defines each size's seed-stream offset.
    trials:
        Monte-Carlo trials (or right-hand sides) per unit.
    seed:
        Root seed of the whole campaign.
    hardware:
        Base configuration name (key of :data:`BASE_HARDWARE`).
    variants:
        Hardware grid points. An empty tuple means one unlabeled
        variant with no overrides.
    backend:
        Array backend / precision tier applied to every resolved
        hardware config (see :mod:`repro.core.backend`). The default
        ``"numpy"`` (float64) is omitted from :meth:`to_dict`, so
        pre-backend campaign digests — and their resumable stores —
        are unchanged.
    """

    name: str
    title: str = ""
    mode: str = "trials"
    solvers: tuple = ("original-amc", "blockamc-1stage")
    families: tuple = ("wishart",)
    sizes: tuple = (8, 16, 32)
    trials: int = 3
    seed: int = 0
    hardware: str = "variation"
    variants: tuple = ()
    backend: str = "numpy"

    def __post_init__(self):
        from repro.serve.cache import SOLVER_KINDS
        from repro.workloads.traffic import TRAFFIC_FAMILIES

        if self.mode not in MODES:
            raise CampaignError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.hardware not in BASE_HARDWARE:
            raise CampaignError(
                f"unknown base hardware {self.hardware!r}; "
                f"available: {sorted(BASE_HARDWARE)}"
            )
        if not self.solvers or not self.families or not self.sizes:
            raise CampaignError("solvers, families, and sizes must be non-empty")
        for solver in self.solvers:
            if solver not in SOLVER_KINDS:
                raise CampaignError(
                    f"unknown solver kind {solver!r}; available: {sorted(SOLVER_KINDS)}"
                )
        for family in self.families:
            if family not in TRAFFIC_FAMILIES:
                raise CampaignError(
                    f"unknown family {family!r}; available: {sorted(TRAFFIC_FAMILIES)}"
                )
        if self.trials < 1:
            raise CampaignError(f"trials must be >= 1, got {self.trials}")
        try:
            get_backend(self.backend)
        except BackendError as exc:
            raise CampaignError(str(exc)) from None
        variants = tuple(
            v if isinstance(v, HardwareVariant) else HardwareVariant(**v)
            for v in (self.variants or (HardwareVariant("base"),))
        )
        labels = [v.label for v in variants]
        if len(set(labels)) != len(labels):
            raise CampaignError(f"variant labels must be unique, got {labels}")
        object.__setattr__(self, "variants", variants)
        object.__setattr__(self, "solvers", tuple(self.solvers))
        object.__setattr__(self, "families", tuple(self.families))
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))

    # ------------------------------------------------------------------
    # serialization and content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`).

        ``backend`` is included only off its default, so the digests of
        pre-backend specs (and the stores keyed by them) are stable.
        """
        payload = {
            "name": self.name,
            "title": self.title,
            "mode": self.mode,
            "solvers": list(self.solvers),
            "families": list(self.families),
            "sizes": list(self.sizes),
            "trials": self.trials,
            "seed": self.seed,
            "hardware": self.hardware,
            "variants": [
                {"label": v.label, "overrides": dict(v.overrides)}
                for v in self.variants
            ],
        }
        if self.backend != "numpy":
            payload["backend"] = self.backend
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["variants"] = tuple(
            HardwareVariant(v["label"], dict(v.get("overrides", {})))
            for v in payload.get("variants", [])
        )
        for key in ("solvers", "families", "sizes"):
            if key in payload:
                payload[key] = tuple(payload[key])
        return cls(**payload)

    def digest(self) -> str:
        """Stable content digest of the full spec (SHA-256 hex).

        Two specs share a digest iff every parameter that affects the
        produced artifacts is equal, so a store can refuse resumption
        under a different spec.
        """
        return hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()

    def resolve_hardware(self, variant_index: int) -> HardwareConfig:
        """Concrete :class:`HardwareConfig` of one grid point.

        The spec's ``backend`` applies last, after variant overrides
        (when off its default), so the whole grid runs at one tier.
        """
        config = self.variants[variant_index].resolve(self.hardware)
        if self.backend != "numpy":
            config = config.with_(backend=self.backend)
        return config


@dataclass(frozen=True)
class WorkUnit:
    """One content-addressed cell of an expanded campaign.

    ``key`` is a pure function of (spec digest, variant, family, size),
    so an artifact store entry under this key can only ever hold this
    cell's results for this exact spec.
    """

    key: str
    variant_index: int
    variant_label: str
    family: str
    family_index: int
    size: int
    size_index: int

    def describe(self) -> str:
        """Short human-readable cell coordinates for logs and status."""
        return f"{self.variant_label}/{self.family}/n={self.size}"


def expand(spec: CampaignSpec) -> list[WorkUnit]:
    """Expand a spec into its work units (variant-major, stable order)."""
    digest = spec.digest()
    units = []
    for vi, variant in enumerate(spec.variants):
        for fi, family in enumerate(spec.families):
            for si, size in enumerate(spec.sizes):
                cell = _canonical_json(
                    {
                        "spec": digest,
                        "variant": variant.label,
                        "family": family,
                        "size": size,
                    }
                )
                key = hashlib.sha256(cell.encode()).hexdigest()[:32]
                units.append(
                    WorkUnit(
                        key=key,
                        variant_index=vi,
                        variant_label=variant.label,
                        family=family,
                        family_index=fi,
                        size=size,
                        size_index=si,
                    )
                )
    return units


def unit_seed_sequence(seed, size_index: int, trials: int) -> np.random.SeedSequence:
    """Seed stream positioned at a unit's offset in the legacy sweep.

    :func:`repro.analysis.accuracy.run_trials` consumes three children
    of ``SeedSequence(seed)`` per trial (matrix, right-hand side,
    hardware seed), walking sizes in order. Spawning past the
    ``3 * trials * size_index`` children of earlier sizes yields a
    sequence whose next children are exactly the ones the legacy loop
    would draw for this size — which is what makes campaign records
    bit-identical to the single-process sweeps, independent of unit
    execution order.
    """
    seq = np.random.SeedSequence(seed)
    skip = 3 * trials * size_index
    if skip:
        seq.spawn(skip)
    return seq
