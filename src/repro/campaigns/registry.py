"""Named campaign specs: the paper's figure sweeps and ablations.

Each entry is a thin declarative wrapper over the sweep a
``benchmarks/bench_*.py`` script used to hand-roll. The ``quick``
variants shrink sizes/trials to CI scale (matching
``benchmarks/conftest.py``); ``quick=False`` sweeps the paper's range.

Seeds are the legacy bench seeds (``fig7`` = 70, ``fig9`` = 90), and
``mode="trials"`` campaigns replay the legacy ``run_trials`` stream
bit-exactly (see :mod:`repro.campaigns.spec`), so `repro campaign run
fig7-variation` reproduces `benchmarks/bench_fig7_variation.py`'s
numbers to the last bit — now resumable and multiprocess.
"""

from __future__ import annotations

from repro.campaigns.spec import PAPER_G0, CampaignSpec, HardwareVariant
from repro.errors import CampaignError

__all__ = ["get_campaign", "list_campaigns"]

#: Sizes/trials of the quick (CI) and paper-scale sweeps, matching the
#: legacy bench plumbing in ``benchmarks/conftest.py``.
QUICK_SIZES = (8, 16, 32)
PAPER_SIZES = (8, 16, 32, 64, 128, 256, 512)
QUICK_TRIALS = 3
PAPER_TRIALS = 40


def _campaigns(quick: bool) -> dict[str, CampaignSpec]:
    sizes = QUICK_SIZES if quick else PAPER_SIZES
    trials = QUICK_TRIALS if quick else PAPER_TRIALS
    specs = (
        CampaignSpec(
            name="fig7-variation",
            title="Fig. 7 — accuracy under 5% programming variation "
            "(Wishart and Toeplitz)",
            solvers=("original-amc", "blockamc-1stage"),
            families=("wishart", "toeplitz"),
            sizes=sizes,
            trials=trials,
            seed=70,
            hardware="variation",
        ),
        CampaignSpec(
            name="fig9-interconnect",
            title="Fig. 9 — accuracy with 5% variation plus 1 ohm/segment "
            "interconnect resistance",
            solvers=("original-amc", "blockamc-1stage", "blockamc-2stage"),
            families=("wishart", "toeplitz"),
            sizes=sizes,
            trials=trials,
            seed=90,
            hardware="interconnect",
        ),
        CampaignSpec(
            name="ablation-gain",
            title="Ablation — op-amp open-loop gain and input offset "
            "(explains the Fig. 6c trend)",
            solvers=("original-amc", "blockamc-1stage"),
            families=("wishart",),
            sizes=(32,) if quick else (128,),
            trials=3 if quick else 6,
            seed=100,
            hardware="ideal-mapping",
            variants=(
                HardwareVariant(
                    "gain-1e3", {"opamp.open_loop_gain": 1e3,
                                 "opamp.input_offset_sigma_v": 0.0}
                ),
                HardwareVariant(
                    "gain-1e4", {"opamp.open_loop_gain": 1e4,
                                 "opamp.input_offset_sigma_v": 0.0}
                ),
                HardwareVariant(
                    "gain-1e5", {"opamp.open_loop_gain": 1e5,
                                 "opamp.input_offset_sigma_v": 0.0}
                ),
                HardwareVariant(
                    "ideal-gain-offset-0.25mV",
                    {"opamp.open_loop_gain": float("inf"),
                     "opamp.input_offset_sigma_v": 0.25e-3},
                ),
                HardwareVariant(
                    "gain-1e4-offset-0.25mV",
                    {"opamp.open_loop_gain": 1e4,
                     "opamp.input_offset_sigma_v": 0.25e-3},
                ),
                HardwareVariant(
                    "gain-1e4-offset-1mV",
                    {"opamp.open_loop_gain": 1e4,
                     "opamp.input_offset_sigma_v": 1e-3},
                ),
            ),
        ),
        CampaignSpec(
            name="ablation-quantization",
            title="Ablation — converter resolution vs one- and two-stage "
            "accuracy (inter-macro ADC/DAC round trips)",
            solvers=("blockamc-1stage", "blockamc-2stage"),
            families=("wishart",),
            sizes=(16,) if quick else (64,),
            trials=4 if quick else 8,
            seed=101,
            hardware="variation",
            variants=tuple(
                HardwareVariant(
                    "ideal" if bits is None else f"{bits}b",
                    {"converters.dac_bits": bits, "converters.adc_bits": bits},
                )
                for bits in (4, 6, 8, 10, 12, None)
            ),
        ),
        CampaignSpec(
            name="ablation-variation",
            title="Ablation — relative vs absolute reading of the paper's "
            "'sigma = 0.05 G0' programming variation",
            solvers=("original-amc", "blockamc-1stage"),
            families=("wishart",),
            sizes=(8, 16, 32) if quick else (8, 32, 128),
            trials=4 if quick else 10,
            seed=102,
            hardware="ideal-mapping",
            variants=(
                HardwareVariant(
                    "relative-5pct",
                    {"programming.variation": {
                        "kind": "relative_gaussian", "sigma_rel": 0.05}},
                ),
                HardwareVariant(
                    "absolute-0.05G0",
                    {"programming.variation": {
                        "kind": "gaussian", "sigma": 0.05 * PAPER_G0}},
                ),
            ),
        ),
        CampaignSpec(
            name="serving-rhs",
            title="Serving-style sweep — one prepared matrix per cell, "
            "many right-hand sides through the multi-RHS kernel "
            "(lean results, prepared-solver cache)",
            mode="rhs",
            solvers=("blockamc-1stage",),
            families=("wishart", "toeplitz", "poisson"),
            sizes=(16, 24) if quick else (32, 64, 96),
            trials=8 if quick else 32,
            seed=7,
            hardware="variation",
        ),
        CampaignSpec(
            name="serving-rhs-2stage",
            title="Two-stage serving sweep — multi-stage prepared solvers "
            "against the one-stage baseline, many right-hand sides per "
            "cell through the coalesced multi-RHS path (lean results, "
            "prepared-solver cache)",
            mode="rhs",
            solvers=("blockamc-1stage", "blockamc-2stage"),
            families=("wishart", "toeplitz"),
            sizes=(12, 16) if quick else (16, 32, 64),
            trials=6 if quick else 24,
            seed=11,
            hardware="variation",
        ),
    )
    return {spec.name: spec for spec in specs}


def list_campaigns(quick: bool = True) -> list[str]:
    """Names of all registered campaigns."""
    return sorted(_campaigns(quick))


def get_campaign(name: str, quick: bool = True) -> CampaignSpec:
    """Look up a registered campaign (``quick`` selects CI-scale grids)."""
    campaigns = _campaigns(quick)
    if name not in campaigns:
        raise CampaignError(
            f"unknown campaign {name!r}; available: {sorted(campaigns)}"
        )
    return campaigns[name]
