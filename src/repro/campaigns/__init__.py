"""``repro.campaigns`` — declarative, resumable, multiprocess campaigns.

The paper's results are sweeps; this package turns each one into a
:class:`CampaignSpec` (a declarative grid over hardware variants, matrix
families, sizes, and trials) expanded into content-addressed work units,
executed by a multiprocess shard runner (:func:`run_campaign`) against a
checkpointing :class:`ArtifactStore` — kill a campaign at any point and
a re-run resumes exactly where it stopped, with completed units never
recomputed. Unit seeds derive from unit position (``SeedSequence.spawn``
style), so the finished store is **bit-identical** for any worker count,
shard order, or resume history, and ``mode="trials"`` campaigns are
bit-identical to the legacy single-process sweep loops. With a
:class:`RetryPolicy`, worker crashes re-dispatch their units and poison
units are quarantined after bounded attempts instead of aborting the
run — retried units recompute the same bits, so fault history never
shows in the finished store.

Entry points: ``repro campaign run/status/resume/report/diff`` on the
CLI, :func:`get_campaign` for the registered figure/ablation specs,
:mod:`repro.campaigns.aggregate` for flowing artifacts back through the
analysis/report/export layers, and ``benchmarks/bench_campaigns.py``
for the wall-clock artifact (``BENCH_campaigns.json``).
"""

from repro.campaigns.aggregate import (
    campaign_records,
    campaign_report,
    campaign_tables,
    records_to_campaign_csv,
)
from repro.campaigns.registry import get_campaign, list_campaigns
from repro.campaigns.runner import (
    CampaignRun,
    CampaignStatus,
    RetryPolicy,
    campaign_status,
    execute_unit,
    run_campaign,
)
from repro.campaigns.spec import (
    BASE_HARDWARE,
    CampaignSpec,
    HardwareVariant,
    WorkUnit,
    apply_overrides,
    expand,
    unit_seed_sequence,
)
from repro.campaigns.store import ArtifactStore, store_diff, stores_equal

__all__ = [
    "ArtifactStore",
    "BASE_HARDWARE",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStatus",
    "HardwareVariant",
    "RetryPolicy",
    "WorkUnit",
    "apply_overrides",
    "campaign_records",
    "campaign_report",
    "campaign_status",
    "campaign_tables",
    "execute_unit",
    "expand",
    "get_campaign",
    "list_campaigns",
    "records_to_campaign_csv",
    "run_campaign",
    "store_diff",
    "stores_equal",
    "unit_seed_sequence",
]
