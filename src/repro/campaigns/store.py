"""Checkpointing artifact store: one record per completed work unit.

Layout under the store root::

    manifest.json          # the spec (verbatim) + its digest
    units/<key>.npz        # result arrays of one completed unit
    units/<key>.json       # unit coordinates + runtime telemetry
    quarantine/<key>.json  # units the runner gave up on (poison units)

Writes are atomic (temp file + ``os.replace``) and the ``.json`` sidecar
lands *last*, so a unit is "completed" iff its sidecar exists — a
``SIGKILL`` mid-write can strand a temp file or an orphaned ``.npz``,
never a half-valid record. Re-running a campaign against an existing
store skips completed units (resume == run), and the manifest pins the
spec digest so a store can never silently mix artifacts from two
different campaigns.

Unit artifacts are deterministic: equal spec + equal unit ⇒ bit-equal
arrays and an equal ``"unit"`` metadata block. The ``"runtime"`` block
(wall time, worker pid) is explicitly excluded from
:func:`stores_equal`, which is what the determinism tests and the CI
``campaign-smoke`` job compare across worker counts and kill/resume
boundaries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.campaigns.spec import CampaignSpec
from repro.errors import CampaignError

__all__ = ["ArtifactStore", "stores_equal", "store_diff"]


class ArtifactStore:
    """Directory-backed store of campaign unit artifacts."""

    def __init__(self, root):
        self.root = Path(root)
        self.units_dir = self.root / "units"

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def verify_manifest(self, spec: CampaignSpec) -> None:
        """Raise when the store belongs to a different campaign than ``spec``.

        A store without a manifest passes (nothing to contradict). The
        usual way to hit the mismatch is pointing ``--store`` at another
        campaign's directory or mixing quick and ``--paper`` grids —
        their spec digests differ, so their unit keys are disjoint.
        """
        existing = self.read_manifest()
        if existing is not None and existing["digest"] != spec.digest():
            raise CampaignError(
                f"store {self.root} holds campaign "
                f"{existing['spec'].get('name')!r} [{existing['digest'][:12]}], "
                f"not {spec.name!r} [{spec.digest()[:12]}] — wrong --store, or "
                "quick vs --paper scale mismatch? Use a separate store per grid"
            )

    def write_manifest(self, spec: CampaignSpec) -> None:
        """Record the spec, or verify it matches an existing manifest."""
        self.verify_manifest(spec)
        if self.read_manifest() is not None:
            return
        self.units_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.manifest_path,
            json.dumps({"digest": spec.digest(), "spec": spec.to_dict()}, indent=2)
            + "\n",
        )

    def read_manifest(self) -> dict | None:
        """The stored manifest, or ``None`` for a fresh directory."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------
    # unit records
    # ------------------------------------------------------------------
    def _npz_path(self, key: str) -> Path:
        return self.units_dir / f"{key}.npz"

    def _meta_path(self, key: str) -> Path:
        return self.units_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        """True when the unit completed (sidecar is the commit marker)."""
        return self._meta_path(key).exists() and self._npz_path(key).exists()

    def completed_keys(self) -> set[str]:
        """Keys of every completed unit in the store."""
        if not self.units_dir.exists():
            return set()
        return {
            path.stem
            for path in self.units_dir.glob("*.json")
            if self._npz_path(path.stem).exists()
        }

    def write_unit(self, key: str, arrays: dict, meta: dict) -> None:
        """Atomically persist one completed unit (arrays first, meta last)."""
        self.units_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.units_dir, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, self._npz_path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        _atomic_write_text(
            self._meta_path(key), json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )

    def load_unit(self, key: str) -> tuple[dict, dict]:
        """Load one completed unit's ``(arrays, meta)``."""
        if not self.has(key):
            raise CampaignError(f"store {self.root} has no completed unit {key}")
        with np.load(self._npz_path(key)) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(self._meta_path(key).read_text())
        return arrays, meta

    def read_meta(self, key: str) -> dict | None:
        """One completed unit's JSON sidecar alone (no array load).

        Cheap by design: status/ETA scans read every completed unit's
        runtime telemetry without touching the (much larger) ``.npz``
        payloads. Returns ``None`` for units that are not completed.
        """
        if not self.has(key):
            return None
        return json.loads(self._meta_path(key).read_text())

    # ------------------------------------------------------------------
    # quarantine records
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine_path(self, key: str) -> Path:
        return self.quarantine_dir / f"{key}.json"

    def quarantine_unit(self, key: str, meta: dict) -> None:
        """Record that the runner gave up on ``key`` (a poison unit).

        Quarantine is runner bookkeeping, not a result: quarantined
        units are excluded from scheduling until
        :meth:`clear_quarantine` (or ``--requeue-quarantined``), and
        never from :func:`stores_equal` — two stores compare by their
        *completed* units only.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self._quarantine_path(key),
            json.dumps(meta, indent=2, sort_keys=True) + "\n",
        )

    def quarantined_keys(self) -> set[str]:
        """Keys of every quarantined unit."""
        if not self.quarantine_dir.exists():
            return set()
        return {path.stem for path in self.quarantine_dir.glob("*.json")}

    def quarantined(self) -> dict[str, dict]:
        """Quarantine records by key (attempt counts, last error)."""
        if not self.quarantine_dir.exists():
            return {}
        return {
            path.stem: json.loads(path.read_text())
            for path in sorted(self.quarantine_dir.glob("*.json"))
        }

    def clear_quarantine(self, key: str | None = None) -> int:
        """Requeue quarantined unit(s); returns how many records were dropped."""
        if not self.quarantine_dir.exists():
            return 0
        if key is not None:
            path = self._quarantine_path(key)
            if not path.exists():
                return 0
            path.unlink()
            return 1
        cleared = 0
        for path in list(self.quarantine_dir.glob("*.json")):
            path.unlink()
            cleared += 1
        return cleared


def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def store_diff(a: ArtifactStore, b: ArtifactStore) -> list[str]:
    """Human-readable differences between two stores (empty == equal).

    Compares the campaign digest, the completed-unit key sets, every
    result array **bit for bit**, and the deterministic ``"unit"`` block
    of each record's metadata. Runtime telemetry (wall time, pid) and
    quarantine records are excluded — both legitimately differ between
    runs (and between a chaos run and a clean one) of the same campaign.
    """
    diffs: list[str] = []
    ma, mb = a.read_manifest(), b.read_manifest()
    if (ma and ma["digest"]) != (mb and mb["digest"]):
        diffs.append(
            f"manifest digest: {ma and ma['digest'][:12]} != {mb and mb['digest'][:12]}"
        )
        return diffs
    keys_a, keys_b = a.completed_keys(), b.completed_keys()
    for key in sorted(keys_a - keys_b):
        diffs.append(f"unit {key}: only in {a.root}")
    for key in sorted(keys_b - keys_a):
        diffs.append(f"unit {key}: only in {b.root}")
    for key in sorted(keys_a & keys_b):
        arrays_a, meta_a = a.load_unit(key)
        arrays_b, meta_b = b.load_unit(key)
        if set(arrays_a) != set(arrays_b):
            diffs.append(f"unit {key}: array sets differ")
            continue
        for name in sorted(arrays_a):
            if not np.array_equal(arrays_a[name], arrays_b[name]):
                diffs.append(f"unit {key}: array {name!r} differs")
        if meta_a.get("unit") != meta_b.get("unit"):
            diffs.append(f"unit {key}: unit metadata differs")
    return diffs


def stores_equal(a: ArtifactStore, b: ArtifactStore) -> bool:
    """True when two stores hold bit-identical campaign results."""
    return not store_diff(a, b)
