"""``repro.testing`` — deterministic fault injection for the serving and
campaign layers.

The chaos harness (:mod:`repro.testing.chaos`) is how this repo *proves*
its failure story instead of asserting it: every fault decision is a
pure hash of ``(plan seed, fault kind, content tag)``, so an injected
failure reproduces bit-exactly across runs, processes, and bisection
re-executions — which is what lets ``benchmarks/bench_resilience.py``
assert that surviving results under faults are bit-identical to the
fault-free reference.
"""

from repro.testing.chaos import (
    ChaosPlan,
    WorkerKillChaos,
    chaos_entry_transform,
    plan_from_env,
    rhs_tag,
)

__all__ = [
    "ChaosPlan",
    "WorkerKillChaos",
    "chaos_entry_transform",
    "plan_from_env",
    "rhs_tag",
]
