"""Deterministic, seeded fault injection for serving and campaigns.

A :class:`ChaosPlan` decides every fault as a pure function of
``sha256(plan seed | fault kind | content tag)`` — no RNG state, no
wall-clock — so a chaos run is exactly reproducible: the same right-hand
side is poisoned in every run, in every process, and in every bisection
re-execution of a failed batch. That purity is what turns chaos from a
flake generator into a proof harness: the resilience bench can assert
that everything the service *did* answer under faults is bit-identical
to the fault-free reference.

Injection seams:

- **Serving**: :func:`chaos_entry_transform` plugs into
  ``ServiceConfig.entry_transform`` and wraps each freshly prepared
  solver. Per right-hand side it can sleep (slow-call storms), raise
  :class:`~repro.errors.SolverError` (solve failures — exercises batch
  bisection, breakers, and the digital fallback), or raise
  :class:`WorkerKillChaos` — a ``BaseException`` that sails past the
  per-batch ``except Exception`` handlers and exercises the service's
  last-resort crash handler, like a real bug would.
- **Campaigns**: :func:`plan_from_env` reads a plan from the
  ``REPRO_CHAOS`` environment variable (the driver exports it; pool
  workers inherit it). Inside the worker entry point the plan can
  ``SIGKILL`` the worker process mid-unit (after compute, before
  commit) or tear an artifact write (a truncated ``.npz`` with no
  sidecar — exactly the torn state the store's commit protocol must
  shrug off).

Kills and torn writes are **budgeted** through marker files in
``state_dir`` (multiprocess-safe via exclusive create), so a chaos
campaign converges: each unit is killed/torn at most its budget, after
which retries run clean and the finished store is bit-identical to a
fault-free run. The driver process never kills itself —
``run_campaign`` exports ``REPRO_CHAOS_DRIVER_PID`` and the kill hook
skips that pid.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CampaignError, SolverError, ValidationError

__all__ = [
    "CHAOS_ENV",
    "ChaosPlan",
    "WorkerKillChaos",
    "chaos_entry_transform",
    "plan_from_env",
    "rhs_tag",
]

#: Environment variable carrying a JSON-encoded :class:`ChaosPlan`.
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable naming the campaign driver's pid (never killed).
CHAOS_DRIVER_ENV = "REPRO_CHAOS_DRIVER_PID"


class WorkerKillChaos(BaseException):
    """Simulated sudden worker death inside a serve shard.

    Deliberately a ``BaseException``: the service's per-batch ``except
    Exception`` handlers must *not* see it, so it reaches the
    last-resort crash handler in ``_worker_main`` — the code path a
    genuine interpreter-level fault would take. Carries the triggering
    rhs ``tag`` so the process-tier workers (:mod:`repro.serve.net`),
    which lose in-memory kill state when they are actually SIGKILLed,
    can budget kills through the plan's ``state_dir`` markers.
    """


def rhs_tag(b: np.ndarray) -> str:
    """Content tag of one right-hand side (shape + bytes, short SHA-256).

    Fault decisions key on this tag, so "which request is poisoned" is a
    property of the request's *content* — stable across batching
    composition, bisection re-execution, worker count, and process
    boundaries.
    """
    a = np.ascontiguousarray(b, dtype=float)
    h = hashlib.sha256()
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class ChaosPlan:
    """One deterministic fault-injection schedule.

    Parameters
    ----------
    seed:
        Root of every fault decision; two runs with equal plans inject
        identical faults.
    solve_failure_rate:
        Fraction of right-hand sides whose solve raises
        :class:`~repro.errors.SolverError` (serving seam).
    slow_call_rate, slow_call_s:
        Fraction of right-hand sides whose solve first sleeps
        ``slow_call_s`` (latency storms — drives deadline/shedding
        behaviour without failing anything).
    worker_kill_rate:
        Serving: fraction of right-hand sides that raise
        :class:`WorkerKillChaos` (once per tag). Campaigns: fraction of
        units whose worker SIGKILLs itself mid-unit (budgeted by
        ``max_kills_per_unit`` through ``state_dir``).
    max_kills_per_unit:
        Kill budget per campaign unit; after the budget is consumed the
        unit's retries run clean (so chaos campaigns converge).
    torn_write_rate:
        Fraction of campaign units whose first artifact write is torn: a
        truncated ``.npz`` lands with no sidecar, then
        :class:`~repro.errors.CampaignError` raises (budget 1 per unit).
    state_dir:
        Directory for the multiprocess kill/tear budget markers.
        Required for campaign kills and torn writes.
    """

    seed: int = 0
    solve_failure_rate: float = 0.0
    slow_call_rate: float = 0.0
    slow_call_s: float = 0.0
    worker_kill_rate: float = 0.0
    max_kills_per_unit: int = 1
    torn_write_rate: float = 0.0
    state_dir: str | None = None

    def __post_init__(self):
        for name in ("solve_failure_rate", "slow_call_rate", "worker_kill_rate", "torn_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_call_s < 0.0:
            raise ValidationError(f"slow_call_s must be >= 0, got {self.slow_call_s}")
        if self.max_kills_per_unit < 0:
            raise ValidationError(
                f"max_kills_per_unit must be >= 0, got {self.max_kills_per_unit}"
            )

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def fraction(self, kind: str, tag: str) -> float:
        """Uniform-in-[0,1) decision value for one (fault kind, tag) pair.

        A pure function — no state, no clock — so every process and
        every re-execution sees the same verdict.
        """
        digest = hashlib.sha256(f"{self.seed}|{kind}|{tag}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decides(self, kind: str, rate: float, tag: str) -> bool:
        """Whether the plan injects fault ``kind`` for ``tag`` at ``rate``."""
        return rate > 0.0 and self.fraction(kind, tag) < rate

    # ------------------------------------------------------------------
    # env round-trip (driver -> pool workers)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def chaos_env(self) -> dict[str, str]:
        """Environment entries that activate this plan in worker processes."""
        return {CHAOS_ENV: json.dumps(self.to_dict())}

    # ------------------------------------------------------------------
    # campaign-side faults (called from the worker entry point)
    # ------------------------------------------------------------------
    def _budget_dir(self) -> Path:
        if self.state_dir is None:
            raise CampaignError(
                "chaos kills/torn writes need a state_dir to budget against "
                "(unbounded faults would never let a campaign converge)"
            )
        root = Path(self.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        return root

    def _consume_budget(self, kind: str, tag: str, budget: int) -> bool:
        """Claim one fault slot for (kind, tag); False once exhausted.

        Marker files with exclusive create make this safe across
        concurrently faulting worker processes.
        """
        if budget <= 0:
            return False
        root = self._budget_dir()
        for index in range(budget):
            try:
                with open(root / f"{kind}-{tag}.{index}", "x"):
                    return True
            except FileExistsError:
                continue
        return False

    def injected(self, kind: str) -> int:
        """How many ``kind`` faults actually fired (marker count)."""
        if self.state_dir is None or not Path(self.state_dir).exists():
            return 0
        return sum(1 for _ in Path(self.state_dir).glob(f"{kind}-*"))

    def maybe_kill_worker(self, tag: str) -> None:
        """SIGKILL this worker process, if the plan says so (budgeted).

        Never kills the campaign driver (its pid is exported via
        ``REPRO_CHAOS_DRIVER_PID``), so inline runs survive their own
        chaos.
        """
        if not self.decides("kill", self.worker_kill_rate, tag):
            return
        if os.environ.get(CHAOS_DRIVER_ENV) == str(os.getpid()):
            return
        if not self._consume_budget("kill", tag, self.max_kills_per_unit):
            return
        os.kill(os.getpid(), signal.SIGKILL)

    def maybe_tear_write(self, store, tag: str, arrays: dict) -> None:
        """Tear the unit's artifact write, if the plan says so (once).

        Leaves exactly the state a mid-write crash would: a truncated
        ``.npz`` at the final path and **no** sidecar — the store's
        sidecar-last commit protocol must treat the unit as incomplete.
        """
        if not self.decides("torn", self.torn_write_rate, tag):
            return
        if not self._consume_budget("torn", tag, 1):
            return
        store.units_dir.mkdir(parents=True, exist_ok=True)
        (store.units_dir / f"{tag}.npz").write_bytes(b"PK\x03\x04chaos-torn")
        raise CampaignError(f"chaos: torn artifact write for unit {tag}")


# ----------------------------------------------------------------------
# serving seam
# ----------------------------------------------------------------------


class _ChaosPrepared:
    """Wraps a prepared solver, injecting faults per right-hand side."""

    def __init__(self, plan: ChaosPlan, inner):
        self._plan = plan
        self._inner = inner
        #: Tags already killed once; a wrapper kills each tag at most
        #: once so a restarted shard is not re-killed forever.
        self._killed: set[str] = set()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _inject(self, bs) -> None:
        plan = self._plan
        for b in bs:
            tag = rhs_tag(b)
            if plan.decides("slow", plan.slow_call_rate, tag):
                time.sleep(plan.slow_call_s)
            if (
                plan.decides("kill", plan.worker_kill_rate, tag)
                and tag not in self._killed
            ):
                self._killed.add(tag)
                chaos = WorkerKillChaos(f"chaos: simulated worker death on rhs {tag}")
                chaos.tag = tag
                raise chaos
            if plan.decides("fail", plan.solve_failure_rate, tag):
                raise SolverError(f"chaos: injected solve failure on rhs {tag}")

    def solve(self, b, rng, **kwargs):
        self._inject([b])
        return self._inner.solve(b, rng, **kwargs)

    def solve_many(self, bs, rng, **kwargs):
        self._inject(bs)
        return self._inner.solve_many(bs, rng, **kwargs)


def chaos_entry_transform(plan: ChaosPlan):
    """``ServiceConfig.entry_transform`` hook wrapping prepared solvers.

    Applied after preparation and warm-up, so cache identity and the
    entry's fixed random draws are untouched — chaos only intercepts
    the solve calls.
    """

    def transform(entry):
        return dataclasses.replace(entry, prepared=_ChaosPrepared(plan, entry.prepared))

    return transform


def plan_from_env(environ=None) -> ChaosPlan | None:
    """The :class:`ChaosPlan` exported via ``REPRO_CHAOS``, if any."""
    environ = os.environ if environ is None else environ
    payload = environ.get(CHAOS_ENV)
    if not payload:
        return None
    return ChaosPlan(**json.loads(payload))
