"""Content-addressed LRU cache of prepared (programmed) solvers.

Programming a macro — normalization, Schur preprocessing, the variation
draw, parasitic extraction — dominates the cost of a one-shot solve.
The service therefore prepares each distinct
``(matrix digest, hardware digest, solver kind, prep seed)`` combination
**once per process** and replays solves against the cached macro.

Determinism contract (the foundation of the service's bit-identical
guarantee, enforced by ``tests/test_serve.py``):

- preparation consumes ``default_rng(prep_seed)`` only, and the op-amp
  offset draw — normally deferred to the first solve — is forced at
  preparation time with the same generator (:func:`prepare_entry` runs
  one warm-up solve). A cached entry is therefore a pure function of its
  key, independent of which request happened to arrive first;
- after warm-up, solvers without per-operation noise are rng-independent
  (offsets are quasi-static and cached per op-amp column), so replayed
  solves are deterministic no matter how requests are scheduled.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver, has_per_operation_randomness
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.errors import ServeError

__all__ = [
    "SOLVER_KINDS",
    "CacheStats",
    "PreparedEntry",
    "PreparedKey",
    "PreparedSolverCache",
    "prepare_entry",
]

#: Solver kinds the service can prepare, mapped to prepared-solver factories.
SOLVER_KINDS: dict[str, Callable] = {
    "blockamc-1stage": lambda config: BlockAMCSolver(config),
    "blockamc-2stage": lambda config: MultiStageSolver(config, stages=2),
    "original-amc": lambda config: OriginalAMCSolver(config),
}


@dataclass(frozen=True)
class PreparedKey:
    """Cache identity of one programmed solver.

    ``backend`` names the precision tier the solver's kernel runs at
    (belt-and-braces with ``config_key``, which already covers the
    hardware's backend field, and with ``matrix_digest``, which hashes
    the canonical dtype: the tier is explicit in the key so two tiers
    can never alias even if a future config digest drops the field).
    """

    matrix_digest: str
    config_key: str
    solver: str
    prep_seed: int
    backend: str = "numpy"

    def shard(self, shards: int) -> int:
        """Owning shard index: hash of the *matrix* digest only.

        All traffic for one matrix lands on one worker, so a prepared
        macro lives in exactly one shard cache and is never programmed
        (or solved) concurrently from two threads.
        """
        return int(self.matrix_digest[:16], 16) % shards


@dataclass(frozen=True)
class PreparedEntry:
    """A cached programmed solver plus its execution traits.

    ``coalescible`` marks entries whose queued requests may be merged
    into one multi-RHS ``solve_many`` call (one- and two-stage BlockAMC
    without per-operation noise or MNA routing — exactly the
    configurations whose batched pipelines are bitwise invariant to
    batch composition). Other solvers execute request by request
    against the same cached programming.
    """

    key: PreparedKey
    prepared: object
    coalescible: bool
    size: int
    prepare_seconds: float


#: Solver kinds with a batch-composition-invariant ``solve_many`` path
#: (``PreparedBlockAMC`` and ``PreparedMultiStage`` respectively).
_COALESCIBLE_SOLVERS = frozenset({"blockamc-1stage", "blockamc-2stage"})


def _supports_coalescing(solver: str, config: HardwareConfig) -> bool:
    # The config predicate is shared with the solvers' own solve_many
    # fallbacks, so "coalescible" and "actually batches" cannot drift.
    return solver in _COALESCIBLE_SOLVERS and not has_per_operation_randomness(
        config
    )


def prepare_entry(
    key: PreparedKey, matrix: np.ndarray, hardware: HardwareConfig
) -> PreparedEntry:
    """Program a solver for ``matrix`` and warm its deferred draws.

    The warm-up solve forces every lazily-drawn quasi-static non-ideality
    (op-amp offsets across the whole solver tree) to consume the
    *preparation* generator, so the entry's behaviour is fixed at
    preparation time rather than by the first request scheduled onto it.
    """
    if key.solver not in SOLVER_KINDS:
        raise ServeError(
            f"unknown solver kind {key.solver!r}; available: {sorted(SOLVER_KINDS)}"
        )
    start = time.perf_counter()
    rng = np.random.default_rng(key.prep_seed)
    prepared = SOLVER_KINDS[key.solver](hardware).prepare(matrix, rng)
    prepared.solve(np.ones(matrix.shape[0]), rng)
    return PreparedEntry(
        key=key,
        prepared=prepared,
        coalescible=_supports_coalescing(key.solver, hardware),
        size=matrix.shape[0],
        prepare_seconds=time.perf_counter() - start,
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache (or an aggregate)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum (for aggregating shard caches)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def as_dict(self) -> dict:
        """Machine-readable counters including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PreparedSolverCache:
    """Thread-safe LRU cache of :class:`PreparedEntry` objects.

    ``capacity`` bounds the number of resident programmed solvers (each
    holds the four crossbar arrays plus factorization caches, so memory
    scales with ``capacity * n^2``). Eviction is least-recently-used on
    lookups and insertions.
    """

    capacity: int = 32
    _entries: OrderedDict = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PreparedKey) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_prepare(
        self, key: PreparedKey, factory: Callable[[], PreparedEntry]
    ) -> PreparedEntry:
        """Return the cached entry for ``key``, preparing it on a miss.

        The factory runs outside the lock only in the sense that each
        shard cache is owned by a single worker; a standalone shared
        cache accepts the (idempotent) cost of a duplicate prepare under
        a race rather than serializing all solvers behind one lock.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        entry = factory()
        if entry.key != key:
            raise ServeError(
                f"factory produced entry for {entry.key}, expected {key}"
            )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def credit_hits(self, count: int) -> None:
        """Count ``count`` extra hits.

        The service performs one physical lookup per *coalesced batch*;
        crediting the other ``batch - 1`` requests keeps the hit rate
        meaning "fraction of requests served from cached programming"
        whether or not batching happened to group them.
        """
        if count <= 0:
            return
        with self._lock:
            self.stats.hits += count

    def invalidate(self, key: PreparedKey) -> bool:
        """Drop one entry if resident; returns whether it was.

        Used by the circuit breaker: tripping open evicts the (possibly
        corrupt) programmed solver, so the half-open probe re-prepares
        from scratch instead of re-trying the same broken macro.
        Counts as an eviction; a later re-prepare is an ordinary miss.
        """
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.stats.evictions += 1
            return True

    def keys(self) -> list[PreparedKey]:
        """Resident keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
