"""Micro-batching: coalescing queued requests into multi-RHS solves.

Two pieces live here:

- :func:`execute_batch` — the **canonical execution kernel**. Every
  solve the service performs (and the sequential reference in
  :func:`repro.serve.service.run_sequential`) goes through this one
  function, so a request's result is a pure function of (prepared entry,
  ``b``, ``seed``) and never of how the scheduler happened to group it.
  Coalescible entries run the multi-RHS ``solve_many`` pipeline, whose
  per-column results are bitwise invariant to batch composition and
  order *by construction*: the shared kernel
  (:mod:`repro.core.common`) factors each INV system once but
  back-substitutes one column at a time, so no BLAS call ever sees the
  batch size (``tests/test_serve.py`` enforces the invariance).
- :class:`MicroBatcher` — per-worker bookkeeping that groups queued
  items by prepared key and hands out batches of at most
  ``max_batch_size``, oldest group first.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Sequence

import numpy as np

from repro.core.solution import LeanSolveResult, SolveResult
from repro.errors import ServeError
from repro.obs import tracer as obs
from repro.serve.cache import PreparedEntry

__all__ = ["MicroBatcher", "execute_batch"]


def execute_batch(
    entry: PreparedEntry,
    bs: Sequence[np.ndarray],
    seeds: Sequence[int],
    *,
    lean: bool = False,
) -> list[SolveResult]:
    """Execute one batch of right-hand sides against a prepared entry.

    Coalescible entries run the batched five-step pipeline (one
    factorization per INV step for the whole batch); the generator
    argument is vestigial there — offsets were warmed at preparation —
    so a fixed seed keeps the call deterministic by construction. Other
    entries execute per request, each consuming its own
    ``default_rng(seed)`` so results do not depend on batch composition
    even when the configuration draws fresh noise per operation.

    ``lean=True`` returns :class:`~repro.core.solution.LeanSolveResult`
    payloads — identical ``x``/``reference``/``relative_error`` bits,
    no per-step OpResult telemetry (whose construction dominates
    service-side time at scale).

    When tracing (:mod:`repro.obs`) is enabled, every call emits a
    ``serve.kernel`` span carrying the batch size and the summed
    ``analog_time_s`` of its results — latency attribution bottoms out
    at the paper's per-operation analog timing. Tracing observes only:
    the solve path and its random draws are identical either way.
    """
    if len(bs) != len(seeds):
        raise ServeError(f"got {len(bs)} right-hand sides but {len(seeds)} seeds")
    if not bs:
        return []
    tracer = obs.active()
    if not tracer.enabled:
        return _execute(entry, bs, seeds, lean)
    with tracer.start_span(
        "serve.kernel",
        attributes={
            "batch": len(bs),
            "solver": entry.key.solver,
            "digest": entry.key.matrix_digest[:12],
            "coalescible": entry.coalescible,
            "lean": lean,
        },
    ) as span:
        results = _execute(entry, bs, seeds, lean)
        span.set(
            analog_time_s=float(sum(r.analog_time_s for r in results))
        )
        return results


def _execute(entry, bs, seeds, lean):
    if entry.coalescible:
        return list(
            entry.prepared.solve_many(list(bs), np.random.default_rng(0), lean=lean)
        )
    results = [
        entry.prepared.solve(b, np.random.default_rng(seed))
        for b, seed in zip(bs, seeds)
    ]
    if lean:
        return [LeanSolveResult.from_result(result) for result in results]
    return results


class MicroBatcher:
    """Per-worker grouping of queued items by prepared key.

    Items are anything exposing a ``key`` attribute. Within a group,
    arrival order is preserved; across groups :meth:`next_key` serves
    round-robin — a newly seen key joins the back, and a group that
    still has items after a partial :meth:`take` rotates to the back —
    so one hot matrix cannot starve traffic for the others.
    """

    def __init__(self, max_batch_size: int):
        if max_batch_size < 1:
            raise ServeError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.max_batch_size = max_batch_size
        self._groups: OrderedDict = OrderedDict()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, item) -> None:
        """Queue one item under its prepared key."""
        group = self._groups.get(item.key)
        if group is None:
            group = deque()
            self._groups[item.key] = group
        group.append(item)
        self._count += 1

    def next_key(self):
        """Key of the group to serve next (``None`` when empty)."""
        return next(iter(self._groups), None)

    def pending_for(self, key) -> int:
        """Number of queued items under ``key``."""
        group = self._groups.get(key)
        return len(group) if group is not None else 0

    def peek(self, key):
        """Head item of ``key``'s group without removing it (or ``None``)."""
        group = self._groups.get(key)
        return group[0] if group else None

    def take(self, key) -> list:
        """Remove and return up to ``max_batch_size`` items of ``key``."""
        group = self._groups.get(key)
        if not group:
            return []
        batch = []
        while group and len(batch) < self.max_batch_size:
            batch.append(group.popleft())
        if not group:
            del self._groups[key]
        else:
            # Partial take: rotate the group to the back so a hot key
            # that refills faster than it drains cannot starve the
            # other keys on this shard.
            self._groups.move_to_end(key)
        self._count -= len(batch)
        return batch

    def drain(self) -> list:
        """Remove and return every queued item (for shutdown paths)."""
        items = [item for group in self._groups.values() for item in group]
        self._groups.clear()
        self._count = 0
        return items
