"""Shared-memory result transport between service workers and the front-end.

A process worker answers a coalesced batch with two ``(batch, n)``
blocks — solution rows and digital-reference rows, laid out
back-to-back in one segment. At production sizes that block is
megabytes per batch; round-tripping it through a
``multiprocessing.Queue`` would pickle-copy it twice (worker → pipe →
parent). Instead the worker publishes the block **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships a
tiny :class:`BlockRef` descriptor (name + shape + per-region dtypes)
over the queue; the front-end maps the same physical pages and copies
each row straight into its response frame.

Bit-identity is preserved by construction: the segment holds the
worker's raw bytes at the worker's dtypes — no serialization, rounding,
or re-encoding touches them between ``execute_batch`` and the wire (see
DESIGN.md). The regions carry independent dtypes because they genuinely
differ under precision tiers: a float32-tier solution rides next to its
always-float64 digital reference. (The transport used to hardwire
``dtype=float`` on both ends, silently upcasting float32 solutions —
and worse, a dtype disagreement between publisher and consumer was an
undetected reinterpretation of raw bytes.)

Lifecycle: the **consumer owns the segment**. :func:`publish_block`
unregisters the segment from the worker's resource tracker and closes
the worker-side mapping, so the front-end's :class:`AttachedBlock`
releases the pages (``close`` + ``unlink``) once every row of the batch
is consumed — or immediately, via :meth:`AttachedBlock.release`, when
the owning worker dies mid-batch. A worker SIGKILLed between publish
and descriptor delivery leaks its segment until interpreter exit, where
the (fork-shared) resource tracker reaps it.

Hosts without POSIX shared memory fall back to carrying the block bytes
inline in the :class:`BlockRef` (one pickle copy — correct, just
slower); ``ref.inline`` tells which path was taken.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.backend import canonical_dtype
from repro.errors import ServeError

__all__ = ["AttachedBlock", "BlockRef", "publish_block"]

#: Region dtypes a descriptor may declare (the canonical wire tiers).
_REGION_DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


@dataclass(frozen=True)
class BlockRef:
    """Descriptor of one published result block (queue-sized, picklable)."""

    #: Shared-memory segment name, or ``None`` for the inline fallback.
    name: str | None
    #: Rows in the block (requests of the batch).
    batch: int
    #: System size: each region holds ``batch`` rows of ``n`` values.
    n: int
    #: Inline payload when shared memory was unavailable.
    payload: bytes | None = None
    #: Element dtype of the solution region.
    dtype_x: str = "float64"
    #: Element dtype of the reference region.
    dtype_ref: str = "float64"

    @property
    def inline(self) -> bool:
        """True when the block bytes travelled in the descriptor itself."""
        return self.name is None


def _region_dtype(name: str) -> np.dtype:
    dt = _REGION_DTYPES.get(name)
    if dt is None:
        raise ServeError(
            f"unknown block dtype {name!r} (known: {sorted(_REGION_DTYPES)})"
        )
    return dt


def publish_block(xs: np.ndarray, references: np.ndarray) -> BlockRef:
    """Publish one batch's solution/reference rows; returns the descriptor.

    ``xs`` and ``references`` are ``(batch, n)`` arrays (a lone ``(n,)``
    pair is treated as a batch of one); each keeps its own canonical
    dtype — float32 stays float32, everything else lands at float64 —
    and the two may differ. Called in the worker process; the returned
    :class:`BlockRef` is what crosses the queue.
    """
    xs = np.asarray(xs)
    xs = np.ascontiguousarray(np.atleast_2d(xs), dtype=canonical_dtype(xs.dtype))
    references = np.asarray(references)
    references = np.ascontiguousarray(
        np.atleast_2d(references), dtype=canonical_dtype(references.dtype)
    )
    if xs.shape != references.shape:
        raise ServeError(
            f"solution block {xs.shape} and reference block "
            f"{references.shape} disagree"
        )
    ref = BlockRef(
        name=None,
        batch=xs.shape[0],
        n=xs.shape[1],
        dtype_x=xs.dtype.name,
        dtype_ref=references.dtype.name,
    )
    # Layout: the solution region's raw bytes, then the reference
    # region's, back to back (np.stack would promote mixed dtypes).
    nbytes = xs.nbytes + references.nbytes
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    except OSError:
        return replace(ref, payload=xs.tobytes() + references.tobytes())
    try:
        shm.buf[: xs.nbytes] = xs.tobytes()
        shm.buf[xs.nbytes : nbytes] = references.tobytes()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    # Hand ownership to the consumer: without this, the worker-side
    # tracker registration would flag (or reap) the segment when this
    # process exits, racing the front-end's read.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    name = shm.name
    shm.close()
    return replace(ref, name=name)


class AttachedBlock:
    """Front-end view of one published block; releases after the last row.

    ``row(i)`` returns independent ``(x, reference)`` copies, so the
    response encoder never holds a view into pages about to be
    unlinked. Thread-confined to the owning shard's pump thread — no
    internal locking.
    """

    def __init__(self, ref: BlockRef):
        self.ref = ref
        self._remaining = ref.batch
        dt_x = _region_dtype(ref.dtype_x)
        dt_ref = _region_dtype(ref.dtype_ref)
        count = ref.batch * ref.n
        x_nbytes = count * dt_x.itemsize
        needed = x_nbytes + count * dt_ref.itemsize
        if ref.inline:
            self._shm = None
            buf = ref.payload
            if len(buf) != needed:
                raise ServeError(
                    f"result block holds {len(buf)} bytes, expected {needed} "
                    f"for batch={ref.batch} n={ref.n} "
                    f"dtypes=({ref.dtype_x}, {ref.dtype_ref})"
                )
        else:
            self._shm = shared_memory.SharedMemory(name=ref.name)
            buf = self._shm.buf
            # Segment sizes are page-rounded upward, so undersized — the
            # signature of a publisher/consumer dtype disagreement — is
            # the detectable corruption.
            held = len(buf)
            if held < needed:
                self._shm.close()
                self._shm = None
                raise ServeError(
                    f"shared segment {ref.name!r} holds {held} bytes, "
                    f"needs {needed} for batch={ref.batch} n={ref.n} "
                    f"dtypes=({ref.dtype_x}, {ref.dtype_ref})"
                )
        self._xs = np.frombuffer(buf, dtype=dt_x, count=count).reshape(
            ref.batch, ref.n
        )
        self._refs = np.frombuffer(
            buf, dtype=dt_ref, count=count, offset=x_nbytes
        ).reshape(ref.batch, ref.n)

    @property
    def released(self) -> bool:
        """True once the segment has been unmapped and unlinked."""
        return self._xs is None

    def row(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy out row ``index`` (at its published dtype) and consume one count."""
        if self._xs is None:
            raise ServeError("result block already released")
        if not 0 <= index < self.ref.batch:
            raise ServeError(
                f"row {index} out of range for batch of {self.ref.batch}"
            )
        x = np.array(self._xs[index])
        reference = np.array(self._refs[index])
        self._remaining -= 1
        if self._remaining <= 0:
            self.release()
        return x, reference

    def release(self) -> None:
        """Unmap and unlink the segment (idempotent; also the crash path)."""
        if self._xs is None:
            return
        self._xs = None
        self._refs = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double-release race
                pass
            self._shm = None
