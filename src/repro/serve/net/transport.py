"""Shared-memory result transport between service workers and the front-end.

A process worker answers a coalesced batch with a ``(2, batch, n)``
float64 block — solution rows stacked over digital-reference rows. At
production sizes that block is megabytes per batch; round-tripping it
through a ``multiprocessing.Queue`` would pickle-copy it twice (worker →
pipe → parent). Instead the worker publishes the block **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships a
tiny :class:`BlockRef` descriptor (name + shape) over the queue; the
front-end maps the same physical pages and copies each row straight
into its response frame.

Bit-identity is preserved by construction: the segment holds the
worker's raw float64 bytes — no serialization, rounding, or re-encoding
touches them between ``execute_batch`` and the wire (see DESIGN.md).

Lifecycle: the **consumer owns the segment**. :func:`publish_block`
unregisters the segment from the worker's resource tracker and closes
the worker-side mapping, so the front-end's :class:`AttachedBlock`
releases the pages (``close`` + ``unlink``) once every row of the batch
is consumed — or immediately, via :meth:`AttachedBlock.release`, when
the owning worker dies mid-batch. A worker SIGKILLed between publish
and descriptor delivery leaks its segment until interpreter exit, where
the (fork-shared) resource tracker reaps it.

Hosts without POSIX shared memory fall back to carrying the block bytes
inline in the :class:`BlockRef` (one pickle copy — correct, just
slower); ``ref.inline`` tells which path was taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ServeError

__all__ = ["AttachedBlock", "BlockRef", "publish_block"]


@dataclass(frozen=True)
class BlockRef:
    """Descriptor of one published result block (queue-sized, picklable)."""

    #: Shared-memory segment name, or ``None`` for the inline fallback.
    name: str | None
    #: Rows in the block (requests of the batch).
    batch: int
    #: System size: each row region is ``(2, n)`` — solution, reference.
    n: int
    #: Inline payload when shared memory was unavailable.
    payload: bytes | None = None

    @property
    def inline(self) -> bool:
        """True when the block bytes travelled in the descriptor itself."""
        return self.name is None


def publish_block(xs: np.ndarray, references: np.ndarray) -> BlockRef:
    """Publish one batch's solution/reference rows; returns the descriptor.

    ``xs`` and ``references`` are ``(batch, n)`` float64 arrays (a lone
    ``(n,)`` pair is treated as a batch of one). Called in the worker
    process; the returned :class:`BlockRef` is what crosses the queue.
    """
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    references = np.atleast_2d(np.asarray(references, dtype=float))
    if xs.shape != references.shape:
        raise ServeError(
            f"solution block {xs.shape} and reference block "
            f"{references.shape} disagree"
        )
    block = np.stack([xs, references])  # (2, batch, n), C-contiguous
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, block.nbytes))
    except OSError:
        return BlockRef(
            name=None, batch=xs.shape[0], n=xs.shape[1], payload=block.tobytes()
        )
    try:
        view = np.ndarray(block.shape, dtype=float, buffer=shm.buf)
        view[:] = block
        del view
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    # Hand ownership to the consumer: without this, the worker-side
    # tracker registration would flag (or reap) the segment when this
    # process exits, racing the front-end's read.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    shm.close()
    return BlockRef(name=shm.name, batch=xs.shape[0], n=xs.shape[1])


class AttachedBlock:
    """Front-end view of one published block; releases after the last row.

    ``row(i)`` returns independent ``(x, reference)`` copies, so the
    response encoder never holds a view into pages about to be
    unlinked. Thread-confined to the owning shard's pump thread — no
    internal locking.
    """

    def __init__(self, ref: BlockRef):
        self.ref = ref
        self._remaining = ref.batch
        if ref.inline:
            self._shm = None
            self._block = np.frombuffer(ref.payload, dtype=float).reshape(
                2, ref.batch, ref.n
            )
        else:
            self._shm = shared_memory.SharedMemory(name=ref.name)
            self._block = np.ndarray(
                (2, ref.batch, ref.n), dtype=float, buffer=self._shm.buf
            )

    @property
    def released(self) -> bool:
        """True once the segment has been unmapped and unlinked."""
        return self._block is None

    def row(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy out row ``index`` and consume one reference count."""
        if self._block is None:
            raise ServeError("result block already released")
        if not 0 <= index < self.ref.batch:
            raise ServeError(
                f"row {index} out of range for batch of {self.ref.batch}"
            )
        x = np.array(self._block[0, index], dtype=float)
        reference = np.array(self._block[1, index], dtype=float)
        self._remaining -= 1
        if self._remaining <= 0:
            self.release()
        return x, reference

    def release(self) -> None:
        """Unmap and unlink the segment (idempotent; also the crash path)."""
        if self._block is None:
            return
        self._block = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double-release race
                pass
            self._shm = None
