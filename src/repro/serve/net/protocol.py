"""The ``repro.serve.net`` wire protocol: length-prefixed JSON + binary.

One frame carries one message::

    uint32 BE  frame length N (everything after these 4 bytes)
    uint32 BE  header length H
    H bytes    UTF-8 JSON header
    N-4-H      binary payload: the header's ``blobs`` lengths, concatenated

The JSON header holds the typed fields (message ``type``, request
``id``, status, error payload, telemetry); large numeric arrays — the
matrix, the right-hand side, solution blocks — travel as raw C-order
bytes in the binary section, so a round-trip is **bit-exact**: no
decimal formatting, no JSON float parsing, no pickling. ``blobs`` in
the header lists the byte length of each binary block in order, and an
optional ``dtypes`` list names each block's element dtype
(``"float64"`` or ``"float32"``). A missing/short ``dtypes`` list means
float64 for the unnamed blocks — exactly the historical wire form, so
new peers interoperate with old ones in both directions. (The codec
used to hard-code float64, silently upcasting float32 payloads in
transit and breaking the precision-tier contract end to end.)

Message vocabulary (requests → responses):

- ``solve`` — blobs ``[b]`` or ``[b, matrix]``; fields ``solver``,
  ``seed``, ``prep_seed``, ``deadline_ms``, ``tenant``, ``digest``,
  ``n``, and optionally ``trace`` (a :meth:`repro.obs.Span.context`
  dict — ``{"trace_id", "span_id"}`` — that parents the server-side
  request span under the client's; servers without tracing ignore it,
  old clients simply omit it).  Answered by ``result`` (status
  ``ok``/``degraded``, blobs ``[x, reference]``, per-request telemetry)
  or ``error`` (typed status + :func:`repro.errors.error_to_wire`
  payload).
- ``metrics`` — answered by a ``metrics`` response whose ``metrics``
  field is :meth:`repro.serve.metrics.ServiceMetrics.as_json` data.
- ``ping`` — answered by ``pong`` (liveness / protocol smoke).

Responses carry the request's ``id`` and may arrive out of order: the
server answers each request as its worker finishes, so one slow solve
never convoys the connection (the client matches responses by id).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Sequence

import numpy as np

from repro.core.backend import canonical_dtype
from repro.errors import WireProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "STATUS_BREAKER_OPEN",
    "STATUS_CLOSED",
    "STATUS_DEADLINE",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_SHARD_FAILED",
    "STATUS_SHED",
    "STATUS_UNKNOWN_DIGEST",
    "array_dtype_name",
    "array_from_bytes",
    "array_to_bytes",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "recv_frame",
]

#: Hard bound on one frame (guards against a corrupt/hostile length
#: prefix allocating unbounded memory). 512 MiB admits a ~8k x 8k
#: float64 matrix payload.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_LEN = struct.Struct(">I")

# Typed response statuses. ``ok``/``degraded`` carry result blobs;
# every other status carries a typed wire error payload.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_SHED = "shed"
STATUS_OVERLOADED = "overloaded"
STATUS_DEADLINE = "deadline"
STATUS_BREAKER_OPEN = "breaker-open"
STATUS_SHARD_FAILED = "shard-failed"
STATUS_UNKNOWN_DIGEST = "unknown-digest"
STATUS_CLOSED = "closed"
STATUS_FAILED = "failed"


#: Element dtypes a binary block may declare. The wire speaks canonical
#: tiers only: float32 travels as-is, everything else as float64.
_WIRE_DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


def array_dtype_name(array: np.ndarray) -> str:
    """The wire dtype name :func:`array_to_bytes` will encode ``array`` at.

    This is what belongs in the header's ``dtypes`` list for the
    corresponding blob.
    """
    return canonical_dtype(np.asarray(array).dtype).name


def array_to_bytes(array: np.ndarray) -> bytes:
    """Raw C-order bytes of an array (the bit-exact wire form).

    float32 arrays stay float32; every other dtype coerces to float64
    (matching :func:`repro.core.backend.canonical_dtype`, so the wire
    can never smuggle a dtype the engines don't speak).
    """
    array = np.asarray(array)
    return np.ascontiguousarray(
        array, dtype=canonical_dtype(array.dtype)
    ).tobytes()


def array_from_bytes(blob, shape: tuple[int, ...], dtype: str = "float64") -> np.ndarray:
    """Inverse of :func:`array_to_bytes`; validates dtype and byte count.

    ``dtype`` is the wire name from the header's ``dtypes`` list
    (callers pass ``"float64"`` when the peer omitted it — the
    old-protocol default). Raises :class:`WireProtocolError` for an
    unknown dtype name or a blob whose size disagrees with
    ``shape`` x itemsize.
    """
    dt = _WIRE_DTYPES.get(dtype)
    if dt is None:
        raise WireProtocolError(
            f"unknown wire dtype {dtype!r} (known: {sorted(_WIRE_DTYPES)})"
        )
    expected = int(np.prod(shape)) * dt.itemsize
    if len(blob) != expected:
        raise WireProtocolError(
            f"binary block holds {len(blob)} bytes, expected {expected} "
            f"for {dt.name} shape {shape}"
        )
    return np.frombuffer(bytes(blob), dtype=dt).reshape(shape)


def encode_frame(header: dict, blobs: Sequence[bytes] = ()) -> bytes:
    """Serialize one message into its wire frame.

    ``header["blobs"]`` is (re)written from the actual blob lengths, so
    encoders cannot desynchronize the header from the payload.
    """
    header = dict(header)
    header["blobs"] = [len(blob) for blob in blobs]
    head = json.dumps(header, separators=(",", ":")).encode()
    body_len = 4 + len(head) + sum(len(blob) for blob in blobs)
    if body_len > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    parts = [_LEN.pack(body_len), _LEN.pack(len(head)), head]
    parts.extend(bytes(blob) for blob in blobs)
    return b"".join(parts)


def decode_frame(body: bytes) -> tuple[dict, list[memoryview]]:
    """Split one frame body (everything after the length prefix).

    Returns ``(header, blobs)`` where each blob is a zero-copy
    memoryview into ``body`` sized by the header's ``blobs`` list.
    """
    if len(body) < 4:
        raise WireProtocolError(f"frame body of {len(body)} bytes has no header length")
    (head_len,) = _LEN.unpack_from(body, 0)
    if 4 + head_len > len(body):
        raise WireProtocolError(
            f"header length {head_len} overruns frame of {len(body)} bytes"
        )
    try:
        header = json.loads(body[4 : 4 + head_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"frame header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise WireProtocolError(f"frame header must be an object, got {type(header).__name__}")
    lengths = header.get("blobs", [])
    view = memoryview(body)
    blobs: list[memoryview] = []
    offset = 4 + head_len
    for length in lengths:
        if not isinstance(length, int) or length < 0 or offset + length > len(body):
            raise WireProtocolError(f"blob lengths {lengths} overrun frame of {len(body)} bytes")
        blobs.append(view[offset : offset + length])
        offset += length
    if offset != len(body):
        raise WireProtocolError(
            f"{len(body) - offset} trailing bytes after declared blobs"
        )
    return header, blobs


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict, list[memoryview]] | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise WireProtocolError("connection closed mid-length-prefix") from None
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireProtocolError("connection closed mid-frame") from None
    return decode_frame(body)


def recv_frame(sock) -> tuple[dict, list[memoryview]] | None:
    """Blocking counterpart of :func:`read_frame` for a plain socket."""
    prefix = _recv_exactly(sock, 4)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES"
        )
    body = _recv_exactly(sock, length)
    if body is None:
        raise WireProtocolError("connection closed mid-frame")
    return decode_frame(body)


def _recv_exactly(sock, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise WireProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
