"""Process-based service workers behind the network front-end.

The in-process :class:`~repro.serve.service.SolverService` shards onto
*threads*; this pool shards the same way onto *processes*, so heavy
solves scale past the GIL on multi-core hosts. Each worker process owns
exactly what a thread shard owns — a warm
:class:`~repro.serve.cache.PreparedSolverCache`, a
:class:`~repro.serve.batching.MicroBatcher`, per-key circuit breakers —
and executes every batch through the same canonical kernel
(:func:`~repro.serve.batching.execute_batch`), so results are
bit-identical to :func:`~repro.serve.service.run_sequential` regardless
of process count or scheduling.

Plumbing per shard: an unbounded request queue in (small
:class:`WorkItem` messages — the rhs vector, plus the matrix payload
only the first time a digest is seen), a response queue out (tiny
descriptors), and the actual ``(batch, n)`` solution blocks crossing via
:mod:`repro.serve.net.transport` shared memory. A **pump thread** in the
front-end process drains each shard's responses, copies result rows out
of shared memory, and fires the completion callbacks.

Failure story:

- the parent detects worker death (the pump notices ``is_alive()`` went
  false), fails every in-flight request of that shard with
  :class:`~repro.errors.ShardFailedError` (retryable), and restarts the
  worker with **fresh queues** up to the policy's
  ``max_shard_restarts`` — fresh queues make "which requests died with
  the worker" exact: everything in flight did, nothing else;
- a restart empties the worker's matrix table, so digest-only traffic
  may answer :class:`~repro.errors.UnknownDigestError`; the parent
  forgets the digest and the network client transparently re-sends the
  payload;
- deadlines are absolute wall-clock (``time.time()``) instants, valid
  across the process boundary on one host; expired items fail with
  :class:`~repro.errors.DeadlineExceededError` before occupying a
  batch slot;
- chaos (``REPRO_CHAOS``) injects inside the worker: solve failures and
  slow calls exercise bisection/breakers/fallback, and
  :class:`~repro.testing.chaos.WorkerKillChaos` escalates to a genuine
  ``SIGKILL`` of the worker process (budgeted through the plan's
  ``state_dir`` markers, so a resubmitted request cannot kill every
  restart forever).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
    UnknownDigestError,
    error_to_wire,
)
from repro.obs import tracer as obs
from repro.serve.batching import MicroBatcher, execute_batch
from repro.serve.cache import PreparedKey, PreparedSolverCache, prepare_entry
from repro.serve.metrics import MetricsRecorder
from repro.serve.net.protocol import (
    STATUS_BREAKER_OPEN,
    STATUS_CLOSED,
    STATUS_DEADLINE,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHARD_FAILED,
    STATUS_UNKNOWN_DIGEST,
)
from repro.serve.net.transport import AttachedBlock, BlockRef, publish_block
from repro.serve.requests import SolveRequest
from repro.serve.resilience import DEGRADABLE_ERRORS, CircuitBreaker, digital_fallback
from repro.serve.service import ServiceConfig, resolve_request
from repro.testing.chaos import WorkerKillChaos, chaos_entry_transform, plan_from_env

__all__ = ["ProcessWorkerPool", "WorkDone", "WorkFailed", "WorkItem", "WorkOutcome"]

#: Idle-poll period of worker loops and pump threads.
_POLL_S = 0.02

#: Non-failure statuses (the outcome carries result arrays).
_SUCCESS_STATUSES = (STATUS_OK, STATUS_DEGRADED)

_ERROR_STATUS = {
    "DeadlineExceededError": STATUS_DEADLINE,
    "CircuitOpenError": STATUS_BREAKER_OPEN,
    "UnknownDigestError": STATUS_UNKNOWN_DIGEST,
    "ShardFailedError": STATUS_SHARD_FAILED,
    "ServiceClosedError": STATUS_CLOSED,
}


def status_for_error(exc: BaseException) -> str:
    """Typed wire status for a request-level failure."""
    return _ERROR_STATUS.get(type(exc).__name__, STATUS_FAILED)


# ----------------------------------------------------------------------
# queue messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkItem:
    """One request crossing the request queue (parent → worker)."""

    id: int
    digest: str
    b: np.ndarray
    #: Matrix payload; ``None`` once the worker is known to hold the digest.
    matrix: np.ndarray | None = None
    solver: str | None = None
    prep_seed: int | None = None
    seed: int = 0
    #: Absolute wall-clock (``time.time()``) expiry, or ``None``.
    deadline_at: float | None = None
    #: Propagated trace context (:meth:`repro.obs.Span.context` of the
    #: server-side span), or ``None``; stitches the cross-process tree.
    trace: dict | None = None


@dataclass(frozen=True)
class WorkDone:
    """Successful response descriptor (worker → parent)."""

    id: int
    status: str
    block: BlockRef
    row: int
    telemetry: dict
    #: Counter deltas since the worker's previous message.
    counters: dict
    #: Cumulative (hits, misses, evictions, prepare_s) of the worker cache.
    cache: tuple


@dataclass(frozen=True)
class WorkFailed:
    """Failure response (worker → parent); the error is wire-encoded."""

    id: int
    status: str
    error: dict
    digest: str
    counters: dict
    cache: tuple


@dataclass(frozen=True)
class WorkOutcome:
    """What the pool delivers to a completion callback."""

    id: int
    status: str
    x: np.ndarray | None = None
    reference: np.ndarray | None = None
    telemetry: dict = field(default_factory=dict)
    error: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the outcome carries result arrays."""
        return self.status in _SUCCESS_STATUSES


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


class _Job:
    """A :class:`WorkItem` resolved to its cache identity (batcher item)."""

    __slots__ = ("item", "key", "hardware", "span", "admitted_at")

    def __init__(self, item: WorkItem, key: PreparedKey, hardware):
        self.item = item
        self.key = key
        self.hardware = hardware
        #: Worker-side request span (NOOP when tracing is disabled).
        self.span = obs.NOOP_SPAN
        self.admitted_at = 0.0


class _RequestView:
    """Duck-typed stand-in for :class:`SolveRequest` in ``resolve_request``.

    Carries only the identity fields — the matrix may be absent (digest
    known to the worker), which a real ``SolveRequest`` cannot express.
    """

    __slots__ = ("digest", "solver", "hardware", "prep_seed")

    def __init__(self, digest: str, solver: str | None, prep_seed: int | None):
        self.digest = digest
        self.solver = solver
        self.hardware = None  # net requests always use the service default
        self.prep_seed = prep_seed


class _WorkerState:
    """Everything one worker process owns (mirrors a thread ``_Shard``)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.cache = PreparedSolverCache(config.cache_capacity)
        self.batcher = MicroBatcher(config.max_batch_size)
        self.breakers: dict[PreparedKey, CircuitBreaker] = {}
        #: digest → matrix, bounded LRU (evictions answer UnknownDigestError).
        self.matrices: dict[str, np.ndarray] = {}
        self.matrix_capacity = max(64, 4 * config.cache_capacity)
        self.plan = plan_from_env()
        self.entry_transform = config.entry_transform
        if self.entry_transform is None and self.plan is not None:
            self.entry_transform = chaos_entry_transform(self.plan)
        self.prepare_s = 0.0
        self.counters = {"retries": 0, "breaker_transitions": 0, "batch_sizes": []}

    def drain_counters(self) -> dict:
        out = {k: v for k, v in self.counters.items() if v}
        self.counters = {"retries": 0, "breaker_transitions": 0, "batch_sizes": []}
        return out

    def cache_snapshot(self) -> tuple:
        stats = self.cache.stats
        return (stats.hits, stats.misses, stats.evictions, self.prepare_s)


def _worker_main(config: ServiceConfig, request_q, response_q) -> None:
    """Entry point of one worker process (module-level for picklability)."""
    if config.trace_dir is not None:
        # Fresh tracer in the child: own lock, own spans-<pid>.jsonl.
        obs.configure(trace_dir=config.trace_dir)
    state = _WorkerState(config)
    while True:
        if not len(state.batcher):
            try:
                item = request_q.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            if item is None:
                return
            _admit(state, item, response_q)
        _drain(state, request_q, response_q)
        key = state.batcher.next_key()
        if key is None:
            continue
        _serve_key(state, key, request_q, response_q)


def _drain(state: _WorkerState, request_q, response_q) -> None:
    while len(state.batcher) < state.config.queue_depth:
        try:
            item = request_q.get_nowait()
        except queue.Empty:
            return
        if item is None:
            # Keep draining until exit so close() never strands a put.
            raise SystemExit(0)
        _admit(state, item, response_q)


def _admit(state: _WorkerState, item: WorkItem, response_q) -> None:
    """Resolve one item to its cache identity; fail it typed if impossible."""
    if item.matrix is not None:
        state.matrices[item.digest] = item.matrix
        while len(state.matrices) > state.matrix_capacity:
            state.matrices.pop(next(iter(state.matrices)))
    elif item.digest not in state.matrices:
        _respond_failure(
            state,
            response_q,
            item,
            UnknownDigestError(
                f"worker holds no matrix for digest {item.digest[:12]} "
                "(restarted or evicted); re-send with the payload"
            ),
        )
        return
    try:
        key, hardware = resolve_request(
            _RequestView(item.digest, item.solver, item.prep_seed), state.config
        )
    except Exception as exc:
        _respond_failure(state, response_q, item, exc)
        return
    job = _Job(item, key, hardware)
    tracer = obs.active()
    if tracer.enabled:
        # item.trace stitches this span under the server-side request
        # span even though we are in a different process.
        job.span = tracer.start_span(
            "shard.request",
            trace=item.trace,
            attributes={
                "digest": item.digest[:12],
                "seed": item.seed,
                "pid": os.getpid(),
            },
        )
        job.admitted_at = time.perf_counter()
    state.batcher.add(job)


def _serve_key(state: _WorkerState, key: PreparedKey, request_q, response_q) -> None:
    """Execute (or fail) the pending group for one prepared key."""
    config = state.config
    breaker = _breaker_for(state, key)
    if breaker is not None and not breaker.allow():
        _fail_key_group(
            state,
            key,
            response_q,
            CircuitOpenError(
                f"circuit breaker open for prepared solver {key.solver!r} "
                f"on matrix {key.matrix_digest[:12]}",
                retry_after_s=breaker.retry_after_s(),
            ),
        )
        return
    entry = _entry_for(state, key, breaker, response_q)
    if entry is None:
        return
    if (
        entry.coalescible
        and config.max_linger_s > 0.0
        and state.batcher.pending_for(key) < config.max_batch_size
    ):
        _linger(state, key, request_q, response_q)
    batch = _expire(state, state.batcher.take(key), response_q)
    if not batch:
        return
    state.cache.credit_hits(len(batch) - 1)
    state.counters["batch_sizes"].append(len(batch))
    start = time.perf_counter()
    tracer = obs.active()
    batch_span = obs.NOOP_SPAN
    if tracer.enabled:
        for job in batch:
            # Retroactive: admit → execution-start gap, no extra clock
            # reads on the untraced path.
            tracer.record_span(
                "shard.queue",
                parent=job.span,
                start_s=job.admitted_at,
                end_s=start,
            )
        batch_span = tracer.start_span(
            "shard.batch",
            attributes={
                "size": len(batch),
                "solver": key.solver,
                "pid": os.getpid(),
                "members": [job.span.span_id for job in batch],
            },
            start_s=start,
        )
    finished: list[tuple[_Job, object, str]] = []
    if tracer.enabled:
        with tracer.use_span(batch_span):
            _execute(state, entry, batch, breaker, finished)
    else:
        _execute(state, entry, batch, breaker, finished)
    per_request = (time.perf_counter() - start) / len(batch)
    if tracer.enabled:
        solved = time.perf_counter()
        for job, result, status in finished:
            if status:
                tracer.record_span(
                    "shard.solve",
                    parent=job.span,
                    start_s=start,
                    end_s=solved,
                    attributes={
                        "batch_span": batch_span.span_id,
                        "analog_time_s": float(
                            getattr(result, "analog_time_s", 0.0)
                        ),
                    },
                )
        batch_span.end()
    _publish(state, finished, response_q, per_request)


def _breaker_for(state: _WorkerState, key: PreparedKey) -> CircuitBreaker | None:
    policy = state.config.resilience
    if policy.breaker_threshold < 1:
        return None
    breaker = state.breakers.get(key)
    if breaker is None:

        def count():
            state.counters["breaker_transitions"] += 1

        breaker = CircuitBreaker(
            policy.breaker_threshold, policy.breaker_reset_s, on_transition=count
        )
        state.breakers[key] = breaker
    return breaker


def _record_key_failure(
    state: _WorkerState, key: PreparedKey, breaker: CircuitBreaker | None
) -> None:
    if breaker is not None and breaker.record_failure():
        state.cache.invalidate(key)


def _entry_for(state: _WorkerState, key: PreparedKey, breaker, response_q):
    head = state.batcher.peek(key)
    matrix = state.matrices.get(head.item.digest)
    if matrix is None:
        _fail_key_group(
            state,
            key,
            response_q,
            UnknownDigestError(
                f"worker evicted the matrix for digest {key.matrix_digest[:12]}; "
                "re-send with the payload"
            ),
        )
        return None

    def factory():
        entry = prepare_entry(key, matrix, head.hardware)
        state.prepare_s += entry.prepare_seconds
        if state.entry_transform is not None:
            entry = state.entry_transform(entry)
        return entry

    try:
        return state.cache.get_or_prepare(key, factory)
    except Exception as exc:
        _record_key_failure(state, key, breaker)
        _fail_key_group(state, key, response_q, exc)
        return None


def _linger(state: _WorkerState, key: PreparedKey, request_q, response_q) -> None:
    deadline = time.perf_counter() + state.config.max_linger_s
    while (
        state.batcher.pending_for(key) < state.config.max_batch_size
        and len(state.batcher) < state.config.queue_depth
    ):
        remaining = deadline - time.perf_counter()
        if remaining <= 0.0:
            return
        try:
            item = request_q.get(timeout=remaining)
        except queue.Empty:
            return
        if item is None:
            raise SystemExit(0)
        _admit(state, item, response_q)


def _expire(state: _WorkerState, batch: list[_Job], response_q) -> list[_Job]:
    live = []
    now = time.time()
    for job in batch:
        if job.item.deadline_at is not None and now >= job.item.deadline_at:
            error = DeadlineExceededError(
                "deadline expired before the request reached execution"
            )
            job.span.fail(error)
            _respond_failure(state, response_q, job.item, error)
        else:
            live.append(job)
    return live


def _run_kernel(state: _WorkerState, entry, jobs: list[_Job]):
    """``execute_batch`` with the chaos-kill escalation seam.

    :class:`WorkerKillChaos` becomes a genuine ``SIGKILL`` of this
    process — unless the plan's ``state_dir`` kill budget for the
    triggering rhs is exhausted, in which case the batch re-executes
    clean (the chaos wrapper kills each tag at most once per process).
    """
    while True:
        try:
            return execute_batch(
                entry,
                [j.item.b for j in jobs],
                [j.item.seed for j in jobs],
                lean=True,
            )
        except WorkerKillChaos as chaos:
            plan = state.plan
            tag = getattr(chaos, "tag", "")
            if (
                plan is not None
                and plan.state_dir is not None
                and not plan._consume_budget("kill", tag, plan.max_kills_per_unit)
            ):
                continue
            os.kill(os.getpid(), signal.SIGKILL)
            raise  # pragma: no cover - unreachable


def _execute(state, entry, jobs: list[_Job], breaker, finished: list) -> None:
    try:
        results = _run_kernel(state, entry, jobs)
    except Exception:
        _isolate(state, entry, jobs, breaker, finished)
    else:
        finished.extend((job, result, STATUS_OK) for job, result in zip(jobs, results))
        if breaker is not None:
            breaker.record_success()


def _isolate(state, entry, jobs: list[_Job], breaker, finished: list) -> None:
    """Bisect a failed batch; same blast-radius semantics as the thread tier."""
    if len(jobs) == 1:
        job = jobs[0]
        state.counters["retries"] += 1
        try:
            result = _run_kernel(state, entry, jobs)[0]
        except Exception as exc:
            _degrade_or_fail(state, entry, job, exc, breaker, finished)
        else:
            finished.append((job, result, STATUS_OK))
            if breaker is not None:
                breaker.record_success()
        return
    mid = len(jobs) // 2
    for half in (jobs[:mid], jobs[mid:]):
        state.counters["retries"] += 1
        try:
            results = _run_kernel(state, entry, half)
        except Exception:
            _isolate(state, entry, half, breaker, finished)
        else:
            finished.extend(
                (job, result, STATUS_OK) for job, result in zip(half, results)
            )
            if breaker is not None:
                breaker.record_success()


def _degrade_or_fail(state, entry, job: _Job, exc, breaker, finished: list) -> None:
    _record_key_failure(state, entry.key, breaker)
    policy = state.config.resilience
    if policy.fallback == "digital" and isinstance(exc, DEGRADABLE_ERRORS):
        matrix = state.matrices.get(job.item.digest)
        if matrix is not None:
            try:
                result = digital_fallback(
                    SolveRequest(matrix=matrix, b=job.item.b, digest=job.item.digest),
                    lean=True,
                )
            except Exception as fallback_exc:
                finished.append((job, fallback_exc, None))
                return
            finished.append((job, result, STATUS_DEGRADED))
            return
    finished.append((job, exc, None))


def _publish(state, finished: list, response_q, per_request_s: float) -> None:
    """Ship one batch's outcomes: one shm block, one message per request."""
    successes = [(job, result, status) for job, result, status in finished if status]
    failures = [(job, result) for job, result, status in finished if status is None]
    counters = state.drain_counters()
    counters["service_per_request_s"] = per_request_s
    cache = state.cache_snapshot()
    # Group by solution dtype before stacking: a float32-tier batch may
    # carry a float64 degraded-fallback row, and np.stack across the mix
    # would silently upcast the analog rows. One group (one block) in
    # the common case.
    groups: dict[str, list] = {}
    for job, result, status in successes:
        groups.setdefault(np.asarray(result.x).dtype.name, []).append(
            (job, result, status)
        )
    for group in groups.values():
        block = publish_block(
            np.stack([result.x for _, result, _ in group]),
            np.stack([result.reference for _, result, _ in group]),
        )
        for row, (job, result, status) in enumerate(group):
            job.span.end(status="ok" if status == STATUS_OK else "degraded")
            response_q.put(
                WorkDone(
                    id=job.item.id,
                    status=status,
                    block=block,
                    row=row,
                    telemetry=_telemetry(result, len(finished)),
                    counters=counters,
                    cache=cache,
                )
            )
            counters = {}
    for job, exc in failures:
        job.span.fail(exc)
        response_q.put(
            WorkFailed(
                id=job.item.id,
                status=status_for_error(exc),
                error=error_to_wire(exc),
                digest=job.item.digest,
                counters=counters,
                cache=cache,
            )
        )
        counters = {}


def _telemetry(result, batch: int) -> dict:
    metadata = {
        key: (float(value) if isinstance(value, (int, float, np.floating)) else value)
        for key, value in result.metadata.items()
        if isinstance(value, (str, bool, int, float, np.floating))
    }
    return {
        "solver": result.solver,
        "saturated": bool(result.saturated),
        "analog_time_s": float(result.analog_time_s),
        "batch": batch,
        "metadata": metadata,
    }


def _respond_failure(state: _WorkerState, response_q, item: WorkItem, exc) -> None:
    response_q.put(
        WorkFailed(
            id=item.id,
            status=status_for_error(exc),
            error=error_to_wire(exc),
            digest=item.digest,
            counters=state.drain_counters(),
            cache=state.cache_snapshot(),
        )
    )


def _fail_key_group(state: _WorkerState, key: PreparedKey, response_q, exc) -> None:
    while True:
        group = state.batcher.take(key)
        if not group:
            return
        for job in group:
            job.span.fail(exc)
            _respond_failure(state, response_q, job.item, exc)


# ----------------------------------------------------------------------
# front-end pool
# ----------------------------------------------------------------------


class _Pending:
    """One in-flight request as the front end tracks it."""

    __slots__ = ("callback", "submitted_at")

    def __init__(self, callback: Callable[[WorkOutcome], None], submitted_at: float):
        self.callback = callback
        self.submitted_at = submitted_at


class _ProcShard:
    """One worker process plus the parent-side state that shadows it."""

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.Lock()
        self.generation = 0
        self.process = None
        self.request_q = None
        self.response_q = None
        self.pump: threading.Thread | None = None
        #: id → _Pending of requests handed to the current incarnation.
        self.inflight: dict[int, _Pending] = {}
        #: Digests the current worker incarnation holds matrices for.
        self.known_digests: set[str] = set()
        #: Attached (partially consumed) shm blocks, by segment name.
        self.blocks: dict[str, AttachedBlock] = {}
        self.service_ewma_s = 0.0
        self.restarts = 0
        self.closing = False
        self.dead = False
        #: True between a death being handled and the fresh queues being
        #: live; submits in that window are refused (retryable) instead
        #: of landing on the orphaned incarnation's queue.
        self.restarting = False
        #: Cache counters carried over from dead incarnations.
        self.cache_base = (0, 0, 0, 0.0)
        self.cache_latest = (0, 0, 0, 0.0)

    def backlog(self) -> int:
        return len(self.inflight)

    def cache_totals(self) -> tuple:
        return tuple(a + b for a, b in zip(self.cache_base, self.cache_latest))


class ProcessWorkerPool:
    """Digest-sharded pool of worker processes with shared-memory results.

    The network server submits with a completion callback; the shard's
    pump thread invokes it with a :class:`WorkOutcome` once the worker
    answers (or the shard dies). Thread-safe; one pump thread per shard
    incarnation.
    """

    def __init__(self, config: ServiceConfig, recorder: MetricsRecorder | None = None):
        self.config = config
        self.recorder = recorder or MetricsRecorder()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()
        self._closed = False
        self._shards = [_ProcShard(i) for i in range(config.workers)]
        for shard in self._shards:
            self._start_shard(shard)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_shard(self, shard: _ProcShard) -> None:
        """Launch a (fresh) worker incarnation. Caller holds no locks."""
        shard.request_q = self._ctx.Queue()
        shard.response_q = self._ctx.Queue()
        shard.known_digests = set()
        shard.generation += 1
        shard.process = self._ctx.Process(
            target=_worker_main,
            args=(self.config, shard.request_q, shard.response_q),
            name=f"repro-net-worker-{shard.index}",
            daemon=True,
        )
        shard.process.start()
        shard.pump = threading.Thread(
            target=self._pump,
            args=(shard, shard.generation),
            name=f"repro-net-pump-{shard.index}.{shard.generation}",
            daemon=True,
        )
        shard.pump.start()
        with shard.lock:
            shard.restarting = False

    @staticmethod
    def _retire_queues(*queues) -> None:
        """Release queue resources for a finished/killed incarnation.

        ``cancel_join_thread`` matters: multiprocessing joins every
        queue's feeder thread at interpreter exit, and a feeder holding
        data for a SIGKILLed reader never drains — without this the
        parent process completes all work and then hangs on exit.
        """
        for q in queues:
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Stop the workers; fail anything still in flight as closed."""
        self._closed = True
        for shard in self._shards:
            with shard.lock:
                shard.closing = True
                request_q = shard.request_q
            try:
                request_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for shard in self._shards:
            process, pump = shard.process, shard.pump
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.kill()
                    process.join(timeout=5.0)
            if pump is not None:
                pump.join(timeout=5.0)
            self._fail_inflight(
                shard,
                ServiceClosedError("service closed while this request was in flight"),
            )
            self._retire_queues(shard.request_q, shard.response_q)
            with shard.lock:
                for block in shard.blocks.values():
                    block.release()
                shard.blocks.clear()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def shard_index(self, digest: str) -> int:
        """Stable digest → shard routing (same scheme as the cache key)."""
        return int(digest[:16], 16) % len(self._shards)

    def estimated_wait_s(self, digest: str) -> float:
        """Backlog × recent service time of the owning shard (shed input)."""
        shard = self._shards[self.shard_index(digest)]
        with shard.lock:
            return shard.backlog() * shard.service_ewma_s

    def submit(
        self,
        *,
        request_id: int,
        digest: str,
        b: np.ndarray,
        matrix: np.ndarray | None,
        solver: str | None,
        prep_seed: int | None,
        seed: int,
        deadline_at: float | None,
        callback: Callable[[WorkOutcome], None],
        trace: dict | None = None,
    ) -> None:
        """Hand one request to its shard; ``callback`` fires exactly once.

        Raises typed errors for conditions known before dispatch: a dead
        shard (:class:`ShardFailedError`), a full shard
        (:class:`ServiceOverloadedError` — the network tier always
        rejects rather than blocking the event loop), and a digest-only
        request whose matrix this worker incarnation has never seen
        (:class:`UnknownDigestError` — decided parent-side, saving the
        round trip).
        """
        if self._closed:
            raise ServiceClosedError("service is closed; no further requests accepted")
        shard = self._shards[self.shard_index(digest)]
        with shard.lock:
            if shard.dead:
                raise ShardFailedError(
                    f"shard {shard.index} is dead (crashed {shard.restarts} times); "
                    "request refused"
                )
            if shard.restarting:
                raise ShardFailedError(
                    f"shard {shard.index} is restarting after a crash; retry shortly"
                )
            if len(shard.inflight) >= self.config.queue_depth:
                raise ServiceOverloadedError(
                    f"shard {shard.index} has {len(shard.inflight)} requests "
                    "in flight (queue_depth reached)"
                )
            if matrix is None and digest not in shard.known_digests:
                raise UnknownDigestError(
                    f"server holds no matrix for digest {digest[:12]}; "
                    "re-send with the payload"
                )
            shard.inflight[request_id] = _Pending(callback, time.perf_counter())
            if matrix is not None:
                shard.known_digests.add(digest)
            shard.request_q.put(
                WorkItem(
                    id=request_id,
                    digest=digest,
                    b=b,
                    matrix=matrix,
                    solver=solver,
                    prep_seed=prep_seed,
                    seed=seed,
                    deadline_at=deadline_at,
                    trace=trace,
                )
            )
        self.recorder.record_submit()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def cache_stats(self):
        """Aggregated prepared-cache stats across shards (all incarnations)."""
        from repro.serve.cache import CacheStats

        totals = [shard.cache_totals() for shard in self._shards]
        return CacheStats(
            hits=sum(t[0] for t in totals),
            misses=sum(t[1] for t in totals),
            evictions=sum(t[2] for t in totals),
        )

    def alive_workers(self) -> int:
        """How many shards currently have a live worker process."""
        return sum(
            1
            for shard in self._shards
            if shard.process is not None and shard.process.is_alive()
        )

    # ------------------------------------------------------------------
    # pump (parent side of each shard)
    # ------------------------------------------------------------------
    def _pump(self, shard: _ProcShard, generation: int) -> None:
        while True:
            try:
                msg = shard.response_q.get(timeout=_POLL_S)
            except queue.Empty:
                with shard.lock:
                    if shard.generation != generation:
                        return
                    process = shard.process
                if process is None or not process.is_alive():
                    self._handle_death(shard, generation)
                    return
                continue
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                return
            self._handle_message(shard, msg)

    def _handle_message(self, shard: _ProcShard, msg) -> None:
        now = time.perf_counter()
        self._absorb_counters(shard, msg.counters, msg.cache)
        with shard.lock:
            pending = shard.inflight.pop(msg.id, None)
        if isinstance(msg, WorkDone):
            x, reference = self._consume_row(shard, msg.block, msg.row)
            outcome = WorkOutcome(
                id=msg.id,
                status=msg.status,
                x=x,
                reference=reference,
                telemetry=msg.telemetry,
            )
            if msg.status == STATUS_DEGRADED:
                self.recorder.record_degraded()
        else:
            if msg.status == STATUS_UNKNOWN_DIGEST:
                with shard.lock:
                    shard.known_digests.discard(msg.digest)
            if msg.status == STATUS_DEADLINE:
                self.recorder.record_deadline_miss()
            outcome = WorkOutcome(id=msg.id, status=msg.status, error=msg.error)
        if pending is None:  # pragma: no cover - defensive (stale response)
            return
        self.recorder.record_done(
            now - pending.submitted_at, failed=not outcome.ok
        )
        pending.callback(outcome)

    def _consume_row(self, shard: _ProcShard, ref: BlockRef, row: int):
        if ref.inline:
            return AttachedBlock(ref).row(row)
        with shard.lock:
            block = shard.blocks.get(ref.name)
            if block is None:
                block = AttachedBlock(ref)
                shard.blocks[ref.name] = block
            x, reference = block.row(row)
            if block.released:
                shard.blocks.pop(ref.name, None)
        return x, reference

    def _absorb_counters(self, shard: _ProcShard, counters: dict, cache: tuple) -> None:
        for _ in range(counters.get("retries", 0)):
            self.recorder.record_retry()
        for _ in range(counters.get("breaker_transitions", 0)):
            self.recorder.record_breaker_transition()
        for size in counters.get("batch_sizes", ()):
            self.recorder.record_batch(size)
        per_request = counters.get("service_per_request_s")
        with shard.lock:
            prepare_delta = max(0.0, cache[3] - shard.cache_latest[3])
            shard.cache_latest = cache
            if per_request is not None:
                shard.service_ewma_s = (
                    per_request
                    if shard.service_ewma_s == 0.0
                    else 0.8 * shard.service_ewma_s + 0.2 * per_request
                )
        if prepare_delta:
            self.recorder.record_prepare(prepare_delta)

    def _handle_death(self, shard: _ProcShard, generation: int) -> None:
        """A worker incarnation died: deliver stragglers, fail the rest."""
        # Drain whatever the worker managed to answer before dying.
        while True:
            try:
                msg = shard.response_q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                break
            self._handle_message(shard, msg)
        with shard.lock:
            if shard.generation != generation:  # pragma: no cover - defensive
                return
            closing = shard.closing
            shard.restarting = True
            for block in shard.blocks.values():
                block.release()
            shard.blocks.clear()
        self._retire_queues(shard.request_q, shard.response_q)
        if closing:
            self._fail_inflight(
                shard,
                ServiceClosedError("service closed while this request was in flight"),
            )
            return
        self.recorder.record_shard_crash()
        self._fail_inflight(
            shard,
            ShardFailedError(
                f"shard {shard.index} worker died while this request was in flight"
            ),
        )
        with shard.lock:
            # Fold the dead incarnation's cache counters into the base so
            # pool-level totals survive restarts.
            shard.cache_base = shard.cache_totals()
            shard.cache_latest = (0, 0, 0, 0.0)
            shard.restarts += 1
            if shard.restarts > self.config.resilience.max_shard_restarts:
                shard.dead = True
                return
        self._start_shard(shard)

    def _fail_inflight(self, shard: _ProcShard, error) -> None:
        with shard.lock:
            pending, shard.inflight = shard.inflight, {}
        payload = error_to_wire(error)
        status = status_for_error(error)
        now = time.perf_counter()
        for request_id, entry in pending.items():
            self.recorder.record_done(now - entry.submitted_at, failed=True)
            entry.callback(
                WorkOutcome(id=request_id, status=status, error=payload)
            )
