"""Blocking TCP client for the ``repro.serve.net`` wire protocol.

:class:`NetClient` pipelines: submits return a :class:`NetTicket`
immediately, a background reader thread matches out-of-order responses
by request id, and results re-materialize as
:class:`~repro.core.solution.LeanSolveResult` with the server's exact
bits at the server's exact dtype (the wire carries raw array bytes plus
per-blob dtypes — see ``protocol.py``).

Matrix transfer is content-addressed: the first submit of a digest sends
the matrix payload, later submits send the digest alone. When the server
answers ``unknown-digest`` (its worker restarted or evicted the matrix),
the client transparently re-sends that request **with** the payload —
callers never see the coherency traffic, only a result.

Failures arrive as typed exceptions rebuilt by
:func:`repro.errors.error_from_wire`: a shed request raises
:class:`~repro.errors.OverloadedError` with the server's retry-after
hint, an expired deadline raises
:class:`~repro.errors.DeadlineExceededError`, and so on — the same
taxonomy the in-process service raises, now spanning the network.
"""

from __future__ import annotations

import itertools
import socket
import threading
from concurrent.futures import Future

from repro.core.solution import LeanSolveResult
from repro.errors import (
    ServeError,
    ServiceClosedError,
    UnknownDigestError,
    error_from_wire,
)
from repro.obs import tracer as obs
from repro.serve.metrics import ServiceMetrics
from repro.serve.net.protocol import (
    STATUS_UNKNOWN_DIGEST,
    array_dtype_name,
    array_from_bytes,
    array_to_bytes,
    encode_frame,
    recv_frame,
)
from repro.serve.requests import SolveRequest

__all__ = ["NetClient", "NetTicket"]


class NetTicket:
    """Handle to one in-flight network solve (a thin Future wrapper)."""

    def __init__(self, request: SolveRequest):
        self.request = request
        #: Wire status of the response (``None`` until it arrives).
        self.status: str | None = None
        #: Per-request server telemetry (result responses only).
        self.telemetry: dict = {}
        #: Client-side request span (NOOP when tracing is disabled).
        self.span = obs.NOOP_SPAN
        self._future: Future = Future()

    def result(self, timeout: float | None = None) -> LeanSolveResult:
        """Block for the response; re-raises typed server errors."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The typed error, or ``None`` on success (blocks like result)."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()


class _Call:
    """Reader-thread bookkeeping for one outstanding request id."""

    __slots__ = ("kind", "ticket", "header", "matrix", "resent", "future")

    def __init__(self, kind, ticket=None, header=None, matrix=None, future=None):
        self.kind = kind
        self.ticket = ticket
        self.header = header
        self.matrix = matrix
        self.resent = False
        self.future = future if future is not None else Future()


class NetClient:
    """Client connection to a :class:`~repro.serve.net.server.NetServer`.

    Use as a context manager::

        with NetClient(host, port, tenant="team-a") as client:
            ticket = client.submit(matrix, b, seed=3, deadline_ms=250)
            result = ticket.result()
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str | None = None,
        timeout_s: float = 60.0,
    ):
        self.tenant = tenant
        self.timeout_s = timeout_s
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        # Responses can be minutes apart on a loaded server; the reader
        # blocks on recv without an artificial per-read timeout.
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._calls: dict[int, _Call] = {}
        self._known_digests: set[str] = set()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, matrix, b, **kwargs) -> NetTicket:
        """Build a :class:`SolveRequest` and submit it (kwargs pass through)."""
        kwargs.setdefault("tenant", self.tenant)
        return self.submit_request(SolveRequest(matrix=matrix, b=b, **kwargs))

    def submit_request(self, request: SolveRequest) -> NetTicket:
        """Send one request; returns immediately with a ticket."""
        ticket = NetTicket(request)
        tracer = obs.active()
        if tracer.enabled:
            ticket.span = tracer.start_span(
                "client.request",
                attributes={
                    "digest": request.digest[:12],
                    "seed": request.seed,
                    "n": request.size,
                },
            )
        header = {
            "type": "solve",
            "n": request.size,
            "digest": request.digest,
            "solver": request.solver,
            "prep_seed": request.prep_seed,
            "seed": request.seed,
            "tenant": request.tenant if request.tenant is not None else self.tenant,
            "deadline_ms": (
                None if request.deadline_s is None else request.deadline_s * 1e3
            ),
        }
        if ticket.span.enabled:
            # Free-form header field: old servers ignore it, tracing
            # servers parent their request span under ours.
            header["trace"] = ticket.span.context()
        call = _Call("solve", ticket=ticket, header=header, matrix=request.matrix)
        with self._state_lock:
            if self._closed:
                error = ServiceClosedError("client is closed")
                ticket.span.fail(error)
                raise error
            request_id = next(self._ids)
            header["id"] = request_id
            send_matrix = request.digest not in self._known_digests
            # Optimistic: requests on one connection reach the shard in
            # send order, so later digest-only submits ride behind the
            # payload-carrying one even before its response arrives.
            self._known_digests.add(request.digest)
            self._calls[request_id] = call
        self._send_solve(call, with_matrix=send_matrix)
        return ticket

    def _send_solve(self, call: _Call, *, with_matrix: bool) -> None:
        arrays = [call.ticket.request.b]
        if with_matrix:
            arrays.append(call.matrix)
        # Per-blob dtypes keep float32 payloads float32 on the wire (old
        # servers that ignore the field read them as garbage-sized
        # float64 and answer with a typed size-mismatch error, never a
        # silent upcast).
        call.header["dtypes"] = [array_dtype_name(a) for a in arrays]
        self._send(encode_frame(call.header, [array_to_bytes(a) for a in arrays]))

    def solve(self, matrix, b, timeout: float | None = None, **kwargs):
        """Submit one request and block for its result."""
        return self.submit(matrix, b, **kwargs).result(
            timeout if timeout is not None else self.timeout_s
        )

    def solve_all(self, requests, timeout: float | None = None) -> list:
        """Submit every request, then gather results in request order.

        Like :meth:`SolverService.solve_all`: if any request failed, the
        first failure re-raises after every ticket resolved.
        """
        tickets = [self.submit_request(request) for request in requests]
        deadline = timeout if timeout is not None else self.timeout_s
        errors = [ticket.exception(deadline) for ticket in tickets]
        for error in errors:
            if error is not None:
                raise error
        return [ticket.result(0) for ticket in tickets]

    # ------------------------------------------------------------------
    # control-plane requests
    # ------------------------------------------------------------------
    def metrics(self, timeout: float | None = None) -> ServiceMetrics:
        """Fetch the server's metrics snapshot over the wire."""
        return self._control("metrics", timeout)

    def alive_workers(self, timeout: float | None = None) -> int:
        """How many worker processes the server currently has live."""
        call = self._control_call("metrics")
        payload = call.future.result(timeout if timeout is not None else self.timeout_s)
        return payload["alive_workers"]

    def ping(self, timeout: float | None = None) -> bool:
        """Round-trip a ping frame (liveness check)."""
        self._control("ping", timeout)
        return True

    def _control_call(self, kind: str) -> _Call:
        call = _Call(kind)
        with self._state_lock:
            if self._closed:
                raise ServiceClosedError("client is closed")
            request_id = next(self._ids)
            self._calls[request_id] = call
        self._send(encode_frame({"type": kind, "id": request_id}))
        return call

    def _control(self, kind: str, timeout: float | None):
        call = self._control_call(kind)
        payload = call.future.result(timeout if timeout is not None else self.timeout_s)
        if kind == "metrics":
            return ServiceMetrics.from_dict(payload["metrics"])
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; unresolved tickets fail as closed."""
        with self._state_lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)
        self._fail_all(ServiceClosedError("client connection closed"))

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reader thread
    # ------------------------------------------------------------------
    def _send(self, frame: bytes) -> None:
        with self._send_lock:
            self._sock.sendall(frame)

    def _read_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    break
                self._handle(*frame)
        except (OSError, ServeError):
            pass
        self._fail_all(ServiceClosedError("server closed the connection"))

    def _fail_all(self, error: Exception) -> None:
        with self._state_lock:
            calls, self._calls = self._calls, {}
        for call in calls.values():
            if call.ticket is not None:
                if not call.ticket._future.done():
                    call.ticket.span.fail(error)
                    call.ticket._future.set_exception(error)
            elif not call.future.done():
                call.future.set_exception(error)

    def _handle(self, header: dict, blobs) -> None:
        request_id = header.get("id")
        if request_id is None:
            # Connection-level protocol error: the server is hanging up.
            raise ServeError(header.get("error", {}).get("message", "protocol error"))
        with self._state_lock:
            call = self._calls.get(request_id)
        if call is None:  # pragma: no cover - defensive (duplicate response)
            return
        kind = header.get("type")
        if kind == "result":
            self._finish_result(request_id, call, header, blobs)
        elif kind == "error":
            self._finish_error(request_id, call, header)
        elif kind in ("pong", "metrics"):
            with self._state_lock:
                self._calls.pop(request_id, None)
            call.future.set_result(header)
        else:  # pragma: no cover - defensive
            with self._state_lock:
                self._calls.pop(request_id, None)
            call.future.set_exception(ServeError(f"unknown response type {kind!r}"))

    def _finish_result(self, request_id: int, call: _Call, header: dict, blobs) -> None:
        with self._state_lock:
            self._calls.pop(request_id, None)
        ticket = call.ticket
        n = ticket.request.size
        telemetry = header.get("telemetry", {})
        ticket.status = header.get("status")
        ticket.telemetry = telemetry
        # Absent/short ``dtypes`` means float64 (old-server interop).
        dtypes = header.get("dtypes") or []
        dtypes = list(dtypes) + ["float64"] * (len(blobs) - len(dtypes))
        result = LeanSolveResult(
            x=array_from_bytes(blobs[0], (n,), dtypes[0]),
            reference=array_from_bytes(blobs[1], (n,), dtypes[1]),
            solver=telemetry.get("solver", "unknown"),
            saturated=bool(telemetry.get("saturated", False)),
            analog_time_s=float(telemetry.get("analog_time_s", 0.0)),
            metadata=dict(telemetry.get("metadata", {})),
        )
        ticket.span.end(status=ticket.status or "ok")
        ticket._future.set_result(result)

    def _finish_error(self, request_id: int, call: _Call, header: dict) -> None:
        error = error_from_wire(header.get("error", {}))
        status = header.get("status")
        if (
            status == STATUS_UNKNOWN_DIGEST
            and call.kind == "solve"
            and call.matrix is not None
            and not call.resent
        ):
            # Coherency miss (worker restart/eviction): re-send the same
            # request id with the matrix payload attached, transparently.
            call.resent = True
            try:
                self._send_solve(call, with_matrix=True)
                return
            except OSError:
                error = ServiceClosedError("connection lost during re-send")
        with self._state_lock:
            self._calls.pop(request_id, None)
            if status == STATUS_UNKNOWN_DIGEST:
                self._known_digests.discard(call.ticket.request.digest)
        ticket = call.ticket
        ticket.status = status
        if isinstance(error, UnknownDigestError) and call.resent:
            error = ServeError(
                f"server repeatedly lost the matrix for digest "
                f"{ticket.request.digest[:12]}: {error}"
            )
        ticket.span.fail(error)
        ticket._future.set_exception(error)
