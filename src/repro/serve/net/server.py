"""The TCP front-end: asyncio acceptor over the process worker pool.

:class:`NetServer` binds a host/port, runs an asyncio event loop on a
background thread, and serves the :mod:`repro.serve.net.protocol` frame
vocabulary. Per connection it keeps one reader coroutine (decode frames,
admit requests) and one writer task draining an outbound queue — so
responses go out **as workers finish them**, out of order, and one slow
solve never convoys the connection.

Admission control runs in policy order on the event-loop thread, each
refusal a typed wire error with its own status:

1. **tenant quota** (token bucket) → ``overloaded`` with a retry-after
   hint (:class:`~repro.errors.QuotaExceededError`);
2. **load shedding** (backlog × recent service time vs the policy's
   ``shed_latency_s``) → ``shed`` with the estimate as retry-after;
3. **backpressure** (shard in-flight bound) → ``overloaded``
   (:class:`~repro.errors.ServiceOverloadedError`; the network tier
   always rejects — blocking the event loop is not an option);
4. dispatch to the owning worker process; its completion callback runs
   on a pump thread and hops back to the loop via
   ``call_soon_threadsafe`` to enqueue the response frame.

Deadlines arrive as ``deadline_ms`` (client-relative), are converted to
an absolute wall-clock instant on receipt, and propagate into the worker
process, which drops expired items before execution.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    OverloadedError,
    ReproError,
    ServeError,
    WireProtocolError,
    error_to_wire,
)
from repro.obs import tracer as obs
from repro.serve.metrics import MetricsRecorder
from repro.serve.net.protocol import (
    STATUS_FAILED,
    STATUS_OVERLOADED,
    STATUS_SHED,
    array_dtype_name,
    array_from_bytes,
    array_to_bytes,
    encode_frame,
    read_frame,
)
from repro.serve.net.quotas import QuotaPolicy, TenantQuotas
from repro.serve.net.workers import ProcessWorkerPool, WorkOutcome, status_for_error
from repro.serve.requests import matrix_digest
from repro.serve.service import ServiceConfig

__all__ = ["NetServer", "NetServerConfig"]


@dataclass(frozen=True)
class NetServerConfig:
    """Tuning knobs of one :class:`NetServer`.

    ``service`` carries the per-worker engine knobs (batching, cache,
    resilience policy) shared with the in-process tier; ``quota``
    enables per-tenant token buckets when set. ``port=0`` binds an
    ephemeral port (the bound address is ``server.address`` after
    :meth:`NetServer.start`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    service: ServiceConfig = field(default_factory=ServiceConfig)
    quota: QuotaPolicy | None = None


class NetServer:
    """Serve solve traffic over TCP through process workers.

    Use as a context manager::

        with NetServer(NetServerConfig(port=0)) as server:
            host, port = server.address
            ...
    """

    def __init__(self, config: NetServerConfig | None = None):
        self.config = config or NetServerConfig()
        self.recorder = MetricsRecorder()
        self._quotas = (
            TenantQuotas(self.config.quota) if self.config.quota is not None else None
        )
        self._pool: ProcessWorkerPool | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: tuple[str, int] | None = None
        #: Monotonically increasing server-side request ids (loop thread only).
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "NetServer":
        """Spawn the worker pool and the event-loop thread; bind the port."""
        if self._thread is not None:
            raise ServeError("server already started")
        if self.config.service.trace_dir is not None:
            # Front-end spans; each worker process configures its own
            # tracer against the same directory after the fork.
            obs.configure(trace_dir=self.config.service.trace_dir)
        self._pool = ProcessWorkerPool(self.config.service, self.recorder)
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self.close()
            raise self._startup_error
        return self

    def close(self) -> None:
        """Stop accepting, tear down the loop, shut the workers down."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.config.host, self.config.port
                )
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        except BaseException as exc:  # pragma: no cover - bind failure
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            # Cancel still-open connection handlers before closing the
            # loop (otherwise asyncio logs destroyed-pending-task noise).
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        out_q: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._drain_responses(out_q, writer))
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireProtocolError as exc:
                    # Framing is broken — answer typed, then hang up (the
                    # byte stream can no longer be trusted).
                    out_q.put_nowait(
                        encode_frame(
                            {
                                "type": "error",
                                "id": None,
                                "status": STATUS_FAILED,
                                "error": error_to_wire(exc),
                            }
                        )
                    )
                    break
                if frame is None:
                    break
                header, blobs = frame
                self._dispatch(header, blobs, out_q)
        except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
            pass
        finally:
            out_q.put_nowait(None)
            try:
                await writer_task
            except (Exception, asyncio.CancelledError):
                # Peer vanished mid-write, or the loop is shutting down
                # and cancelled the writer under us.
                pass
            writer.close()

    async def _drain_responses(self, out_q: asyncio.Queue, writer) -> None:
        while True:
            frame = await out_q.get()
            if frame is None:
                return
            writer.write(frame)
            await writer.drain()

    # ------------------------------------------------------------------
    # request dispatch (event-loop thread)
    # ------------------------------------------------------------------
    def _dispatch(self, header: dict, blobs, out_q: asyncio.Queue) -> None:
        kind = header.get("type")
        request_id = header.get("id")
        if kind == "ping":
            out_q.put_nowait(encode_frame({"type": "pong", "id": request_id}))
        elif kind == "metrics":
            metrics = self.recorder.snapshot(self._pool.cache_stats())
            out_q.put_nowait(
                encode_frame(
                    {
                        "type": "metrics",
                        "id": request_id,
                        "metrics": metrics.as_dict()
                        | {
                            "batch_size_histogram": {
                                str(k): v
                                for k, v in metrics.batch_size_histogram.items()
                            }
                        },
                        "alive_workers": self._pool.alive_workers(),
                    }
                )
            )
        elif kind == "solve":
            self._dispatch_solve(header, blobs, out_q)
        else:
            out_q.put_nowait(
                self._error_frame(
                    request_id,
                    WireProtocolError(f"unknown message type {kind!r}"),
                )
            )

    def _dispatch_solve(self, header: dict, blobs, out_q: asyncio.Queue) -> None:
        request_id = header.get("id")
        loop = self._loop
        span = obs.NOOP_SPAN
        try:
            digest, b, matrix = self._parse_solve(header, blobs)
            tracer = obs.active()
            if tracer.enabled:
                # header["trace"] (when the client traces too) parents
                # this span under the client-side request span.
                span = tracer.start_span(
                    "server.request",
                    trace=header.get("trace"),
                    attributes={
                        "digest": digest[:12],
                        "seed": int(header.get("seed", 0)),
                        "n": header.get("n"),
                    },
                )
            if self._quotas is not None:
                self._charge_quota(header.get("tenant"))
            policy = self.config.service.resilience
            if policy.shed_latency_s is not None:
                estimate = self._pool.estimated_wait_s(digest)
                if estimate > policy.shed_latency_s:
                    raise OverloadedError(
                        f"estimated wait {estimate:.3f}s exceeds shed "
                        f"threshold {policy.shed_latency_s:.3f}s",
                        retry_after_s=estimate,
                    )
            deadline_ms = header.get("deadline_ms")
            deadline_s = (
                deadline_ms * 1e-3 if deadline_ms is not None else policy.deadline_s
            )
            self._next_id += 1
            server_id = self._next_id

            def callback(outcome: WorkOutcome) -> None:
                if outcome.ok:
                    span.end(status=outcome.status)
                else:
                    message = (outcome.error or {}).get("message", "")
                    span.end(
                        status="error",
                        error=f"{outcome.status}: {message}" if message
                        else outcome.status,
                    )
                frame = self._outcome_frame(request_id, outcome)
                try:
                    loop.call_soon_threadsafe(out_q.put_nowait, frame)
                except RuntimeError:  # pragma: no cover - loop already closed
                    pass

            self._pool.submit(
                request_id=server_id,
                digest=digest,
                b=b,
                matrix=matrix,
                solver=header.get("solver"),
                prep_seed=header.get("prep_seed"),
                seed=int(header.get("seed", 0)),
                deadline_at=(
                    time.time() + deadline_s if deadline_s is not None else None
                ),
                callback=callback,
                trace=span.context() if span.enabled else None,
            )
        except Exception as exc:
            span.fail(exc)
            self._record_refusal(exc)
            out_q.put_nowait(self._error_frame(request_id, exc))

    def _parse_solve(self, header: dict, blobs):
        if not blobs:
            raise WireProtocolError("solve request carries no right-hand side blob")
        n = header.get("n")
        if not isinstance(n, int) or n < 1:
            raise WireProtocolError(f"solve request needs a positive integer n, got {n!r}")
        # Per-blob dtypes; absent/short list means float64 (old clients).
        dtypes = header.get("dtypes") or []
        if not isinstance(dtypes, list):
            raise WireProtocolError(f"dtypes must be a list, got {dtypes!r}")
        dtypes = dtypes + ["float64"] * (len(blobs) - len(dtypes))
        b = array_from_bytes(blobs[0], (n,), dtypes[0])
        matrix = (
            array_from_bytes(blobs[1], (n, n), dtypes[1]) if len(blobs) > 1 else None
        )
        digest = header.get("digest")
        if digest is None:
            if matrix is None:
                raise WireProtocolError(
                    "solve request needs a digest or a matrix payload"
                )
            digest = matrix_digest(matrix)
        elif not isinstance(digest, str) or not digest:
            raise WireProtocolError(f"invalid digest {digest!r}")
        return digest, b, matrix

    def _charge_quota(self, tenant) -> None:
        if tenant is not None and not isinstance(tenant, str):
            raise WireProtocolError(f"tenant must be a string, got {tenant!r}")
        self._quotas.acquire(tenant)

    def _record_refusal(self, exc: Exception) -> None:
        """Meter a refusal: shedding counts as shed, the rest as rejected."""
        if isinstance(exc, OverloadedError) and type(exc) is OverloadedError:
            self.recorder.record_shed()
        else:
            self.recorder.record_rejected()

    # ------------------------------------------------------------------
    # response frames
    # ------------------------------------------------------------------
    def _outcome_frame(self, request_id, outcome: WorkOutcome) -> bytes:
        if outcome.ok:
            return encode_frame(
                {
                    "type": "result",
                    "id": request_id,
                    "status": outcome.status,
                    "telemetry": outcome.telemetry,
                    # Dtype-tagged blobs: a float32-tier x rides next to
                    # its float64 digital reference without upcasting.
                    "dtypes": [
                        array_dtype_name(outcome.x),
                        array_dtype_name(outcome.reference),
                    ],
                },
                [array_to_bytes(outcome.x), array_to_bytes(outcome.reference)],
            )
        return encode_frame(
            {
                "type": "error",
                "id": request_id,
                "status": outcome.status,
                "error": outcome.error,
            }
        )

    def _error_frame(self, request_id, exc: Exception) -> bytes:
        if not isinstance(exc, ReproError):  # pragma: no cover - defensive
            exc = ServeError(f"internal error: {exc}")
        status = status_for_error(exc)
        if isinstance(exc, OverloadedError):
            status = STATUS_SHED if type(exc) is OverloadedError else STATUS_OVERLOADED
        return encode_frame(
            {
                "type": "error",
                "id": request_id,
                "status": status,
                "error": error_to_wire(exc),
            }
        )
