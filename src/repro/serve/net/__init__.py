"""``repro.serve.net`` — the network tier of the solver service.

A TCP front-end (:class:`NetServer`) over **process-based** service
workers (:class:`~repro.serve.net.workers.ProcessWorkerPool`), speaking
a length-prefixed JSON+binary wire protocol whose array payloads are raw
float64 bytes — so a network round-trip is bit-exact. Per-tenant
token-bucket quotas (:class:`QuotaPolicy`), load shedding, deadlines,
breakers, and typed wire errors surface the same
:class:`~repro.serve.resilience.ResiliencePolicy` the in-process tier
enforces. :class:`NetClient` is the pipelined blocking client.

Entry points: ``repro serve --port`` / ``repro submit --connect`` on the
CLI, ``tests/test_net_serving.py`` for the bit-identity and chaos proof,
and ``benchmarks/bench_net_serving.py`` for the throughput artifact.
"""

from repro.serve.net.client import NetClient, NetTicket
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    array_from_bytes,
    array_to_bytes,
    decode_frame,
    encode_frame,
)
from repro.serve.net.quotas import QuotaPolicy, TenantQuotas, TokenBucket
from repro.serve.net.server import NetServer, NetServerConfig
from repro.serve.net.transport import AttachedBlock, BlockRef, publish_block
from repro.serve.net.workers import ProcessWorkerPool, WorkOutcome

__all__ = [
    "MAX_FRAME_BYTES",
    "AttachedBlock",
    "BlockRef",
    "NetClient",
    "NetServer",
    "NetServerConfig",
    "NetTicket",
    "ProcessWorkerPool",
    "QuotaPolicy",
    "TenantQuotas",
    "TokenBucket",
    "WorkOutcome",
    "array_from_bytes",
    "array_to_bytes",
    "decode_frame",
    "encode_frame",
    "publish_block",
]
