"""Per-tenant token-bucket quotas for the network front-end.

Each tenant owns one token bucket: capacity ``burst`` tokens, refilled
continuously at ``rate_per_s``. A solve request costs one token; when a
tenant's bucket is dry the front-end answers with a typed
:class:`~repro.errors.QuotaExceededError` carrying a ``retry_after_s``
hint — the time until one token accrues — instead of queueing work the
tenant is not entitled to. Quotas are enforced *before* shedding and
backpressure checks, so one chatty tenant exhausts its own budget, not
the shared queue depth.

The clock is injectable for deterministic tests; production uses
``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import QuotaExceededError, ValidationError

__all__ = ["QuotaPolicy", "TenantQuotas", "TokenBucket"]

#: Tenant bucket used when a request carries no tenant id.
ANONYMOUS_TENANT = "anonymous"


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-tenant rate limit: sustained ``rate_per_s``, burst ``burst``."""

    rate_per_s: float
    burst: float

    def __post_init__(self):
        if not self.rate_per_s > 0.0:
            raise ValidationError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if not self.burst >= 1.0:
            raise ValidationError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """One tenant's bucket. ``try_acquire`` returns the retry-after hint.

    Returns ``0.0`` when a token was taken, else the seconds until the
    bucket will hold one token at the sustained rate. Not thread-safe on
    its own — :class:`TenantQuotas` serializes access.
    """

    def __init__(self, policy: QuotaPolicy, clock=time.monotonic):
        self.policy = policy
        self._clock = clock
        self._tokens = float(policy.burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            float(self.policy.burst), self._tokens + elapsed * self.policy.rate_per_s
        )

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens if available; else return seconds to wait."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.policy.rate_per_s

    @property
    def tokens(self) -> float:
        """Current token balance (after a refill) — for tests/telemetry."""
        self._refill()
        return self._tokens


class TenantQuotas:
    """Thread-safe map of tenant id → :class:`TokenBucket`.

    Buckets are created on first sight of a tenant (full burst), so new
    tenants start with their full burst allowance.
    """

    def __init__(self, policy: QuotaPolicy, clock=time.monotonic):
        self.policy = policy
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, tenant: str | None) -> None:
        """Charge one token to ``tenant`` or raise :class:`QuotaExceededError`."""
        name = tenant or ANONYMOUS_TENANT
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = self._buckets[name] = TokenBucket(self.policy, self._clock)
            retry_after = bucket.try_acquire()
        if retry_after > 0.0:
            raise QuotaExceededError(
                f"tenant {name!r} exceeded {self.policy.rate_per_s:g}/s "
                f"(burst {self.policy.burst:g})",
                retry_after_s=retry_after,
            )

    def tokens(self, tenant: str | None) -> float:
        """Current balance for ``tenant`` (burst if never seen)."""
        name = tenant or ANONYMOUS_TENANT
        with self._lock:
            bucket = self._buckets.get(name)
            return float(self.policy.burst) if bucket is None else bucket.tokens
