"""Request types and content digests for the solver service.

A :class:`SolveRequest` is one unit of traffic: a matrix, a right-hand
side, and the policy knobs (solver kind, hardware configuration, seeds)
that determine *which* prepared macro executes it. Requests are
content-addressed: :func:`matrix_digest` hashes the matrix bytes, and
together with the hardware config digest, the solver kind, and the
preparation seed it forms the :class:`~repro.serve.cache.PreparedKey`
that the service caches and shards by.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.amc.config import HardwareConfig
from repro.core.backend import canonical_dtype
from repro.errors import ValidationError
from repro.utils.validation import check_square_matrix, check_vector

__all__ = ["SolveRequest", "matrix_digest"]


def matrix_digest(matrix: np.ndarray) -> str:
    """Content digest of a matrix (dtype + shape + bytes, SHA-256 hex).

    Equal matrices always digest equally; the probability of two distinct
    matrices colliding is cryptographically negligible, so the digest can
    stand in for the matrix in cache keys and shard routing.

    The **canonical dtype** participates in the hash: a float32 matrix
    and its float64 upcast hold the same values but are *different
    inputs* under precision tiers — a solver prepared from one must
    never be served for the other. (The digest used to coerce to
    float64 before hashing, which made exactly that poisoning possible
    in :class:`~repro.serve.cache.PreparedSolverCache`.)
    """
    a = np.asarray(matrix)
    a = np.ascontiguousarray(a, dtype=canonical_dtype(a.dtype))
    h = hashlib.sha256()
    h.update(a.dtype.name.encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class SolveRequest:
    """One solve job submitted to the service.

    Parameters
    ----------
    matrix, b:
        The linear system ``A x = b``.
    solver:
        Solver kind (``"blockamc-1stage"``, ``"blockamc-2stage"``,
        ``"original-amc"``); ``None`` uses the service default.
    hardware:
        :class:`HardwareConfig` for this request; ``None`` uses the
        service default.
    seed:
        Per-request randomness seed. Only consumed by configurations
        with per-operation noise (output or sample-and-hold noise, MNA
        routing); deterministic configurations ignore it. Either way the
        result is a pure function of (prepared solver, ``b``, ``seed``),
        never of scheduling order.
    prep_seed:
        Seed of the preparation draw (programming variation, op-amp
        offsets) — the "seed policy" part of the cache key. Requests
        sharing (matrix, hardware, solver, prep_seed) share one
        programmed macro; ``None`` uses the service default.
    deadline_s:
        Per-request deadline in seconds, measured from submission. If
        the request is still queued when it expires, it fails fast with
        :class:`~repro.errors.DeadlineExceededError` instead of
        occupying a batch slot. ``None`` defers to the service's
        :class:`~repro.serve.resilience.ResiliencePolicy` default.
    tenant:
        Tenant identity for per-tenant quota accounting at the network
        tier (:mod:`repro.serve.net`); the in-process service ignores
        it. ``None`` means the anonymous tenant.
    digest:
        Precomputed :func:`matrix_digest` (skips re-hashing when the
        caller submits the same matrix many times).
    """

    matrix: np.ndarray
    b: np.ndarray
    solver: str | None = None
    hardware: HardwareConfig | None = None
    seed: int = 0
    prep_seed: int | None = None
    deadline_s: float | None = None
    tenant: str | None = None
    digest: str = field(default="")

    def __post_init__(self):
        # preserve_dtype: float32 systems stay float32 through the
        # service (distinct digests, distinct cache keys — see
        # matrix_digest); everything else still coerces to float64.
        matrix = check_square_matrix(self.matrix, preserve_dtype=True)
        b = check_vector(self.b, "b", size=matrix.shape[0], preserve_dtype=True)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "b", b)
        if self.deadline_s is not None and not self.deadline_s > 0.0:
            raise ValidationError(f"deadline_s must be > 0, got {self.deadline_s}")
        if not self.digest:
            object.__setattr__(self, "digest", matrix_digest(matrix))

    @property
    def size(self) -> int:
        """System size ``n``."""
        return self.matrix.shape[0]
